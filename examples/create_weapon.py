"""Creating a weapon for a brand-new vulnerability class (§III-D).

The paper's headline property: WAPe detects and corrects *new* classes of
vulnerabilities configured by the user, without writing tool code.  This
example builds a weapon for **log injection** (attacker-controlled newlines
forging log entries), saves it as a reusable bundle, and uses it.

The user provides exactly the three pieces of data of §III-D:

1. detector data: sensitive sinks (``error_log``, ``syslog``) — entry
   points and sanitization functions are the defaults;
2. fix data: the *user sanitization* template with the malicious characters
   (CR/LF) and a neutralizer;
3. dynamic symptoms: a project helper ``check_log_line`` that behaves like
   ``preg_match``.

Run with::

    python examples/create_weapon.py
"""

import tempfile

from repro.mining import DynamicSymptoms
from repro.tool import Wape
from repro.weapons import (
    WeaponClassSpec,
    WeaponSpec,
    generate_weapon,
    load_weapon,
    save_weapon,
)

TARGET = """\
<?php
// vulnerable: attacker can forge log lines with embedded newlines
error_log("login failed for " . $_POST['user']);

// vulnerable through a variable
$entry = $_SERVER['HTTP_USER_AGENT'] . " visited";
syslog(LOG_INFO, $entry);

// false positive: the project's helper validates the line first
if (check_log_line($_POST['note'])) {
    error_log("note: " . $_POST['note']);
}
"""


def main() -> None:
    spec = WeaponSpec(
        name="logi",
        flag="-logi",
        classes=(WeaponClassSpec(
            class_id="logi",
            display_name="Log injection",
            sinks=("error_log:0", "syslog:1"),
            report_group="LOGI",
        ),),
        fix_template="user_sanitization",
        fix_malicious_chars=("\r", "\n", "%0a", "%0d"),
        fix_neutralizer=" ",
        dynamic_symptoms=DynamicSymptoms(
            mapping={"check_log_line": "preg_match"}),
    )

    print("generating the weapon from user data only...")
    weapon = generate_weapon(spec)
    print(f"  detector: sinks="
          f"{[s.name for c in weapon.configs for s in c.sinks]}")
    print(f"  fix:      {weapon.fix.fix_id} "
          f"({weapon.fix.template} template)")
    print(f"  symptoms: {dict(weapon.dynamic_symptoms.mapping)}")

    with tempfile.TemporaryDirectory() as tmp:
        bundle = f"{tmp}/logi_weapon"
        save_weapon(weapon, bundle)
        print(f"\nsaved weapon bundle to {bundle} and reloading it "
              f"(the 'jar' of §III-E)...")
        weapon = load_weapon(bundle)

    tool = Wape()
    tool.arm(weapon)

    print("\nanalysis with the armed weapon:")
    report = tool.analyze_source(TARGET, "logger.php")
    print(report.render_text())

    print("\ncorrecting the real vulnerabilities:")
    result = tool.correct_source(TARGET, report, "logger.php")
    print(result.source)


if __name__ == "__main__":
    main()
