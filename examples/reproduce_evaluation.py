"""Reproduce the paper's evaluation (Tables V-VII) in one script.

Materializes the synthetic corpora, runs WAP v2.1 and fully-armed WAPe
over them, and prints the headline numbers of §V next to the paper's.
This is the script version of the benchmark harness; run the benches with
``pytest benchmarks/ --benchmark-only -s`` for the full per-package
tables.

Run with::

    python examples/reproduce_evaluation.py
"""

import tempfile
from collections import Counter

from repro.corpus import (
    PAPER_CLASS_TOTALS,
    PAPER_PLUGIN_TOTAL_VULNS,
    PAPER_TOTAL_VULNS,
    PAPER_WAP_FPP,
    PAPER_WAPE_FPP,
    build_webapp_corpus,
    build_wordpress_corpus,
)
from repro.tool import Wap21, Wape


def run(tool, packages):
    totals: Counter = Counter()
    fpp = 0
    for pkg in packages:
        report = tool.analyze_tree(pkg.path)
        totals += report.counts_by_group()
        fpp += len(report.predicted_false_positives)
    return totals, fpp


def main() -> None:
    wape = Wape(weapon_flags=["-nosqli", "-hei", "-wpsqli"])
    wap21 = Wap21()

    with tempfile.TemporaryDirectory() as tmp:
        print("materializing the 17 vulnerable web applications...")
        webapps = build_webapp_corpus(f"{tmp}/webapps",
                                      vulnerable_only=True)
        print("materializing the 23 vulnerable WordPress plugins...")
        plugins = build_wordpress_corpus(f"{tmp}/plugins",
                                         vulnerable_only=True)

        print("\n== web applications (Tables V and VI)")
        new_totals, new_fpp = run(wape, webapps)
        old_totals, old_fpp = run(wap21, webapps)
        real_new = sum(new_totals.values())
        print(f"  WAPe:     {real_new} vulnerabilities "
              f"(paper {PAPER_TOTAL_VULNS} + 18 unpredictable FPs), "
              f"{new_fpp} predicted FPs (paper {PAPER_WAPE_FPP})")
        print(f"  WAP v2.1: {sum(old_totals.values())} reports, "
              f"{old_fpp} predicted FPs (paper {PAPER_WAP_FPP})")
        print("  per class (WAPe vs paper):")
        for group, paper in PAPER_CLASS_TOTALS.items():
            print(f"    {group:>6}: {new_totals.get(group, 0):>3} "
                  f"(paper {paper})")

        print("\n== WordPress plugins (Table VII)")
        wp_totals, wp_fpp = run(wape, plugins)
        print(f"  WAPe armed: {sum(wp_totals.values())} vulnerabilities "
              f"(paper {PAPER_PLUGIN_TOTAL_VULNS} + 2), "
              f"{wp_fpp} predicted FPs (paper 3)")
        print(f"  SQLI via the wpsqli weapon: {wp_totals.get('SQLI', 0)}"
              f" (paper 55 + 2 custom-FP candidates)")


if __name__ == "__main__":
    main()
