"""Auditing a WordPress plugin with the wpsqli weapon (§IV-C3, §V-B).

WordPress plugins talk to the database through the ``$wpdb`` API and
sanitize input with WordPress helpers — functions a generic PHP analyzer
knows nothing about.  The ``-wpsqli`` weapon teaches WAPe these non-native
sinks (``$wpdb->query`` et al.), sanitizers (``esc_sql``,
``$wpdb->prepare``, ``absint``) and dynamic symptoms
(``is_email`` behaves like ``preg_match``).

This example materializes a synthetic plugin modeled on the corpus and
audits it with and without the weapon, reproducing the paper's point that
the 55 WordPress SQLI findings are invisible without it.

Run with::

    python examples/wordpress_audit.py
"""

import tempfile

from repro.corpus import VULNERABLE_PLUGINS, materialize_package
from repro.tool import Wape

PLUGIN_SNIPPET = """\
<?php
/* Plugin Name: demo-tickets */
global $wpdb;

// vulnerable: raw user input inside a $wpdb query
$ticket = $_GET['ticket_id'];
$row = $wpdb->get_row(
    "SELECT * FROM {$wpdb->prefix}tickets WHERE id = '" . $ticket . "'");

// safe: the input goes through $wpdb->prepare
$sql = $wpdb->prepare(
    "SELECT * FROM {$wpdb->prefix}tickets WHERE owner = %s",
    $_GET['owner']);
$rows = $wpdb->get_results($sql);

// false positive: is_email() is a WordPress validation helper the
// weapon's dynamic symptoms map onto the preg_match static symptom,
// so the predictor dismisses this candidate
if (is_email($_GET['email'])) {
    $wpdb->query(
        "SELECT id FROM {$wpdb->prefix}tickets WHERE email = '"
        . $_GET['email'] . "'");
}
"""


def main() -> None:
    print("=" * 70)
    print("inline plugin snippet, WITHOUT the wpsqli weapon")
    print("=" * 70)
    plain = Wape()
    report = plain.analyze_source(PLUGIN_SNIPPET, "demo-tickets.php")
    print(f"candidates: {len(report.outcomes)} "
          f"(the $wpdb sinks are unknown to the generic detector)")

    print()
    print("=" * 70)
    print("inline plugin snippet, WITH -wpsqli")
    print("=" * 70)
    armed = Wape(weapon_flags=["-wpsqli"])
    report = armed.analyze_source(PLUGIN_SNIPPET, "demo-tickets.php")
    print(report.render_text())

    print()
    print("=" * 70)
    print("auditing a full synthetic plugin from the evaluation corpus")
    print("=" * 70)
    profile = next(p for p in VULNERABLE_PLUGINS
                   if p.name == "simple-support-ticket-system")
    with tempfile.TemporaryDirectory() as tmp:
        pkg = materialize_package(profile, tmp)
        full = Wape(weapon_flags=["-wpsqli", "-hei"])
        tree_report = full.analyze_tree(pkg.path)
        print(tree_report.summary_line())
        print(f"paper (Table VII): {profile.total_vulns} SQLI findings "
              f"for this plugin — 5 registered in CVE "
              f"{', '.join(profile.cve)}, 13 newly discovered")


if __name__ == "__main__":
    main()
