<?php
// Template loader: includes whatever page the visitor asks for.
$page = $_GET['page'];
include($page);

// Local variant: the prefix pins the file to the templates directory.
$tpl = "templates/" . $_GET['tpl'] . ".php";
require($tpl);
?>
