<?php
// Contact form: message preview is printed without encoding.
$msg = $_POST['message'];
printf("Your message: %s", $msg);
?>
