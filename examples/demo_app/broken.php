<?php
// Deliberately malformed: exercises parse-error reporting in the demo
// scan (the file shows up under "parse errors" in --stats and JSON).
// Mentions $_GET and echo so the relevance prefilter keeps it — a file
// with neither would be skipped unparsed and report no diagnostics.
function broken($x = $_GET) {
    echo "this never parses
?>
