<?php
// Deliberately malformed: exercises parse-error reporting in the demo
// scan (the file shows up under "parse errors" in --stats and JSON).
function broken( {
    echo "this never parses
?>
