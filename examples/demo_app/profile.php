<?php
// Profile page: cookie-driven lookup plus an unescaped echo of it.
$user = $_COOKIE['user'];
$res = mysqli_query($db, "SELECT * FROM profiles WHERE login = '"
    . $user . "'");
echo "Logged in as " . $user;
?>
