<?php
// Activity feed: both flows cross a file boundary — the source lives in
// includes/input.php and only whole-project analysis connects them.
require __DIR__ . "/includes/input.php";

echo "<h1>Feed for " . request_param("tag") . "</h1>";
echo "<p>Signed in as " . $current_user . "</p>";
?>
