<?php
// Front page: looks up a product straight from the query string.
$id = $_GET['id'];
$result = mysql_query("SELECT * FROM products WHERE id = " . $id);
while ($row = mysql_fetch_assoc($result)) {
    echo "<li>" . $row['name'] . "</li>";
}
?>
