<?php
// Reflected search box: the query is echoed back unescaped.
$q = $_GET['q'];
echo "<h2>Results for " . $q . "</h2>";
$safe = htmlentities($_GET['page_title']);
echo "<title>" . $safe . "</title>";
?>
