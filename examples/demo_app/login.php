<?php
// Login: the user id is cast to int before reaching the query, and the
// name is escaped — both flows should be predicted false positives.
$uid = intval($_POST['uid']);
$r1 = mysql_query("SELECT * FROM users WHERE id = " . $uid);

$name = mysql_real_escape_string($_POST['name']);
$r2 = mysql_query("SELECT * FROM users WHERE name = '" . $name . "'");
?>
