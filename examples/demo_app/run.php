<?php
// Diagnostics endpoint: pings a host name taken from the request.
$host = $_POST['host'];
system("ping -c 1 " . $host);
?>
