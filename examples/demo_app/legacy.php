<?php
// Half-migrated page: one statement is damaged (exercises statement-level
// recovery — the file reports a parse warning, not a parse error) while
// the rest still carries a real reflected-XSS flow.
$theme = = "dark";
$term = $_GET['term'];
echo "<h2>Archive search: " . $term . "</h2>";
?>
