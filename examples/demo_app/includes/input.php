<?php
// Request helpers (tainted): callers that echo these without encoding
// only show up when the include graph links this file to them.
function request_param($key) {
    return $_GET[$key];
}

$current_user = $_COOKIE['user_name'];
?>
