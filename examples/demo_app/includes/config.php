<?php
// Static configuration (clean file).
$db_host = "localhost";
$db_name = "shop";
$page_size = 25;
?>
