<?php
// Shared helpers (clean file: nothing user-controlled reaches a sink).
function format_price($cents) {
    return "$" . number_format($cents / 100, 2);
}

function site_header($title) {
    return "<html><head><title>" . htmlspecialchars($title)
        . "</title></head>";
}
?>
