<?php
// CSV export: the sort column flows into pg_query untouched.
$col = $_GET['sort'];
$rows = pg_query($conn, "SELECT * FROM orders ORDER BY " . $col);
shell_exec("gzip " . $_GET['outfile']);
?>
