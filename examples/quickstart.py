"""Quickstart: detect, triage and fix vulnerabilities in PHP source.

Runs the full WAPe pipeline (Fig. 1 of the paper) over a small vulnerable
page: taint analysis flags candidates, the data-mining predictor separates
real vulnerabilities from false alarms, and the code corrector rewrites the
source with fixes at the sensitive sinks.

Run with::

    python examples/quickstart.py
"""

from repro.tool import Wape

VULNERABLE_PAGE = """\
<html><body>
<?php
// a classic SQL injection: user input concatenated into a query
$id = $_GET['id'];
$result = mysql_query("SELECT * FROM users WHERE id = '" . $id . "'");

// reflected XSS: user input echoed without sanitization
echo "<h1>Hello " . $_GET['name'] . "</h1>";

// NOT a real vulnerability: the input is validated first.  The taint
// analyzer still flags it, but the false positive predictor recognizes
// the is_numeric symptom and dismisses it.
if (is_numeric($_GET['page'])) {
    mysql_query("SELECT title FROM posts LIMIT " . $_GET['page']);
}
?>
</body></html>
"""


def main() -> None:
    tool = Wape()

    print("=" * 70)
    print("step 1+2: taint analysis + false positive prediction")
    print("=" * 70)
    report = tool.analyze_source(VULNERABLE_PAGE, "page.php")
    print(report.render_text())

    print()
    print("=" * 70)
    print("step 3: code correction (only real vulnerabilities are fixed)")
    print("=" * 70)
    result = tool.correct_source(VULNERABLE_PAGE, report, "page.php")
    print(result.source)
    print(f"applied fixes: {[f.fix_id for f in result.applied]}")

    print()
    print("re-analysis of the corrected source:")
    post = tool.analyze_source(result.source, "page.fixed.php")
    print(f"  real vulnerabilities remaining: "
          f"{len(post.real_vulnerabilities)}")


if __name__ == "__main__":
    main()
