"""False positive triage: old vs new data mining, and custom sanitizers.

Reproduces §V-A's three-way split of false-positive candidates:

* validated with an *original* symptom (``is_numeric``) — both tool
  versions predict the false alarm;
* validated with a symptom *added in WAPe* (``is_integer``) — only the new
  61-attribute predictor catches it (this is where the +42 predicted FPs of
  Table VI come from);
* neutralized by an app-specific helper (vfront's ``escape``) — neither
  predictor has evidence, so the candidate is reported as real until the
  user feeds the helper to the tool as a sanitization function, after which
  it is not even flagged.

Run with::

    python examples/false_positive_triage.py
"""

from repro.tool import Wap21, Wape

CASES = {
    "old symptom (is_numeric)": """\
<?php
if (is_numeric($_GET['n'])) {
    mysql_query("SELECT a FROM t WHERE n = " . $_GET['n']);
}
""",
    "new symptom (is_integer)": """\
<?php
if (is_integer($_GET['n'])) {
    mysql_query("SELECT a FROM t WHERE n = " . $_GET['n']);
}
""",
    "custom helper (escape)": """\
<?php
$v = escape($_GET['x']);
mysql_query("SELECT a FROM t WHERE x = '" . $v . "'");
""",
}


def verdict(report) -> str:
    if not report.outcomes:
        return "not even flagged"
    outcome = report.outcomes[0]
    if outcome.is_real:
        return "reported as REAL vulnerability"
    symptoms = ", ".join(sorted(outcome.prediction.symptoms)) or "none"
    return f"predicted FALSE POSITIVE (symptoms: {symptoms})"


def main() -> None:
    old_tool = Wap21()
    new_tool = Wape()

    for label, source in CASES.items():
        print(f"== {label}")
        print(f"   WAP v2.1: {verdict(old_tool.analyze_source(source))}")
        print(f"   WAPe:     {verdict(new_tool.analyze_source(source))}")
        print()

    print("== feeding `escape` to WAPe as a sanitization function (§V-A)")
    tuned = Wape(extra_sanitizers={"sqli": {"escape"}})
    print(f"   WAPe+escape: "
          f"{verdict(tuned.analyze_source(CASES['custom helper (escape)']))}")


if __name__ == "__main__":
    main()
