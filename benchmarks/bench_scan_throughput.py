"""Scan-pipeline throughput: parallel jobs and cold/warm cache.

Measures the whole-tree scan path (``Wape.analyze_tree``: fused engine +
scheduler + predictor) over the synthesized corpus at ``--jobs 1/2/4``,
cold-cache and warm-cache, and records files/sec and LoC/sec in
``BENCH_scan_throughput.json`` at the repository root so the performance
trajectory is tracked PR over PR.

Run under pytest (full corpus)::

    PYTHONPATH=src python -m pytest benchmarks/bench_scan_throughput.py -s

or standalone, optionally in smoke mode (tiny tree, no JSON written —
``make bench-smoke``)::

    PYTHONPATH=src python benchmarks/bench_scan_throughput.py --smoke

Speedup expectations are hardware-conditional: ``--jobs 4`` can only beat
``--jobs 1`` when there are cores to run on, so the 2x assertion is
applied when >= 4 CPUs are available.  The warm-cache assertion (>= 5x
faster than cold) holds on any hardware: a warm scan only hashes file
contents and unpickles results.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_scan_throughput.json")

JOB_LEVELS = (1, 2, 4)


def _build_corpus(root: str, smoke: bool) -> dict:
    from repro.corpus import (
        VULNERABLE_WEBAPPS,
        build_webapp_corpus,
        build_wordpress_corpus,
        materialize_package,
    )

    if smoke:
        packages = [materialize_package(p, root)
                    for p in VULNERABLE_WEBAPPS[:3]]
    else:
        packages = build_webapp_corpus(root) + build_wordpress_corpus(root)

    from repro.analysis.pipeline import ScanScheduler
    files = ScanScheduler.discover(root)
    loc = 0
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            loc += f.read().count("\n") + 1
    return {"packages": len(packages), "files": len(files), "loc": loc}


def _timed_scan(tool, root: str, jobs: int, cache_dir: str | None):
    from repro.analysis.options import ScanOptions

    start = time.perf_counter()
    report = tool.analyze_tree(
        root, ScanOptions(jobs=jobs, cache_dir=cache_dir))
    return time.perf_counter() - start, report


def _bench_incremental(tool, root: str, repeats: int = 3) -> dict:
    """The service-mode scenario: warm re-scan after a one-file edit.

    Uses the ``repro.api.Scanner`` warm path (what ``wape serve`` keeps
    resident) rather than the on-disk result cache: only the edited
    file's include closure is re-analyzed, everything else is reused
    in memory.
    """
    from repro.analysis.options import ScanOptions
    from repro.analysis.pipeline import ScanScheduler
    from repro.api import Scanner

    scanner = Scanner(tool, ScanOptions(jobs=1))
    start = time.perf_counter()
    cold = scanner.scan(root)
    cold_seconds = time.perf_counter() - start

    noop_seconds = min(
        _timed(lambda: scanner.scan(root)) for _ in range(repeats))

    edit_path = ScanScheduler.discover(root)[0]
    edit_seconds = []
    dirty = 0
    keyset = None
    for i in range(repeats):
        with open(edit_path, "a", encoding="utf-8") as f:
            f.write(f"\n<?php // bench edit {i} ?>\n")
        start = time.perf_counter()
        result = scanner.scan(root)
        edit_seconds.append(time.perf_counter() - start)
        assert result.incremental and result.analyzed_files > 0
        dirty = len(result.dirty)
        keyset = sorted(o.candidate.key() for o in result.report.outcomes)
    one_edit = min(edit_seconds)

    return {
        "jobs": 1,
        "cold_seconds": round(cold_seconds, 4),
        "warm_noop_seconds": round(noop_seconds, 4),
        "one_file_edit_seconds": round(one_edit, 4),
        "dirty_files": dirty,
        "reused_files": cold.analyzed_files - dirty,
        "speedup_vs_cold": round(cold_seconds / one_edit, 2),
        "_keyset": keyset,
    }


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _build_include_project(root: str, libs: int = 8,
                           pages: int = 48) -> None:
    """A synthetic include-heavy project for the summary-warm scenario.

    The webapp corpus resolves no includes (its ``require`` calls are
    dynamic), so the compositional summary tier never engages there.
    This project is the opposite: every page composes three shared
    libraries, which is exactly the shape the tier accelerates.
    """
    os.makedirs(root, exist_ok=True)
    for i in range(libs):
        with open(os.path.join(root, f"lib{i}.php"), "w",
                  encoding="utf-8") as f:
            f.write(
                "<?php\n"
                f"$g{i} = $_GET['g{i}'];\n"
                f"function fwd{i}($x) {{\n"
                "    $y = trim($x);\n"
                "    for ($j = 0; $j < 3; $j++) { $y = $y . $j; }\n"
                "    return $y;\n"
                "}\n"
                f"function clean{i}($x) {{ return htmlentities($x); }}\n"
                f"function sink{i}($x) {{ echo fwd{i}($x); }}\n")
    for p in range(pages):
        a, b, c = p % libs, (p + 1) % libs, (p + 2) % libs
        with open(os.path.join(root, f"page{p}.php"), "w",
                  encoding="utf-8") as f:
            f.write(
                "<?php\n"
                f"include 'lib{a}.php';\n"
                f"require 'lib{b}.php';\n"
                f"include_once 'lib{c}.php';\n"
                f"$q = $_GET['q{p}'];\n"
                f"echo fwd{a}($q);\n"
                f"echo clean{b}($q);\n"
                f"sink{c}($_POST['p{p}']);\n"
                f"echo $g{a};\n")


def _bench_summary_warm(tool, workdir: str) -> dict:
    """Summary-warm cold scan: result cache gone, ``ast-v<N>/`` kept.

    Simulates the second machine / post-``git clean`` scan: the per-file
    result cache misses on every file, but the AST + summary pack tiers
    replay each dependency's (env, summaries) state instead of
    re-executing its body.  ``summary_cache_miss == 0`` on the warm run
    is the "no dependency body re-executed" witness.
    """
    from repro.analysis.options import ScanOptions
    from repro.telemetry import Telemetry

    root = os.path.join(workdir, "include-project")
    _build_include_project(root)
    cache_dir = os.path.join(workdir, "cache-summary")

    def scan():
        telemetry = Telemetry()
        start = time.perf_counter()
        report = tool.analyze_tree(
            root, ScanOptions(jobs=1, cache_dir=cache_dir,
                              telemetry=telemetry))
        seconds = time.perf_counter() - start
        counters = telemetry.metrics.counters

        def count(name):
            counter = counters.get(name)
            return int(counter.value) if counter is not None else 0

        return seconds, report, count

    cold_seconds, cold_report, cold_count = scan()
    cold_misses = cold_count("summary_cache_miss")

    # drop the result cache (fingerprint directories), keep ast-v<N>/
    import shutil
    for name in os.listdir(cache_dir):
        if not name.startswith("ast-v"):
            shutil.rmtree(os.path.join(cache_dir, name))

    warm_seconds, warm_report, warm_count = scan()
    warm_keys = sorted(o.candidate.key() for o in warm_report.outcomes)
    cold_keys = sorted(o.candidate.key() for o in cold_report.outcomes)
    assert warm_keys == cold_keys, \
        "summary replay changed the candidate set"
    hits = warm_count("summary_cache_hit")
    misses = warm_count("summary_cache_miss")
    assert hits > 0, "summary-warm run never consulted the cache"
    assert misses == 0, \
        f"summary-warm run re-executed {misses} dependency bodies"

    return {
        "jobs": 1,
        "files": len(warm_report.files),
        "candidates": len(warm_keys),
        "cold_seconds": round(cold_seconds, 4),
        "summary_warm_seconds": round(warm_seconds, 4),
        "cold_summary_misses": cold_misses,
        "warm_summary_hits": hits,
        "warm_summary_misses": misses,
        "speedup_vs_cold": round(cold_seconds / warm_seconds, 2),
    }


def _bench_prefilter_cold(tool, root: str) -> tuple[dict, list]:
    """prefilter-cold scenario: first-contact jobs=1 scan, on vs off.

    No result cache in either run: this measures exactly the lex/parse/
    taint work the knowledge-compiled relevance prefilter removes from a
    cold scan, with the tier counts recorded as honesty fields (a run
    that skipped nothing proves nothing).  Both wall clock and the
    traced ``scan`` phase are recorded: the prefilter only removes scan-
    phase work — include resolution is paid either way — so the phase
    ratio is the signal and the wall ratio is the honesty field (on a
    loaded 1-CPU box the include-graph phase dominates and wall clock
    jitters past the saving).  The returned keysets feed the benchmark-
    wide candidate-set equality assertion: the prefilter must be
    findings-preserving here too.
    """
    from repro.analysis.options import ScanOptions

    def _run(prefilter: bool):
        start = time.perf_counter()
        report = tool.analyze_tree(
            root, ScanOptions(jobs=1, prefilter=prefilter, telemetry=True))
        wall = time.perf_counter() - start
        phases = dict(report.stats.wall_phases)
        return report, wall, phases.get("scan", 0.0)

    off_report, off_seconds, off_scan = _run(False)
    on_report, on_seconds, on_scan = _run(True)
    stats = on_report.prefilter
    assert stats is not None
    keysets = [sorted(o.candidate.key() for o in off_report.outcomes),
               sorted(o.candidate.key() for o in on_report.outcomes)]
    return {
        "jobs": 1,
        "cold_off_seconds": round(off_seconds, 4),
        "cold_on_seconds": round(on_seconds, 4),
        "scan_phase_off_seconds": round(off_scan, 4),
        "scan_phase_on_seconds": round(on_scan, 4),
        "skipped": stats.skipped,
        "dep_only": stats.dep_only,
        "sink_bearing": stats.sink_bearing,
        "skip_rate": round(stats.skip_rate, 4),
        "speedup_off_vs_on": round(off_seconds / on_seconds, 2),
        "scan_phase_speedup": round(off_scan / on_scan, 2)
        if on_scan else 0.0,
    }, keysets


def _bench_fleet(tool, workdir: str, smoke: bool) -> dict:
    """Fleet scenario: N worker processes serving concurrent scans.

    Spins up :class:`repro.service.FleetService` at each worker level,
    scans a set of distinct project roots concurrently (cold, so every
    scan is real work), and records the workers-vs-throughput curve.
    Smoke mode is the CI guard: 2 workers, 1 scan each, clean shutdown.

    The curve is only a *speedup* curve when the cores exist —
    ``workers_capped_by_cpu`` says whether the top level oversubscribed
    the machine.
    """
    import shutil
    import threading

    from repro.analysis.options import ScanOptions
    from repro.service import FleetService, ServiceClient

    source = os.path.join(workdir, "fleet-src")
    _build_include_project(source, libs=4, pages=8 if smoke else 24)
    levels = (2,) if smoke else (1, 2, 4)
    n_roots = 2 if smoke else 8
    roots = []
    for i in range(n_roots):
        dst = os.path.join(workdir, f"fleet-root-{i}")
        shutil.copytree(source, dst)
        roots.append(dst)

    results = []
    for workers in levels:
        svc = FleetService(tool, ScanOptions(jobs=1), workers=workers)
        svc.start_background()
        try:
            client = ServiceClient(port=svc.port)
            client.wait_ready()
            errors: list[Exception] = []

            def scan(root, port=svc.port):
                try:
                    report = ServiceClient(port=port).scan(root,
                                                           forget=True)
                    assert report["summary"]["files"] > 0
                except Exception as exc:  # surfaced after the join
                    errors.append(exc)

            threads = [threading.Thread(target=scan, args=(root,))
                       for root in roots]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            seconds = time.perf_counter() - start
            assert not errors, errors[0]
            status = client.status()
            assert all(w["alive"] for w in status["workers"])
            assert status["requests"]["served"] == n_roots
            client.shutdown()
        finally:
            svc.close()
        assert all(not w.process.is_alive() for w in svc.workers), \
            "fleet shutdown left worker processes running"
        results.append({
            "workers": workers,
            "scans": n_roots,
            "seconds": round(seconds, 4),
            "scans_per_sec": round(n_roots / seconds, 2),
        })

    fleet = {
        "levels": results,
        "cpu_count": os.cpu_count(),
        "workers_capped_by_cpu": (os.cpu_count() or 1) < levels[-1],
    }
    if levels[0] == 1:
        fleet["speedup_max_workers_vs_1"] = round(
            results[0]["seconds"] / results[-1]["seconds"], 2)
    return fleet


def run_benchmark(smoke: bool = False) -> dict:
    from repro.tool import Wape

    with tempfile.TemporaryDirectory(prefix="bench-scan-") as workdir:
        corpus_root = os.path.join(workdir, "corpus")
        os.makedirs(corpus_root)
        corpus = _build_corpus(corpus_root, smoke)
        tool = Wape(weapon_flags=["-nosqli", "-hei", "-wpsqli"])

        runs = []
        keysets = []
        warm_cache = None
        for jobs in JOB_LEVELS:
            cache_dir = os.path.join(workdir, f"cache-j{jobs}")
            seconds, report = _timed_scan(tool, corpus_root, jobs,
                                          cache_dir)
            runs.append({"jobs": jobs, "cache": "cold",
                         "seconds": round(seconds, 4),
                         "files_per_sec": round(corpus["files"] / seconds,
                                                1),
                         "loc_per_sec": round(corpus["loc"] / seconds, 1)})
            keysets.append(sorted(o.candidate.key()
                                  for o in report.outcomes))
            warm_cache = cache_dir
        for jobs in (1, JOB_LEVELS[-1]):
            seconds, report = _timed_scan(tool, corpus_root, jobs,
                                          warm_cache)
            runs.append({"jobs": jobs, "cache": "warm",
                         "seconds": round(seconds, 4),
                         "files_per_sec": round(corpus["files"] / seconds,
                                                1),
                         "loc_per_sec": round(corpus["loc"] / seconds, 1)})
            keysets.append(sorted(o.candidate.key()
                                  for o in report.outcomes))

        # service-mode scenario: daemon-style warm re-scan of a
        # one-file edit (comment-only, so the candidate set is stable)
        incremental = _bench_incremental(tool, corpus_root)
        keysets.append(incremental.pop("_keyset"))

        # prefilter-cold scenario: cache-free jobs=1 scan with the
        # relevance prefilter on vs off (ISSUE 10's headline number)
        prefilter_cold, prefilter_keysets = _bench_prefilter_cold(
            tool, corpus_root)
        keysets.extend(prefilter_keysets)

        # summary-warm scenario: include-heavy project, result cache
        # wiped, dependency state replayed from the summary pack tier
        summary_warm = _bench_summary_warm(tool, workdir)

        # fleet scenario: worker processes vs concurrent-scan throughput
        # (smoke: 2 workers, 1 scan each, clean shutdown)
        fleet = _bench_fleet(tool, workdir, smoke)

        # one instrumented run: where does the wall clock go?  Records
        # the telemetry phase-time breakdown into the trajectory file.
        from repro.analysis.options import ScanOptions
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        start = time.perf_counter()
        report = tool.analyze_tree(
            corpus_root,
            ScanOptions(jobs=JOB_LEVELS[-1], telemetry=telemetry))
        traced_seconds = time.perf_counter() - start
        keysets.append(sorted(o.candidate.key()
                              for o in report.outcomes))
        stats = report.stats
        phase_breakdown = {
            "jobs": JOB_LEVELS[-1],
            "seconds": round(traced_seconds, 4),
            "workers": stats.workers,
            "wall_phases": [
                {"phase": name, "seconds": round(seconds, 4)}
                for name, seconds in stats.wall_phases],
            "file_phases": stats.file_phases,
        }

    assert all(k == keysets[0] for k in keysets), \
        "jobs/cache settings changed the candidate set"

    cold = {r["jobs"]: r["seconds"] for r in runs if r["cache"] == "cold"}
    warm = {r["jobs"]: r["seconds"] for r in runs if r["cache"] == "warm"}
    result = {
        "benchmark": "scan_throughput",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        # honesty flag: with fewer CPUs than the largest jobs level the
        # parallel numbers measure oversubscription, not speedup
        "jobs_capped_by_cpu": (os.cpu_count() or 1) < JOB_LEVELS[-1],
        "corpus": corpus,
        "candidates": len(keysets[0]),
        "runs": runs,
        "incremental": incremental,
        "prefilter_cold": prefilter_cold,
        "summary_warm": summary_warm,
        "fleet": fleet,
        "phase_breakdown": phase_breakdown,
        "speedup_jobs4_vs_jobs1_cold": round(cold[1] / cold[4], 2),
        "speedup_warm_vs_cold_jobs1": round(cold[1] / warm[1], 2),
    }
    return result


def print_summary(result: dict) -> None:
    corpus = result["corpus"]
    print(f"\n### scan throughput — {corpus['packages']} packages, "
          f"{corpus['files']} files, {corpus['loc']} LoC, "
          f"{result['cpu_count']} CPU(s)")
    for run in result["runs"]:
        print(f"  jobs={run['jobs']} {run['cache']:<4}: "
              f"{run['seconds']:>7.3f}s  "
              f"{run['files_per_sec']:>8.1f} files/s  "
              f"{run['loc_per_sec']:>9.1f} LoC/s")
    print(f"  speedup jobs=4 vs jobs=1 (cold): "
          f"{result['speedup_jobs4_vs_jobs1_cold']}x")
    print(f"  speedup warm vs cold (jobs=1):   "
          f"{result['speedup_warm_vs_cold_jobs1']}x")
    inc = result["incremental"]
    print(f"  incremental (service warm path): cold "
          f"{inc['cold_seconds']}s, no-op {inc['warm_noop_seconds']}s, "
          f"1-file edit {inc['one_file_edit_seconds']}s "
          f"({inc['dirty_files']} dirty) -> "
          f"{inc['speedup_vs_cold']}x vs cold")
    pf = result["prefilter_cold"]
    print(f"  prefilter-cold (jobs=1, no cache): off "
          f"{pf['cold_off_seconds']}s, on {pf['cold_on_seconds']}s "
          f"({pf['skipped']} skipped, {pf['dep_only']} dep-only, "
          f"{pf['sink_bearing']} sink-bearing, "
          f"{pf['skip_rate'] * 100:.0f}% skip rate) -> "
          f"{pf['speedup_off_vs_on']}x wall, "
          f"{pf['scan_phase_speedup']}x scan phase "
          f"({pf['scan_phase_off_seconds']}s -> "
          f"{pf['scan_phase_on_seconds']}s)")
    sw = result["summary_warm"]
    print(f"  summary-warm (include project, {sw['files']} files): cold "
          f"{sw['cold_seconds']}s ({sw['cold_summary_misses']} dep "
          f"computations), summary-warm {sw['summary_warm_seconds']}s "
          f"({sw['warm_summary_hits']} replayed, "
          f"{sw['warm_summary_misses']} re-executed) -> "
          f"{sw['speedup_vs_cold']}x vs cold")
    fleet = result["fleet"]
    capped = " (capped by cpu)" if fleet["workers_capped_by_cpu"] else ""
    for level in fleet["levels"]:
        print(f"  fleet workers={level['workers']}: {level['scans']} "
              f"concurrent scans in {level['seconds']}s -> "
              f"{level['scans_per_sec']} scans/s{capped}")
    if "speedup_max_workers_vs_1" in fleet:
        print(f"  fleet speedup max-workers vs 1: "
              f"{fleet['speedup_max_workers_vs_1']}x{capped}")
    breakdown = result["phase_breakdown"]
    print(f"  phase breakdown (traced, jobs={breakdown['jobs']}, "
          f"{breakdown['seconds']}s):")
    for row in breakdown["wall_phases"]:
        print(f"    {row['phase']:<10} {row['seconds']:>8.4f}s")


def check_expectations(result: dict) -> None:
    assert result["speedup_warm_vs_cold_jobs1"] >= 5.0, \
        "warm-cache re-scan should be >= 5x faster than cold"
    if not result["smoke"]:
        assert result["incremental"]["speedup_vs_cold"] >= 10.0, \
            "warm incremental re-scan should be >= 10x faster than cold"
    prefilter = result["prefilter_cold"]
    assert prefilter["skip_rate"] > 0, \
        "prefilter skipped nothing on the corpus: the scenario is moot"
    if not result["smoke"]:
        # gate the phase the prefilter actually removes work from; the
        # wall ratio is recorded but not gated (include resolution
        # dominates it and jitters on a loaded 1-CPU runner)
        assert prefilter["scan_phase_speedup"] >= 1.1, \
            "prefilter should measurably shrink the cold scan phase"
    if result["jobs_capped_by_cpu"]:
        print("  (speedup assertion skipped: "
              f"{result['cpu_count']} CPU(s) < jobs={JOB_LEVELS[-1]})")
    elif (os.cpu_count() or 1) >= 4:
        assert result["speedup_jobs4_vs_jobs1_cold"] >= 2.0, \
            "--jobs 4 should be >= 2x faster than --jobs 1 on >= 4 cores"
    fleet = result["fleet"]
    if "speedup_max_workers_vs_1" in fleet \
            and not fleet["workers_capped_by_cpu"]:
        assert fleet["speedup_max_workers_vs_1"] >= 1.5, \
            "fleet should scale concurrent scans when the cores exist"


def test_scan_throughput():
    """Full-corpus run: records BENCH_scan_throughput.json at repo root."""
    result = run_benchmark(smoke=False)
    print_summary(result)
    with open(RESULT_PATH, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(f"  recorded -> {RESULT_PATH}")
    check_expectations(result)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    outcome = run_benchmark(smoke=smoke)
    print_summary(outcome)
    if smoke:
        # smoke mode guards the pipeline, it does not record trajectory
        check_expectations(outcome)
    else:
        with open(RESULT_PATH, "w", encoding="utf-8") as f:
            json.dump(outcome, f, indent=2)
            f.write("\n")
        print(f"recorded -> {RESULT_PATH}")
        check_expectations(outcome)
