"""Scan-pipeline throughput: parallel jobs and cold/warm cache.

Measures the whole-tree scan path (``Wape.analyze_tree``: fused engine +
scheduler + predictor) over the synthesized corpus at ``--jobs 1/2/4``,
cold-cache and warm-cache, and records files/sec and LoC/sec in
``BENCH_scan_throughput.json`` at the repository root so the performance
trajectory is tracked PR over PR.

Run under pytest (full corpus)::

    PYTHONPATH=src python -m pytest benchmarks/bench_scan_throughput.py -s

or standalone, optionally in smoke mode (tiny tree, no JSON written —
``make bench-smoke``)::

    PYTHONPATH=src python benchmarks/bench_scan_throughput.py --smoke

Speedup expectations are hardware-conditional: ``--jobs 4`` can only beat
``--jobs 1`` when there are cores to run on, so the 2x assertion is
applied when >= 4 CPUs are available.  The warm-cache assertion (>= 5x
faster than cold) holds on any hardware: a warm scan only hashes file
contents and unpickles results.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_scan_throughput.json")

JOB_LEVELS = (1, 2, 4)


def _build_corpus(root: str, smoke: bool) -> dict:
    from repro.corpus import (
        VULNERABLE_WEBAPPS,
        build_webapp_corpus,
        build_wordpress_corpus,
        materialize_package,
    )

    if smoke:
        packages = [materialize_package(p, root)
                    for p in VULNERABLE_WEBAPPS[:3]]
    else:
        packages = build_webapp_corpus(root) + build_wordpress_corpus(root)

    from repro.analysis.pipeline import ScanScheduler
    files = ScanScheduler.discover(root)
    loc = 0
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            loc += f.read().count("\n") + 1
    return {"packages": len(packages), "files": len(files), "loc": loc}


def _timed_scan(tool, root: str, jobs: int, cache_dir: str | None):
    start = time.perf_counter()
    report = tool.analyze_tree(root, jobs=jobs, cache_dir=cache_dir)
    return time.perf_counter() - start, report


def run_benchmark(smoke: bool = False) -> dict:
    from repro.tool import Wape

    with tempfile.TemporaryDirectory(prefix="bench-scan-") as workdir:
        corpus_root = os.path.join(workdir, "corpus")
        os.makedirs(corpus_root)
        corpus = _build_corpus(corpus_root, smoke)
        tool = Wape(weapon_flags=["-nosqli", "-hei", "-wpsqli"])

        runs = []
        keysets = []
        warm_cache = None
        for jobs in JOB_LEVELS:
            cache_dir = os.path.join(workdir, f"cache-j{jobs}")
            seconds, report = _timed_scan(tool, corpus_root, jobs,
                                          cache_dir)
            runs.append({"jobs": jobs, "cache": "cold",
                         "seconds": round(seconds, 4),
                         "files_per_sec": round(corpus["files"] / seconds,
                                                1),
                         "loc_per_sec": round(corpus["loc"] / seconds, 1)})
            keysets.append(sorted(o.candidate.key()
                                  for o in report.outcomes))
            warm_cache = cache_dir
        for jobs in (1, JOB_LEVELS[-1]):
            seconds, report = _timed_scan(tool, corpus_root, jobs,
                                          warm_cache)
            runs.append({"jobs": jobs, "cache": "warm",
                         "seconds": round(seconds, 4),
                         "files_per_sec": round(corpus["files"] / seconds,
                                                1),
                         "loc_per_sec": round(corpus["loc"] / seconds, 1)})
            keysets.append(sorted(o.candidate.key()
                                  for o in report.outcomes))

        # one instrumented run: where does the wall clock go?  Records
        # the telemetry phase-time breakdown into the trajectory file.
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        start = time.perf_counter()
        report = tool.analyze_tree(corpus_root, jobs=JOB_LEVELS[-1],
                                   cache_dir=None, telemetry=telemetry)
        traced_seconds = time.perf_counter() - start
        keysets.append(sorted(o.candidate.key()
                              for o in report.outcomes))
        stats = report.stats
        phase_breakdown = {
            "jobs": JOB_LEVELS[-1],
            "seconds": round(traced_seconds, 4),
            "workers": stats.workers,
            "wall_phases": [
                {"phase": name, "seconds": round(seconds, 4)}
                for name, seconds in stats.wall_phases],
            "file_phases": stats.file_phases,
        }

    assert all(k == keysets[0] for k in keysets), \
        "jobs/cache settings changed the candidate set"

    cold = {r["jobs"]: r["seconds"] for r in runs if r["cache"] == "cold"}
    warm = {r["jobs"]: r["seconds"] for r in runs if r["cache"] == "warm"}
    result = {
        "benchmark": "scan_throughput",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "corpus": corpus,
        "candidates": len(keysets[0]),
        "runs": runs,
        "phase_breakdown": phase_breakdown,
        "speedup_jobs4_vs_jobs1_cold": round(cold[1] / cold[4], 2),
        "speedup_warm_vs_cold_jobs1": round(cold[1] / warm[1], 2),
    }
    return result


def print_summary(result: dict) -> None:
    corpus = result["corpus"]
    print(f"\n### scan throughput — {corpus['packages']} packages, "
          f"{corpus['files']} files, {corpus['loc']} LoC, "
          f"{result['cpu_count']} CPU(s)")
    for run in result["runs"]:
        print(f"  jobs={run['jobs']} {run['cache']:<4}: "
              f"{run['seconds']:>7.3f}s  "
              f"{run['files_per_sec']:>8.1f} files/s  "
              f"{run['loc_per_sec']:>9.1f} LoC/s")
    print(f"  speedup jobs=4 vs jobs=1 (cold): "
          f"{result['speedup_jobs4_vs_jobs1_cold']}x")
    print(f"  speedup warm vs cold (jobs=1):   "
          f"{result['speedup_warm_vs_cold_jobs1']}x")
    breakdown = result["phase_breakdown"]
    print(f"  phase breakdown (traced, jobs={breakdown['jobs']}, "
          f"{breakdown['seconds']}s):")
    for row in breakdown["wall_phases"]:
        print(f"    {row['phase']:<10} {row['seconds']:>8.4f}s")


def check_expectations(result: dict) -> None:
    assert result["speedup_warm_vs_cold_jobs1"] >= 5.0, \
        "warm-cache re-scan should be >= 5x faster than cold"
    if (os.cpu_count() or 1) >= 4:
        assert result["speedup_jobs4_vs_jobs1_cold"] >= 2.0, \
            "--jobs 4 should be >= 2x faster than --jobs 1 on >= 4 cores"


def test_scan_throughput():
    """Full-corpus run: records BENCH_scan_throughput.json at repo root."""
    result = run_benchmark(smoke=False)
    print_summary(result)
    with open(RESULT_PATH, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(f"  recorded -> {RESULT_PATH}")
    check_expectations(result)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    outcome = run_benchmark(smoke=smoke)
    print_summary(outcome)
    if smoke:
        # smoke mode guards the pipeline, it does not record trajectory
        check_expectations(outcome)
    else:
        with open(RESULT_PATH, "w", encoding="utf-8") as f:
            json.dump(outcome, f, indent=2)
            f.write("\n")
        print(f"recorded -> {RESULT_PATH}")
        check_expectations(outcome)
