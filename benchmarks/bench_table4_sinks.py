"""Table IV — sensitive sinks added to the sub-modules for the new classes.

Regenerates the table from the live knowledge base and times the
construction of the full WAPe detector stack from its catalogs (the
operation a user pays when the tool starts).
"""

from __future__ import annotations

from conftest import print_table

from repro.vulnerabilities import (
    SUBMODULE_CLIENT_SIDE,
    SUBMODULE_QUERY,
    SUBMODULE_RCE_FILE,
    build_submodules,
    wape_registry,
)

PAPER_TABLE4 = {
    "sf": (SUBMODULE_RCE_FILE,
           {"setcookie", "setrawcookie", "session_id"}),
    "cs": (SUBMODULE_CLIENT_SIDE,
           {"file_put_contents", "file_get_contents"}),
    "ldapi": (SUBMODULE_QUERY,
              {"ldap_add", "ldap_delete", "ldap_list", "ldap_read",
               "ldap_search"}),
    "xpathi": (SUBMODULE_QUERY,
               {"xpath_eval", "xptr_eval", "xpath_eval_expression"}),
}


def test_table4_submodule_sinks(benchmark):
    def kernel():
        registry = wape_registry()
        return registry, build_submodules(registry)

    registry, submodules = benchmark(kernel)

    rows = []
    for class_id, (submodule, _sinks) in PAPER_TABLE4.items():
        info = registry.get(class_id)
        rows.append([info.submodule.replace("_", " "),
                     info.table_label,
                     ", ".join(sorted(s.name for s in info.config.sinks))])
    print_table("Table IV - sensitive sinks added to the sub-modules",
                ["sub-module", "vuln.", "sensitive sinks"], rows)

    # exact reproduction of the table's sink sets and owners
    for class_id, (submodule, sinks) in PAPER_TABLE4.items():
        info = registry.get(class_id)
        assert info.submodule == submodule, class_id
        assert {s.name for s in info.config.sinks} == sinks, class_id
        # and the sub-module actually owns the class
        assert class_id in submodules[submodule].class_ids
