"""End-to-end correction over the whole web-application corpus.

The paper's pipeline ends with the code corrector removing the detected
vulnerabilities (Fig. 1).  This benchmark fixes every real vulnerability
of the 17-package corpus and re-analyzes the corrected trees, verifying
the closing property at scale: corrected code re-parses and the fixed
classes are gone, with only the (by design) unpredictable custom-FP
candidates behind.
"""

from __future__ import annotations

from conftest import print_table


def test_corrector_over_whole_corpus(benchmark, wape_armed,
                                     wape_webapp_runs, tmp_path_factory):
    out_root = tmp_path_factory.mktemp("fixed")

    def fix_all():
        stats = {"files": 0, "fixes": 0, "skipped": 0}
        for pkg, report in wape_webapp_runs:
            for file_report in report.files:
                if not file_report.is_vulnerable:
                    continue
                real = [o.candidate for o in file_report.real]
                fixed_path = out_root / (
                    pkg.name.replace(" ", "_") + "-" + pkg.version
                    + "_" + file_report.filename.rsplit("/", 1)[-1])
                result = wape_armed.corrector.correct_file(
                    file_report.filename, real, str(fixed_path))
                stats["files"] += 1
                stats["fixes"] += len(result.applied)
                stats["skipped"] += len(result.skipped)
        return stats

    stats = benchmark.pedantic(fix_all, rounds=1, iterations=1)

    # re-analyze every corrected file
    remaining = 0
    reparse_failures = 0
    fixed_files = 0
    for path in sorted(out_root.iterdir()):
        fixed_files += 1
        report = wape_armed.analyze_file(str(path))
        if report.files[0].parse_error:
            reparse_failures += 1
        remaining += len(report.real_vulnerabilities)

    print_table("end-to-end correction over the 17-package corpus",
                ["quantity", "value"],
                [["vulnerable files corrected", stats["files"]],
                 ["fixes applied", stats["fixes"]],
                 ["candidates skipped", stats["skipped"]],
                 ["corrected files that re-parse",
                  fixed_files - reparse_failures],
                 ["real vulnerabilities after correction", remaining]])

    assert stats["files"] > 0
    # one fix per (sink line, class); several flows can share a fix call,
    # so fixes <= real vulnerabilities but within a sane band
    assert stats["fixes"] >= 300
    assert stats["skipped"] == 0
    # every corrected file is valid PHP again
    assert reparse_failures == 0
    # correction closes the loop: nothing the tool can fix remains
    assert remaining == 0