"""Ablation — guard recording (the symptom-collection machinery).

Validation *guards* (``if (is_numeric($x)) ...``) never untaint, but the
engine records them on the data-flow path so the predictor can see them
as symptoms.  This ablation strips the guard steps off the candidates
before prediction and measures how many false positives the predictor
then misses — isolating the contribution of guard recording to the
Table VI numbers.
"""

from __future__ import annotations

import dataclasses
import random

from conftest import print_table

from repro.analysis import Detector
from repro.analysis.model import STEP_GUARD
from repro.corpus import fp_snippet, page_wrapper
from repro.mining import new_predictor
from repro.vulnerabilities.catalog import sqli_info

N = 60


def _strip_guards(candidate):
    return dataclasses.replace(
        candidate,
        path=tuple(s for s in candidate.path if s.kind != STEP_GUARD))


def test_ablation_guard_recording(benchmark):
    detector = Detector([sqli_info().config])
    predictor = new_predictor()

    candidates = []
    for seed in range(N):
        rng = random.Random(f"guard-ablation:{seed}")
        kind = "old" if seed % 2 else "new"
        src = page_wrapper([fp_snippet(kind, rng)], "t", rng)
        cands = detector.detect_source(src)
        assert len(cands) == 1
        candidates.append(cands[0])

    def kernel():
        with_guards = sum(
            predictor.predict(c).is_false_positive for c in candidates)
        without_guards = sum(
            predictor.predict(_strip_guards(c)).is_false_positive
            for c in candidates)
        return with_guards, without_guards

    with_guards, without_guards = benchmark.pedantic(kernel, rounds=1,
                                                     iterations=1)

    print_table("ablation: guard steps on the data-flow path",
                ["configuration", "FPs predicted", f"out of"],
                [["guards recorded (shipping)", with_guards, N],
                 ["guards stripped (ablated)", without_guards, N]])

    # guard recording is what makes validated candidates recognizable:
    # stripping it loses most predictions
    assert with_guards >= 0.9 * N
    assert without_guards <= with_guards * 0.5
