"""Table I — attributes and symptoms of the original and the new WAP.

Regenerates the attribute/symptom accounting: the original tool's 15
feature attributes (+ class = 16) summarizing 24 function symptoms, versus
the new tool where every one of the 60 symptoms is its own attribute
(+ class = 61).  The timed kernel is symptom-set vectorization under both
schemes, the operation the predictor performs per candidate.
"""

from __future__ import annotations

import random

from conftest import print_table

from repro.mining import (
    NewAttributeScheme,
    OriginalAttributeScheme,
    attribute_groups,
    all_symptoms,
    describe_scheme,
    new_symptoms,
    original_symptoms,
)


def test_table1_symptom_catalog(benchmark):
    original = OriginalAttributeScheme()
    new = NewAttributeScheme()

    # timed kernel: vectorize 1000 random symptom sets under both schemes
    names = [s.name for s in all_symptoms()]
    rng = random.Random(42)
    sets = [frozenset(rng.sample(names, rng.randrange(1, 8)))
            for _ in range(1000)]

    def kernel():
        for symptom_set in sets:
            original.vectorize(symptom_set)
            new.vectorize(symptom_set)

    benchmark(kernel)

    # --- reproduce the table accounting -------------------------------
    rows = []
    for attribute, symptoms in attribute_groups().items():
        old = [s.name for s in symptoms if s.original]
        added = [s.name for s in symptoms if not s.original]
        rows.append([attribute, symptoms[0].category,
                     ", ".join(old) or "-", ", ".join(added) or "-"])
    print_table("Table I - attributes and symptoms",
                ["attribute", "category", "original symptoms",
                 "new symptoms"], rows)

    old_info = describe_scheme(original)
    new_info = describe_scheme(new)
    print_table("Table I - accounting (paper: 16 vs 61 attributes, "
                "24 original symptoms)",
                ["scheme", "feature attrs", "attrs incl. class",
                 "symptoms seen"],
                [["original WAP", original.width,
                  old_info["attributes_with_class"],
                  len(original_symptoms())],
                 ["new WAP (WAPe)", new.width,
                  new_info["attributes_with_class"],
                  len(all_symptoms())]])

    # shape assertions: the paper's exact accounting
    assert old_info["attributes_with_class"] == 16
    assert new_info["attributes_with_class"] == 61
    assert len(original_symptoms()) == 24
    assert len(new_symptoms()) == 36
    assert len(all_symptoms()) == 60
