"""Table III — confusion matrices of the top-3 classifiers.

Same cross-validation as Table II, printed as the three 2x2 confusion
matrices.  Paper values: SVM (121, 6 / 7, 122), LR (119, 6 / 9, 122),
RF (116, 3 / 12, 125) over 128 FP + 128 RV instances.
"""

from __future__ import annotations

import pytest

from conftest import print_table

from repro.mining import build_dataset, cross_validate
from repro.mining.predictor import top3_new

PAPER_CM = {
    "SVM": (121, 6, 7, 122),
    "Logistic Regression": (119, 6, 9, 122),
    "Random Forest": (116, 3, 12, 125),
}


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("new")


def test_table3_confusion_matrices(benchmark, dataset):
    def kernel():
        return {clf.name: cross_validate(type(clf), dataset.X,
                                         dataset.y, k=10)
                for clf in top3_new()}

    results = benchmark.pedantic(kernel, rounds=1, iterations=1)

    rows = []
    for name, cm in results.items():
        ptp, pfp, pfn, ptn = PAPER_CM[name]
        rows.append([name,
                     f"{cm.tp} ({ptp})", f"{cm.fp} ({pfp})",
                     f"{cm.fn} ({pfn})", f"{cm.tn} ({ptn})"])
    print_table("Table III - measured (paper) confusion matrices",
                ["classifier", "tp: FP->FP", "fp: RV->FP (missed vuln!)",
                 "fn: FP->RV", "tn: RV->RV"], rows)

    for name, cm in results.items():
        # all 256 instances accounted for
        assert cm.total == dataset.size
        # both classes are 128 strong
        assert cm.tp + cm.fn == 128
        assert cm.fp + cm.tn == 128
        # diagonal dominance: classification works
        assert cm.tp > cm.fn and cm.tn > cm.fp
        # misclassified vulnerabilities (fp cell) stay in single digits,
        # like the paper's 6 / 6 / 3
        assert cm.fp <= 12, name
