"""Fig. 5 — number of vulnerabilities detected by class, web apps vs
WordPress plugins.

Aggregates the two corpus runs (Tables V-VII) into the figure's class
distribution and checks its reading: SQLI and XSS dominate both corpora;
HI and CS appear in both; LDAPI and SF only in the web applications.
The timed kernel is the aggregation over the cached reports.
"""

from __future__ import annotations

from conftest import class_totals, print_table

CLASS_ORDER = ("SQLI", "XSS", "Files", "SCD", "LDAPI", "SF", "HI", "CS")
PAPER_WEBAPPS = {"SQLI": 72, "XSS": 255, "Files": 55, "SCD": 4,
                 "LDAPI": 2, "SF": 1, "HI": 19, "CS": 5}
PAPER_PLUGINS = {"SQLI": 55, "XSS": 71, "Files": 31, "SCD": 5,
                 "LDAPI": 0, "SF": 0, "HI": 5, "CS": 2}


def test_fig5_class_distribution(benchmark, wape_webapp_runs,
                                 wape_plugin_runs):
    def kernel():
        return (class_totals(wape_webapp_runs),
                class_totals(wape_plugin_runs))

    webapps, plugins = benchmark(kernel)

    scale = 4  # characters per 10 vulnerabilities
    rows = []
    for group in CLASS_ORDER:
        w = webapps.get(group, 0)
        p = plugins.get(group, 0)
        rows.append([group, w, PAPER_WEBAPPS[group],
                     p, PAPER_PLUGINS[group],
                     "W" * max(1 if w else 0, w * scale // 10)
                     + " " + "P" * max(1 if p else 0, p * scale // 10)])
    print_table("Fig. 5 - vulnerabilities by class "
                "(W = web apps, P = plugins; paper values alongside)",
                ["class", "webapps", "paper", "plugins", "paper",
                 "chart"], rows)

    # SQLI and XSS are the most prevalent classes in both corpora
    # (ignoring the custom-FP inflation of SQLI, the ordering holds)
    for totals in (webapps, plugins):
        top2 = {g for g, _ in totals.most_common(2)}
        assert top2 == {"SQLI", "XSS"}
    assert webapps["XSS"] > webapps["SQLI"]  # XSS leads in web apps
    # HI and CS detected in both analyses
    assert webapps["HI"] > 0 and plugins["HI"] > 0
    assert webapps["CS"] > 0 and plugins["CS"] > 0
    # LDAPI and SF only in the web applications, not the plugins
    assert webapps["LDAPI"] == 2 and webapps["SF"] == 1
    assert plugins.get("LDAPI", 0) == 0 and plugins.get("SF", 0) == 0
