"""Ablation — attribute granularity (16 grouped vs 61 per-symptom).

The paper's central data-mining change is making *every* symptom its own
attribute (§III-B1).  This ablation classifies the exact same false-
positive candidates from the corpus with the original 16-attribute
predictor and the new 61-attribute predictor, quantifying the +42
predicted false positives of Table VI at the mechanism level:

* candidates whose validation uses an **original** symptom are caught by
  both predictors;
* candidates whose only evidence is a **new** symptom are invisible to the
  16-attribute scheme (the symptom is not recognized at all) and caught by
  the 61-attribute one;
* **custom-helper** candidates carry no symptoms and are missed by both.
"""

from __future__ import annotations

import random

from conftest import print_table

from repro.corpus import fp_snippet, page_wrapper
from repro.mining import new_predictor, original_predictor
from repro.vulnerabilities.catalog import sqli_info
from repro.analysis import Detector

N_PER_KIND = 40


def _candidates(kind: str):
    detector = Detector([sqli_info().config])
    out = []
    for seed in range(N_PER_KIND):
        rng = random.Random(f"{kind}:{seed}")
        src = page_wrapper([fp_snippet(kind, rng)], "t", rng)
        cands = detector.detect_source(src, f"{kind}_{seed}.php")
        assert len(cands) == 1
        out.append(cands[0])
    return out


def test_ablation_attribute_granularity(benchmark):
    by_kind = {kind: _candidates(kind)
               for kind in ("old", "new", "custom")}
    old_pred = original_predictor()
    new_pred = new_predictor()

    def kernel():
        results = {}
        for kind, cands in by_kind.items():
            results[kind] = (
                sum(old_pred.predict(c).is_false_positive for c in cands),
                sum(new_pred.predict(c).is_false_positive for c in cands),
            )
        return results

    results = benchmark.pedantic(kernel, rounds=1, iterations=1)

    rows = [[kind, N_PER_KIND, old_caught, new_caught]
            for kind, (old_caught, new_caught) in results.items()]
    print_table("ablation: FP candidates caught, 16-attr vs 61-attr "
                "predictor",
                ["candidate kind", "total", "WAP v2.1 (16 attrs)",
                 "WAPe (61 attrs)"], rows)

    old_old, new_old = results["old"]
    old_new, new_new = results["new"]
    old_custom, new_custom = results["custom"]
    # original-symptom FPs: both catch nearly all
    assert old_old >= 0.9 * N_PER_KIND
    assert new_old >= 0.9 * N_PER_KIND
    # new-symptom FPs: this IS the +42 — the old scheme catches none,
    # the new scheme catches nearly all
    assert old_new == 0
    assert new_new >= 0.9 * N_PER_KIND
    # custom helpers: invisible to both (until configured as sanitizers)
    assert old_custom == 0 and new_custom == 0
