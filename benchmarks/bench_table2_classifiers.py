"""Table II — evaluation of the machine-learning models on the data set.

10-fold cross-validation of the top-3 classifiers (SVM, Logistic
Regression, Random Forest) on the regenerated 256-instance, 61-attribute
data set, reporting the paper's nine metrics.  The timed kernel is one full
cross-validation of the three classifiers.

Shape targets (paper values in parentheses): accuracies around 94%
(94.9 / 94.1 / 94.1); SVM has the best tpp (94.5), LR second (93.0), RF
third (90.6); RF has the lowest fallout pfp (2.3) and the best prfp (97.5).
"""

from __future__ import annotations

import pytest

from conftest import print_table

from repro.mining import build_dataset, cross_validate
from repro.mining.predictor import top3_new

PAPER = {
    "SVM": {"tpp": .945, "pfp": .047, "prfp": .953, "pd": .953,
            "ppd": .946, "acc": .949, "pr": .949, "inform": .898,
            "jacc": .903},
    "Logistic Regression": {"tpp": .930, "pfp": .047, "prfp": .952,
                            "pd": .953, "ppd": .931, "acc": .941,
                            "pr": .942, "inform": .883, "jacc": .888},
    "Random Forest": {"tpp": .906, "pfp": .023, "prfp": .975, "pd": .977,
                      "ppd": .912, "acc": .941, "pr": .944,
                      "inform": .883, "jacc": .885},
}


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("new")


def test_table2_classifier_evaluation(benchmark, dataset):
    def kernel():
        out = {}
        for clf in top3_new():
            factory = type(clf)
            out[clf.name] = cross_validate(factory, dataset.X, dataset.y,
                                           k=10)
        return out

    results = benchmark.pedantic(kernel, rounds=1, iterations=1)

    metric_names = ("tpp", "pfp", "prfp", "pd", "ppd", "acc", "pr",
                    "inform", "jacc")
    rows = []
    for metric in metric_names:
        row = [metric]
        for name in ("SVM", "Logistic Regression", "Random Forest"):
            measured = getattr(results[name], metric)
            row.append(f"{measured * 100:.1f}%"
                       f" ({PAPER[name][metric] * 100:.1f}%)")
        rows.append(row)
    print_table("Table II - measured (paper) metrics, 10-fold CV, "
                "256 instances x 61 attributes",
                ["metric", "SVM", "Logistic Regression", "Random Forest"],
                rows)

    svm, lr, rf = (results["SVM"], results["Logistic Regression"],
                   results["Random Forest"])
    # shape: everyone is accurate and precise, in the ~94% region
    for cm in (svm, lr, rf):
        assert 0.88 <= cm.acc <= 1.0
        assert cm.pfp <= 0.10
    # goal (1): SVM best tpp, LR second, RF third
    assert svm.tpp >= lr.tpp >= rf.tpp
    # goal (2): RF lowest fallout and best precision on the FP class
    assert rf.pfp <= min(svm.pfp, lr.pfp)
    assert rf.prfp >= max(svm.prfp, lr.prfp)


def test_table2_other_classifiers_justify_top3(benchmark, dataset):
    """The re-evaluation pool: the non-top-3 classifiers do not beat the
    chosen ensemble on accuracy (why these three were kept)."""
    from repro.mining.classifiers import (
        BernoulliNaiveBayes,
        KNearestNeighbors,
        RandomTree,
    )

    def kernel():
        return {cls.__name__: cross_validate(cls, dataset.X, dataset.y,
                                             k=10)
                for cls in (RandomTree, BernoulliNaiveBayes,
                            KNearestNeighbors)}

    others = benchmark.pedantic(kernel, rounds=1, iterations=1)
    top3 = {clf.name: cross_validate(type(clf), dataset.X, dataset.y,
                                     k=10)
            for clf in top3_new()}

    rows = [[name, f"{cm.acc * 100:.1f}%", f"{cm.tpp * 100:.1f}%",
             f"{cm.pfp * 100:.1f}%"]
            for name, cm in {**top3, **others}.items()]
    print_table("classifier re-evaluation (top 3 first)",
                ["classifier", "acc", "tpp", "pfp"], rows)

    best_top3_acc = max(cm.acc for cm in top3.values())
    for cm in others.values():
        assert cm.acc <= best_top3_acc + 0.02
