"""Ablation — top-3 majority vote vs the individual classifiers.

WAP combines three classifiers instead of trusting one (§II).  This
ablation evaluates the majority vote under the same 10-fold protocol as
the single models, showing that the vote is at least as accurate as the
median member and never the worst — the robustness argument behind the
design.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import print_table

from repro.mining import ConfusionMatrix, build_dataset, kfold_indices
from repro.mining.predictor import top3_new


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("new")


def _vote_cv(dataset, k=10, seed=11) -> ConfusionMatrix:
    folds = kfold_indices(dataset.size, k, seed)
    total = ConfusionMatrix(0, 0, 0, 0)
    X, y = dataset.X, dataset.y
    for i in range(k):
        test_idx = folds[i]
        train_idx = np.concatenate(
            [folds[j] for j in range(k) if j != i])
        members = top3_new()
        for clf in members:
            clf.fit(X[train_idx], y[train_idx])
        votes = np.stack([clf.predict(X[test_idx]) for clf in members])
        pred = (votes.sum(axis=0) * 2 > len(members)).astype(np.int64)
        total = total + ConfusionMatrix.from_predictions(y[test_idx],
                                                         pred)
    return total


def _single_cv(dataset, clf_factory, k=10, seed=11) -> ConfusionMatrix:
    from repro.mining import cross_validate
    return cross_validate(clf_factory, dataset.X, dataset.y, k, seed)


def test_ablation_majority_vote(benchmark, dataset):
    vote_cm = benchmark.pedantic(lambda: _vote_cv(dataset),
                                 rounds=1, iterations=1)
    singles = {clf.name: _single_cv(dataset, type(clf))
               for clf in top3_new()}

    rows = [[name, f"{cm.acc * 100:.1f}%", f"{cm.tpp * 100:.1f}%",
             f"{cm.pfp * 100:.1f}%"]
            for name, cm in singles.items()]
    rows.append(["top-3 majority vote", f"{vote_cm.acc * 100:.1f}%",
                 f"{vote_cm.tpp * 100:.1f}%",
                 f"{vote_cm.pfp * 100:.1f}%"])
    print_table("ablation: ensemble vote vs single classifiers "
                "(10-fold CV)", ["model", "acc", "tpp", "pfp"], rows)

    accs = sorted(cm.acc for cm in singles.values())
    median_acc = accs[len(accs) // 2]
    # the vote is at least as accurate as the median member...
    assert vote_cm.acc >= median_acc - 0.01
    # ...and never the worst
    assert vote_cm.acc >= accs[0]
    # and its fallout is bounded by the worst member's
    assert vote_cm.pfp <= max(cm.pfp for cm in singles.values())
