"""Fig. 4 — downloads and active installs of analyzed vs vulnerable
plugins.

Bins the 115 plugin profiles into the figure's download and active-install
ranges and renders both histograms (analyzed in full, vulnerable subset),
checking the figure's stated properties: vulnerable plugins appear in all
install ranges, 16 of the 23 have >10K downloads, and 12 are active on
more than 2,000 sites.  The timed kernel is the binning itself.
"""

from __future__ import annotations

from conftest import print_table

from repro.corpus import (
    DOWNLOAD_BIN_LABELS,
    INSTALL_BIN_LABELS,
    VULNERABLE_PLUGINS,
    all_plugin_profiles,
    download_histogram,
    install_histogram,
)


def _bars(analyzed: list[int], vulnerable: list[int],
          labels: tuple[str, ...]) -> list[list[object]]:
    rows = []
    for label, total, vuln in zip(labels, analyzed, vulnerable):
        rows.append([label, total, "#" * total, vuln, "#" * vuln])
    return rows


def test_fig4_downloads_and_installs(benchmark):
    plugins = all_plugin_profiles()

    def kernel():
        return (download_histogram(plugins),
                install_histogram(plugins),
                download_histogram(VULNERABLE_PLUGINS),
                install_histogram(VULNERABLE_PLUGINS))

    dl_all, in_all, dl_vuln, in_vuln = benchmark(kernel)

    print_table("Fig. 4(a) - downloads (analyzed = 115, vulnerable = 23)",
                ["range", "analyzed", "", "vulnerable", ""],
                _bars(dl_all, dl_vuln, DOWNLOAD_BIN_LABELS))
    print_table("Fig. 4(b) - active installs",
                ["range", "analyzed", "", "vulnerable", ""],
                _bars(in_all, in_vuln, INSTALL_BIN_LABELS))

    # totals
    assert sum(dl_all) == sum(in_all) == 115
    assert sum(dl_vuln) == sum(in_vuln) == 23
    # vulnerable <= analyzed in every bin
    assert all(v <= a for v, a in zip(dl_vuln, dl_all))
    assert all(v <= a for v, a in zip(in_vuln, in_all))
    # "All ranges of active WP installations contain vulnerable plugins"
    assert all(v > 0 for v in in_vuln)
    # "16 of them have more than 10K downloads"
    assert sum(dl_vuln[3:]) == 16
    # "12 plugins are used in more than 2000 web sites"
    assert sum(in_vuln[4:]) == 12
    # "reaching more than 500K downloads"
    assert dl_vuln[-1] >= 1
