"""``make bench-check``: the observability regression gate.

Exercises the whole scan observatory end to end on the in-repo demo app
and fails (exit 1) when any piece of it breaks:

1. three CLI scans (cold + two warm) append run records to
   ``.bench/ledger.jsonl``; the cold scan also runs under ``--profile``
   and writes ``.bench/profile.folded``;
2. every run of the same tree under the same config must produce a
   byte-identical findings digest (determinism gate), and each ledger
   record must carry a non-zero prefilter skip rate;
2b. the relevance prefilter must be findings-preserving: an in-process
   ``--no-prefilter`` scan of the same tree must produce the identical
   findings digest (conservatism gate) — run outside the ledger so the
   off-run never pollutes the comparable regression baseline;
3. ``wape history --check`` over the real ledger must pass with a
   generous tolerance (the runs are tiny, so only the machinery — not
   micro-timing — is gated);
4. a synthetic record with a 100x inflated scan time is appended to a
   *copy* of the ledger, and ``wape history --check`` must flag it
   (regression-detector gate);
5. the folded-stack profile must exist and be non-empty.

The ``.bench/`` directory is left behind on purpose: CI uploads it
(ledger + folded stacks) as the run's observability artifact.

Run standalone (CI does, via ``make bench-check``)::

    PYTHONPATH=src python benchmarks/bench_check.py
"""

from __future__ import annotations

import json
import os
import shutil
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO_ROOT, ".bench")
LEDGER = os.path.join(BENCH_DIR, "ledger.jsonl")
LEDGER_REGRESSED = os.path.join(BENCH_DIR, "ledger_regressed.jsonl")
FOLDED = os.path.join(BENCH_DIR, "profile.folded")
TARGET = os.path.join(REPO_ROOT, "examples", "demo_app")

#: runs are ~tens of milliseconds; gate only on the machinery, not noise.
CHECK_TOLERANCE = "3.0"


def _fail(message: str) -> None:
    print(f"bench-check: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def _scan(extra: list[str], cache_dir: str) -> None:
    from repro.tool.cli import main as scan_main

    argv = ["--quiet", "--stats", "--cache-dir", cache_dir,
            "--ledger", LEDGER, *extra, TARGET]
    code = scan_main(argv)
    # the demo app is deliberately vulnerable: exit 1 means "findings",
    # which is the expected outcome; >= 2 means the scan itself failed.
    if code not in (0, 1):
        _fail(f"scan exited {code} (argv: {argv})")


def main() -> int:
    shutil.rmtree(BENCH_DIR, ignore_errors=True)
    os.makedirs(BENCH_DIR)
    cache_dir = os.path.join(BENCH_DIR, "cache")

    print("bench-check: cold scan (profiled) ...")
    _scan(["--profile", "--profile-out", FOLDED], cache_dir)
    print("bench-check: warm scans ...")
    _scan([], cache_dir)
    _scan([], cache_dir)

    from repro.obs import RunLedger
    from repro.tool.history import main as history_main

    records = RunLedger(LEDGER).load()
    if len(records) != 3:
        _fail(f"expected 3 ledger records, found {len(records)}")

    digests = {r["findings"]["digest"] for r in records}
    if len(digests) != 1:
        _fail(f"findings digests differ across identical runs: {digests}")
    print(f"bench-check: determinism ok "
          f"(digest {records[0]['findings']['digest'][:12]} x3)")

    for record in records:
        entry = record.get("prefilter")
        if not isinstance(entry, dict):
            _fail(f"ledger record {record['run_id']} missing prefilter "
                  f"counts")
        if not entry.get("skip_rate"):
            _fail(f"prefilter skipped nothing on the demo app "
                  f"(counts: {entry})")

    # conservatism gate: identical findings with the prefilter off.
    # Run in-process, ledger-free: the off-run shares the on-run's
    # target/fingerprint/jobs and would otherwise count as comparable
    # history for the skip-rate regression gate.
    from repro.analysis.options import ScanOptions
    from repro.obs.ledger import findings_digest
    from repro.tool.report import report_fingerprints
    from repro.tool.wap import Wape

    tool = Wape()
    on = tool.analyze_tree(TARGET, ScanOptions(jobs=1))
    off = tool.analyze_tree(TARGET, ScanOptions(jobs=1, prefilter=False))
    digest_on = findings_digest(on.outcomes,
                                report_fingerprints(on.to_dict()))
    digest_off = findings_digest(off.outcomes,
                                 report_fingerprints(off.to_dict()))
    if digest_on != digest_off:
        _fail(f"prefilter changed the findings digest: "
              f"{digest_on[:12]} (on) != {digest_off[:12]} (off)")
    if digest_on != records[0]["findings"]["digest"]:
        _fail("in-process digest differs from the CLI ledger digest")
    print(f"bench-check: prefilter conservatism ok (digest matches "
          f"with {on.prefilter.skipped} skipped / "
          f"{on.prefilter.dep_only} dep-only)")

    if history_main(["--ledger", LEDGER, "--check",
                     "--tolerance", CHECK_TOLERANCE]) != 0:
        _fail("history --check flagged a regression on the real ledger")

    # the detector itself must still bite: inflate the last record 100x
    # on a copy of the ledger and require --check to exit non-zero.
    inflated = dict(records[-1])
    inflated["run_id"] = inflated["run_id"] + "-inflated"
    inflated["seconds"] = inflated["seconds"] * 100 + 10.0
    inflated["phases"] = {name: secs * 100 + 10.0
                          for name, secs in
                          (inflated.get("phases") or {}).items()}
    with open(LEDGER_REGRESSED, "w", encoding="utf-8") as f:
        for record in records + [inflated]:
            f.write(json.dumps(record, sort_keys=True) + "\n")
    if history_main(["--ledger", LEDGER_REGRESSED, "--check",
                     "--tolerance", CHECK_TOLERANCE]) == 0:
        _fail("history --check missed the synthetic 100x regression")
    print("bench-check: synthetic regression flagged ok")

    if not os.path.exists(FOLDED) or os.path.getsize(FOLDED) == 0:
        _fail(f"missing or empty folded profile: {FOLDED}")
    with open(FOLDED, encoding="utf-8") as f:
        folded_lines = sum(1 for _ in f)
    print(f"bench-check: profile ok ({folded_lines} folded stacks)")

    print(f"bench-check: PASS (artifacts in {BENCH_DIR})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
