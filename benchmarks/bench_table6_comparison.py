"""Table VI — vulnerabilities and false positives: WAP v2.1 vs WAPe.

Analyzes the same 17-package corpus with both tool versions and reproduces
the paper's comparison:

* both find the same vulnerabilities for the 8 shared classes (386);
* WAPe additionally detects the new classes (LDAPI 2, SF 1, HI 19, CS 5);
* WAP v2.1 predicts 62 false positives and misreports 60 as real;
  WAPe predicts 104 (the same 62 plus 42 whose only evidence is a new
  symptom) and misreports only 18 (the custom-sanitizer cases).

The timed kernel is the full two-tool analysis of one package.
"""

from __future__ import annotations

from collections import Counter

from conftest import class_totals, print_table

from repro.corpus import (
    PAPER_CLASS_TOTALS,
    PAPER_WAP_FP,
    PAPER_WAP_FPP,
    PAPER_WAPE_FP,
    PAPER_WAPE_FPP,
)

SHARED_GROUPS = ("SQLI", "XSS", "Files", "SCD")
NEW_GROUPS = ("LDAPI", "SF", "HI", "CS")


def test_table6_wap_vs_wape(benchmark, wap21, wape_armed,
                            wap21_webapp_runs, wape_webapp_runs):
    pkg = wape_webapp_runs[0][0]
    benchmark.pedantic(
        lambda: (wap21.analyze_tree(pkg.path),
                 wape_armed.analyze_tree(pkg.path)),
        rounds=1, iterations=1)

    rows = []
    tot = Counter()
    for (pkg, old_report), (_, new_report) in zip(wap21_webapp_runs,
                                                  wape_webapp_runs):
        profile = pkg.profile
        new_groups = new_report.counts_by_group()
        row = [pkg.name, pkg.version]
        for group in SHARED_GROUPS + NEW_GROUPS:
            row.append(new_groups.get(group, 0))
        wap_fpp = len(old_report.predicted_false_positives)
        wape_fpp = len(new_report.predicted_false_positives)
        row += [wap_fpp, profile.wap_fp, wape_fpp, profile.wape_fp]
        rows.append(row)
        tot["wap_fpp"] += wap_fpp
        tot["wape_fpp"] += wape_fpp

    print_table("Table VI - per-package detections (WAPe) and FP "
                "prediction by both versions",
                ["web application", "ver", *SHARED_GROUPS, *NEW_GROUPS,
                 "WAP FPP", "WAP FP", "WAPe FPP", "WAPe FP"], rows)

    wape_totals = class_totals(wape_webapp_runs)
    wap_totals = class_totals(wap21_webapp_runs)
    summary = [[g, wap_totals.get(g, 0), wape_totals.get(g, 0),
                PAPER_CLASS_TOTALS.get(g, 0)]
               for g in SHARED_GROUPS + NEW_GROUPS]
    print_table("Table VI - class totals (note: both tools also report "
                "the unpredictable-FP candidates under SQLI)",
                ["class", "WAP v2.1", "WAPe", "paper (WAPe)"], summary)
    print(f"  FP prediction totals - WAP v2.1: {tot['wap_fpp']} "
          f"predicted / {PAPER_WAP_FP} missed (paper {PAPER_WAP_FPP} / "
          f"{PAPER_WAP_FP});  WAPe: {tot['wape_fpp']} predicted / "
          f"{PAPER_WAPE_FP} missed (paper {PAPER_WAPE_FPP} / "
          f"{PAPER_WAPE_FP})")

    # ---- paper-exact assertions ---------------------------------------
    # FP prediction: 62 vs 104 predicted
    assert tot["wap_fpp"] == PAPER_WAP_FPP
    assert tot["wape_fpp"] == PAPER_WAPE_FPP
    # WAPe's real detections per class: paper totals plus the 18
    # custom-sanitizer candidates that land in SQLI
    expected = Counter(PAPER_CLASS_TOTALS)
    expected["SQLI"] += PAPER_WAPE_FP
    assert wape_totals == expected
    # WAP v2.1: shared classes only, plus ALL 60 unpredicted FPs in SQLI
    expected_old = Counter({g: PAPER_CLASS_TOTALS[g]
                            for g in SHARED_GROUPS})
    expected_old["SQLI"] += PAPER_WAP_FP
    assert wap_totals == expected_old
    # WAPe never detects fewer than WAP v2.1 on shared classes
    for group in SHARED_GROUPS:
        assert wape_totals[group] >= PAPER_CLASS_TOTALS[group]
