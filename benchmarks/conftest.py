"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md §2 for the index).  Corpora are materialized once per
session; tool runs are cached so the numbers printed by different benches
are consistent.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.corpus import (
    build_webapp_corpus,
    build_wordpress_corpus,
)
from repro.tool import Wap21, Wape


@pytest.fixture(scope="session")
def webapp_corpus(tmp_path_factory):
    root = tmp_path_factory.mktemp("webapps")
    return build_webapp_corpus(str(root), vulnerable_only=True)


@pytest.fixture(scope="session")
def wordpress_corpus(tmp_path_factory):
    root = tmp_path_factory.mktemp("plugins")
    return build_wordpress_corpus(str(root), vulnerable_only=True)


@pytest.fixture(scope="session")
def wape_armed():
    return Wape(weapon_flags=["-nosqli", "-hei", "-wpsqli"])


@pytest.fixture(scope="session")
def wap21():
    return Wap21()


def run_over(tool, packages):
    """Analyze each materialized package; returns (package, report) list."""
    return [(pkg, tool.analyze_tree(pkg.path)) for pkg in packages]


@pytest.fixture(scope="session")
def wape_webapp_runs(wape_armed, webapp_corpus):
    return run_over(wape_armed, webapp_corpus)


@pytest.fixture(scope="session")
def wap21_webapp_runs(wap21, webapp_corpus):
    return run_over(wap21, webapp_corpus)


@pytest.fixture(scope="session")
def wape_plugin_runs(wape_armed, wordpress_corpus):
    return run_over(wape_armed, wordpress_corpus)


def class_totals(runs) -> Counter:
    """Real-vulnerability counts per report group, over all runs."""
    totals: Counter = Counter()
    for _pkg, report in runs:
        totals += report.counts_by_group()
    return totals


def print_table(title: str, headers: list[str],
                rows: list[list[object]]) -> None:
    """Minimal fixed-width table printer for bench output."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              if rows else len(str(h))
              for i, h in enumerate(headers)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print()
    print(f"### {title}")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
