"""Table VII — vulnerabilities found in WordPress plugins.

Analyzes the 23-vulnerable-plugin corpus with WAPe armed with the wpsqli
and hei weapons and reproduces the table: 55 SQLI (all through the wpsqli
weapon — the plain tool finds none of them), 71 XSS, 31 Files, 5 SCD,
2 CS, 5 HI, 169 in total, 3 predicted false positives.

The timed kernel is the analysis of the largest plugin (WP EasyCart).
"""

from __future__ import annotations

from collections import Counter

from conftest import class_totals, print_table

from repro.corpus import (
    PAPER_PLUGIN_CLASS_TOTALS,
    PAPER_PLUGIN_FP,
    PAPER_PLUGIN_FPP,
    PAPER_PLUGIN_TOTAL_VULNS,
)

GROUP_ORDER = ("SQLI", "XSS", "Files", "SCD", "CS", "HI")


def test_table7_wordpress_plugins(benchmark, wape_armed, wap21,
                                  wape_plugin_runs):
    easycart = next(pkg for pkg, _ in wape_plugin_runs
                    if "easycart" in pkg.name)
    benchmark.pedantic(lambda: wape_armed.analyze_tree(easycart.path),
                       rounds=1, iterations=1)

    rows = []
    fpp_total = 0
    for pkg, report in wape_plugin_runs:
        groups = report.counts_by_group()
        fpp = len(report.predicted_false_positives)
        fpp_total += fpp
        cves = ", ".join(pkg.profile.cve) if pkg.profile.cve else ""
        rows.append([pkg.name, pkg.version,
                     *(groups.get(g, 0) for g in GROUP_ORDER),
                     len(report.real_vulnerabilities), fpp, cves])
    print_table("Table VII - WAPe (-wpsqli -hei -nosqli) over the "
                "(synthetic) WordPress plugins",
                ["plugin", "ver", *GROUP_ORDER, "total", "FPP", "CVE"],
                rows)

    totals = class_totals(wape_plugin_runs)
    real_total = sum(len(r.real_vulnerabilities)
                     for _, r in wape_plugin_runs)
    print(f"  totals: {dict(totals)}  real={real_total} "
          f"(paper {PAPER_PLUGIN_TOTAL_VULNS} + {PAPER_PLUGIN_FP} "
          f"unpredictable FPs)  FPP={fpp_total} "
          f"(paper {PAPER_PLUGIN_FPP})")

    # paper-exact totals (the 2 custom-FP candidates land in SQLI)
    expected = Counter(PAPER_PLUGIN_CLASS_TOTALS)
    expected["SQLI"] += PAPER_PLUGIN_FP
    assert totals == expected
    assert real_total == PAPER_PLUGIN_TOTAL_VULNS + PAPER_PLUGIN_FP
    assert fpp_total == PAPER_PLUGIN_FPP

    # the headline of §V-B: without the wpsqli weapon the $wpdb SQLI
    # findings are invisible — WAP v2.1 finds none of the 55
    old_sqli = 0
    for pkg, _ in wape_plugin_runs:
        old_report = wap21.analyze_tree(pkg.path)
        old_sqli += sum(1 for o in old_report.real_vulnerabilities
                        if o.vuln_class == "sqli")
    # only the 2 custom-sanitizer candidates (plain mysql_query code)
    assert old_sqli == PAPER_PLUGIN_FP
    print(f"  WAP v2.1 SQLI findings in plugins: {old_sqli} "
          f"(the 55 $wpdb flows require the wpsqli weapon)")
