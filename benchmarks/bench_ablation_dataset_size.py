"""Ablation — training-set size (why 76 instances were no longer enough).

§III-B1: *"as the number of attributes is much higher, we need also a much
larger number of instances"*.  This ablation trains on stratified nested
subsets of the 256-instance set and shows accuracy growing with size —
the quantitative argument for collecting the bigger data set.
"""

from __future__ import annotations

import pytest

from conftest import print_table

from repro.mining import build_dataset
from repro.mining.evaluation import learning_curve

SIZES = (48, 76, 128, 192, 256)


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("new")


def test_ablation_training_set_size(benchmark, dataset):
    curve = benchmark.pedantic(
        lambda: learning_curve(dataset, SIZES), rounds=1, iterations=1)

    rows = [[size, f"{cm.acc * 100:.1f}%", f"{cm.tpp * 100:.1f}%",
             f"{cm.pfp * 100:.1f}%"]
            for size, cm in curve]
    print_table("ablation: SVM accuracy vs training-set size "
                "(61 attributes; the paper grew 76 -> 256)",
                ["instances", "acc", "tpp", "pfp"], rows)

    by_size = dict(curve)
    # the full set clearly beats the old 76-instance size
    assert by_size[256].acc >= by_size[76].acc
    # and the trend is broadly monotone: the best small-set accuracy does
    # not beat the full set by more than noise
    best_small = max(cm.acc for size, cm in curve if size < 256)
    assert by_size[256].acc >= best_small - 0.03
