"""Ablation — frontend and taint-engine throughput scaling.

Times lexing+parsing and full taint analysis on synthetic files of
increasing size, reporting LoC/s and checking the pipeline scales roughly
linearly in file size (no accidental quadratic behavior in the lexer,
parser or abstract interpreter).  Also measures the guard-recording
overhead (§III-B's symptom collection) by comparing files dominated by
validated flows against plain flows.
"""

from __future__ import annotations

import random
import time

from conftest import print_table

from repro.corpus import benign_snippet, fp_snippet, vuln_snippet
from repro.php import parse
from repro.tool import Wape

SIZES = (20, 80, 320)


def _make_source(n_snippets: int, flavor: str, seed: int = 7) -> str:
    rng = random.Random(seed)
    parts = []
    for i in range(n_snippets):
        if flavor == "benign":
            parts.append(benign_snippet(rng))
        elif flavor == "vulnerable":
            parts.append(vuln_snippet("sqli" if i % 2 else "xss", rng))
        else:  # guarded
            parts.append(fp_snippet("old", rng))
    return "<?php\n" + "\n\n".join(parts) + "\n"


def _loc(source: str) -> int:
    return source.count("\n") + 1


def test_ablation_pipeline_scaling(benchmark):
    tool = Wape()
    mid = _make_source(SIZES[1], "vulnerable")
    benchmark.pedantic(lambda: tool.analyze_source(mid),
                       rounds=2, iterations=1)

    rows = []
    throughput = {}
    for flavor in ("benign", "vulnerable", "guarded"):
        for size in SIZES:
            source = _make_source(size, flavor)
            t0 = time.perf_counter()
            parse(source)
            parse_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            report = tool.analyze_source(source)
            full_s = time.perf_counter() - t0
            loc = _loc(source)
            throughput[(flavor, size)] = loc / full_s
            rows.append([flavor, size, loc,
                         f"{parse_s * 1000:.1f}",
                         f"{full_s * 1000:.1f}",
                         f"{loc / full_s:,.0f}",
                         len(report.outcomes)])
    print_table("ablation: pipeline throughput",
                ["flavor", "snippets", "LoC", "parse ms", "analyze ms",
                 "LoC/s", "candidates"], rows)

    # near-linear scaling: 16x the snippets costs at most ~64x the time
    # (i.e. LoC/s degrades by less than 4x between smallest and largest)
    for flavor in ("benign", "vulnerable", "guarded"):
        small = throughput[(flavor, SIZES[0])]
        large = throughput[(flavor, SIZES[-1])]
        assert large > small / 4, (flavor, small, large)
    # the tool analyzes at a usable rate on this hardware
    assert all(tp > 2_000 for tp in throughput.values())
