"""Frontend throughput: lexer tokens/sec, parser nodes/sec, AST cache.

Measures the parse-once frontend in isolation — no taint analysis, no
predictor — over the synthesized corpus:

* **lex**: ``tokenize()`` over every file, tokens/sec.
* **parse**: ``Parser.parse_program()`` over every token stream,
  AST nodes/sec (counted with :func:`repro.php.count_nodes`).
* **cold vs AST-cache-warm**: :meth:`repro.php.AstStore.parse_recovering`
  through an empty on-disk :class:`repro.php.AstCache`, then again
  through a fresh store backed by the now-populated cache directory —
  the warm pass must serve every file from disk without re-parsing.

Results land in ``BENCH_frontend.json`` at the repository root so the
frontend's performance trajectory is tracked PR over PR.

Run under pytest (full corpus)::

    PYTHONPATH=src python -m pytest benchmarks/bench_frontend.py -s

or standalone, optionally in smoke mode (tiny corpus, no JSON written —
``make bench-smoke``)::

    PYTHONPATH=src python benchmarks/bench_frontend.py --smoke
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_frontend.json")


def _corpus_sources(root: str, smoke: bool) -> list[tuple[str, str]]:
    from repro.corpus import (
        VULNERABLE_WEBAPPS,
        build_webapp_corpus,
        build_wordpress_corpus,
        materialize_package,
    )

    if smoke:
        for profile in VULNERABLE_WEBAPPS[:3]:
            materialize_package(profile, root)
    else:
        build_webapp_corpus(root)
        build_wordpress_corpus(root)

    from repro.analysis.pipeline import ScanScheduler

    sources = []
    for path in ScanScheduler.discover(root):
        with open(path, encoding="utf-8", errors="replace") as f:
            sources.append((path, f.read()))
    return sources


def run_benchmark(smoke: bool = False) -> dict:
    from repro.exceptions import PhpSyntaxError
    from repro.php import Parser, count_nodes, tokenize
    from repro.php.ast_store import AstCache, AstStore

    with tempfile.TemporaryDirectory(prefix="bench-frontend-") as workdir:
        corpus_root = os.path.join(workdir, "corpus")
        os.makedirs(corpus_root)
        sources = _corpus_sources(corpus_root, smoke)
        loc = sum(src.count("\n") + 1 for _, src in sources)

        # --- lex ------------------------------------------------------
        start = time.perf_counter()
        token_streams = [(path, src, tokenize(src, path))
                         for path, src in sources]
        lex_seconds = time.perf_counter() - start
        tokens = sum(len(ts) for _, _, ts in token_streams)

        # --- parse ----------------------------------------------------
        nodes = 0
        start = time.perf_counter()
        programs = []
        for path, _, stream in token_streams:
            parser = Parser(stream, path, recover=True)
            programs.append(parser.parse_program())
        parse_seconds = time.perf_counter() - start
        nodes = sum(count_nodes(p) for p in programs)

        # --- cold vs AST-cache-warm ----------------------------------
        cache_dir = os.path.join(workdir, "cache")

        def _store_pass() -> tuple[float, AstStore]:
            store = AstStore(disk=AstCache(cache_dir))
            start = time.perf_counter()
            for path, src in sources:
                try:
                    store.parse_recovering(src, path)
                except PhpSyntaxError:
                    pass  # corpus may contain deliberately broken files
            # puts are buffered: the store contract is one flush per
            # scan (the scheduler and workers do the same)
            store.flush()
            return time.perf_counter() - start, store

        cold_seconds, cold_store = _store_pass()
        warm_seconds, warm_store = _store_pass()
        assert cold_store.parses > 0 and warm_store.parses == 0, \
            "warm pass must be served entirely from the AST cache"

    result = {
        "benchmark": "frontend",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "corpus": {"files": len(sources), "loc": loc,
                   "tokens": tokens, "ast_nodes": nodes},
        "lex": {"seconds": round(lex_seconds, 4),
                "tokens_per_sec": round(tokens / lex_seconds, 1)},
        "parse": {"seconds": round(parse_seconds, 4),
                  "nodes_per_sec": round(nodes / parse_seconds, 1)},
        "ast_cache": {
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "unique_parses": cold_store.parses,
            "warm_disk_hits": warm_store.disk_hits,
            "speedup_warm_vs_cold": round(cold_seconds / warm_seconds, 2),
        },
    }
    return result


def print_summary(result: dict) -> None:
    corpus = result["corpus"]
    print(f"\n### frontend — {corpus['files']} files, {corpus['loc']} LoC, "
          f"{corpus['tokens']} tokens, {corpus['ast_nodes']} AST nodes")
    print(f"  lex:   {result['lex']['seconds']:>8.4f}s  "
          f"{result['lex']['tokens_per_sec']:>11.1f} tokens/s")
    print(f"  parse: {result['parse']['seconds']:>8.4f}s  "
          f"{result['parse']['nodes_per_sec']:>11.1f} nodes/s")
    cache = result["ast_cache"]
    print(f"  AST cache: cold {cache['cold_seconds']}s "
          f"({cache['unique_parses']} parses), warm "
          f"{cache['warm_seconds']}s ({cache['warm_disk_hits']} disk "
          f"hits) -> {cache['speedup_warm_vs_cold']}x")


def check_expectations(result: dict) -> None:
    cache = result["ast_cache"]
    # lenient by design: unpickling is not free, but it must beat
    # lexing + parsing the same bytes
    assert cache["warm_seconds"] < cache["cold_seconds"], \
        "AST-cache-warm pass should be faster than the cold pass"
    assert cache["warm_disk_hits"] == cache["unique_parses"], \
        "every unique content should be a disk hit on the warm pass"


def test_frontend_throughput():
    """Full-corpus run: records BENCH_frontend.json at repo root."""
    result = run_benchmark(smoke=False)
    print_summary(result)
    with open(RESULT_PATH, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(f"  recorded -> {RESULT_PATH}")
    check_expectations(result)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    outcome = run_benchmark(smoke=smoke)
    print_summary(outcome)
    check_expectations(outcome)
    if not smoke:
        with open(RESULT_PATH, "w", encoding="utf-8") as f:
            json.dump(outcome, f, indent=2)
            f.write("\n")
        print(f"recorded -> {RESULT_PATH}")
