"""Table V — summary of the WAPe run over the real web applications.

Materializes the 17 vulnerable packages of the corpus and analyzes them
with fully-armed WAPe; prints the per-package rows next to the paper's
metadata.  The timed kernel is the analysis of one mid-size package.

Shape targets: 413 real vulnerabilities total across 17 packages; our
analysis time is measured on the (file-capped) synthetic corpus, the
paper's 123 s on the full 1.2 MLoC — both are shown.
"""

from __future__ import annotations

from conftest import print_table

from repro.corpus import (
    PAPER_TOTAL_TIME_S,
    PAPER_TOTAL_VULN_FILES,
    PAPER_TOTAL_VULNS,
)


def test_table5_webapp_summary(benchmark, wape_armed, wape_webapp_runs):
    # timed kernel: re-analysis of one representative package (SAE)
    sae = next(pkg for pkg, _ in wape_webapp_runs if pkg.name == "SAE")
    benchmark.pedantic(lambda: wape_armed.analyze_tree(sae.path),
                       rounds=1, iterations=2)

    rows = []
    total_vulns = 0
    total_vuln_files = 0
    total_seconds = 0.0
    for pkg, report in wape_webapp_runs:
        profile = pkg.profile
        n_real = len(report.real_vulnerabilities)
        n_vuln_files = len(report.vulnerable_files)
        total_vulns += n_real
        total_vuln_files += n_vuln_files
        total_seconds += report.total_seconds
        rows.append([pkg.name, pkg.version,
                     profile.paper_files, profile.paper_loc,
                     f"{report.total_seconds:.2f}",
                     f"{profile.paper_time_s:.0f}",
                     n_vuln_files, profile.paper_vuln_files,
                     n_real, profile.total_vulns])
    rows.append(["Total", "", sum(p.profile.paper_files
                                  for p, _ in wape_webapp_runs),
                 sum(p.profile.paper_loc for p, _ in wape_webapp_runs),
                 f"{total_seconds:.2f}", f"{PAPER_TOTAL_TIME_S:.0f}",
                 total_vuln_files, PAPER_TOTAL_VULN_FILES,
                 total_vulns, PAPER_TOTAL_VULNS])
    print_table("Table V - WAPe over the (synthetic) web applications; "
                "files/LoC columns are the paper's package metadata",
                ["web application", "version", "files*", "LoC*",
                 "time(s)", "time(s)*", "vuln files", "vuln files*",
                 "vulns found", "vulns*"], rows)
    print("  (*) = paper-reported value for the real package")
    print("  note: 'vulns found' includes the custom-sanitizer candidates"
          " the predictor cannot dismiss (the paper's WAPe-FP column, 18"
          " total), so the measured total is 413 + 18.")

    # 413 paper vulnerabilities + the 18 custom-sanitizer candidates WAPe
    # reports as real (they are exactly the paper's WAPe-FP column)
    assert total_vulns == PAPER_TOTAL_VULNS + 18
    # every package flagged vulnerable, like the paper's 17
    assert all(len(r.real_vulnerabilities) > 0
               for _, r in wape_webapp_runs)
    # the tool stays fast on the synthetic corpus
    assert total_seconds < 60
