"""Legacy setup shim.

The execution environment is offline and has no ``wheel`` package, so the
PEP 517 editable-install path is unavailable.  Keeping a ``setup.py`` (and no
``[build-system]`` table in pyproject.toml) lets ``pip install -e .`` fall
back to ``setup.py develop``, which works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Equipping WAP with WEAPONS to Detect "
        "Vulnerabilities' (DSN 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
    entry_points={"console_scripts": [
        "wape = repro.tool.main:main",
    ]},
)
