# Developer entry points.  Everything runs against the in-repo sources
# (PYTHONPATH=src) so no install step is needed.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast test-grammar test-ir test-service test-fleet \
	bench bench-smoke bench-throughput bench-frontend bench-check \
	trace-demo serve-demo watch-demo baseline-demo baseline-check

# tier-1: the full suite, exactly what CI runs
test:
	$(PYTHON) -m pytest -x -q

# the fast split: skips subprocess CLI tests, multi-process scans and
# full-corpus evaluations (see the `slow` marker in pyproject.toml)
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

# the PHP frontend only: lexer/parser/unparser suites plus the grammar
# regression corpus (interleaved HTML, anon classes, goto, recovery)
test-grammar:
	$(PYTHON) -m pytest -x -q tests/test_php_lexer.py \
		tests/test_php_parser.py tests/test_php_unparser.py \
		tests/test_php_visitor.py tests/test_php_edge_cases.py \
		tests/test_php_modern_syntax.py tests/test_php_grammar_corpus.py

# the taint IR: lowering unit tests, the differential oracle against
# the reference AST walker, and the compositional summary-cache tier
# (all part of the fast suite; this target is the focused loop)
test-ir:
	$(PYTHON) -m pytest -x -q tests/test_ir.py tests/test_ir_oracle.py \
		tests/test_summary_cache.py tests/test_ast_store.py

# the embedding API, scan daemon, and report-schema suites (includes
# the slow daemon-vs-CLI oracle and the `wape serve` subprocess test)
test-service:
	$(PYTHON) -m pytest -x -q tests/test_api.py tests/test_service.py \
		tests/test_report_schema.py

# the multi-process scan fleet plus the single-daemon service suite:
# sticky routing, crash supervision, NDJSON streaming, LRU eviction
test-fleet:
	$(PYTHON) -m pytest -x -q tests/test_fleet.py tests/test_service.py

# every paper table/figure benchmark
bench:
	$(PYTHON) -m pytest benchmarks/ -s -q

# scan-throughput trajectory: full corpus, records BENCH_scan_throughput.json
bench-throughput:
	$(PYTHON) benchmarks/bench_scan_throughput.py

# frontend trajectory (lex/parse/AST-cache): records BENCH_frontend.json
bench-frontend:
	$(PYTHON) benchmarks/bench_frontend.py

# tiny-tree regression guard (fast; writes no trajectory files).
# Covers every scenario — the summary-warm cold scan (inline assertions
# prove dependency bodies are replayed, not re-run) and the fleet smoke
# (2 workers, 1 scan each, clean shutdown).
bench-smoke:
	$(PYTHON) benchmarks/bench_scan_throughput.py --smoke
	$(PYTHON) benchmarks/bench_frontend.py --smoke

# observability gate: ledger determinism, regression detector and the
# sampling profiler, end to end on the demo app (artifacts in .bench/)
bench-check:
	$(PYTHON) benchmarks/bench_check.py

# telemetry demo: traced 2-worker scan of the demo app, writing
# trace.json + metrics.prom and printing the --stats footer
# (the demo app is deliberately vulnerable, so the scan exits 1)
trace-demo:
	-$(PYTHON) -m repro scan --jobs 2 --no-cache --quiet --stats \
		--trace-out trace.json --metrics-out metrics.prom examples/
	@echo "trace   -> trace.json"
	@echo "metrics -> metrics.prom"

# scan daemon on the demo app; scan it from another shell with
#   curl -s -X POST http://127.0.0.1:8711/v1/scan \
#        -d '{"root": "examples/demo_app"}'
# and stop it with  curl -s -X POST http://127.0.0.1:8711/v1/shutdown
serve-demo:
	$(PYTHON) -m repro serve --port 8711

# continuous scanning on the demo app: edit a file under
# examples/demo_app/ in another shell and watch the findings delta
watch-demo:
	$(PYTHON) -m repro watch examples/demo_app --no-ledger

# regenerate the committed findings baseline for the demo app (run
# after intentionally changing its findings; paths stay repo-relative
# so the baseline is machine-independent)
baseline-demo:
	-$(PYTHON) -m repro scan --json --no-cache examples/demo_app \
		> examples/demo_app.baseline.json
	@echo "baseline -> examples/demo_app.baseline.json"

# the CI gate: fail only on findings absent from the committed
# baseline, and export the scan as SARIF for code-review surfaces
baseline-check:
	@mkdir -p .bench
	$(PYTHON) -m repro scan --quiet --no-cache \
		--baseline examples/demo_app.baseline.json --fail-on-new \
		--sarif-out .bench/demo_app.sarif examples/demo_app
