"""Synthetic evaluation corpus (DESIGN.md substitution #1).

Profiles encode Tables V-VII and Fig. 4; the synthesizer materializes them
as real PHP trees that the tool analyzes end to end.
"""

from repro.corpus.snippets import (  # noqa: F401
    CUSTOM_HELPER_LIB,
    SUPPORTED_CLASSES,
    benign_snippet,
    fp_snippet,
    page_wrapper,
    vuln_snippet,
)
from repro.corpus.synthesis import (  # noqa: F401
    DEFAULT_FILE_CAP,
    MaterializedPackage,
    build_webapp_corpus,
    build_wordpress_corpus,
    materialize_package,
)
from repro.corpus.webapps import (  # noqa: F401
    PAPER_CLASS_TOTALS,
    PAPER_TOTAL_FILES,
    PAPER_TOTAL_LOC,
    PAPER_TOTAL_PACKAGES,
    PAPER_TOTAL_TIME_S,
    PAPER_TOTAL_VULN_FILES,
    PAPER_TOTAL_VULNS,
    PAPER_WAP_FP,
    PAPER_WAP_FPP,
    PAPER_WAPE_FP,
    PAPER_WAPE_FPP,
    VULNERABLE_WEBAPPS,
    AppProfile,
    all_webapp_profiles,
    clean_webapp_profiles,
)
from repro.corpus.wordpress import (  # noqa: F401
    DOWNLOAD_BIN_LABELS,
    DOWNLOAD_BINS,
    INSTALL_BIN_LABELS,
    INSTALL_BINS,
    PAPER_KNOWN_PLUGIN_VULNS,
    PAPER_PLUGIN_CLASS_TOTALS,
    PAPER_PLUGIN_FP,
    PAPER_PLUGIN_FPP,
    PAPER_PLUGIN_TOTAL_VULNS,
    PAPER_TOTAL_PLUGINS,
    PAPER_ZERO_DAY_PLUGIN_VULNS,
    VULNERABLE_PLUGINS,
    PluginProfile,
    all_plugin_profiles,
    bin_index,
    clean_plugin_profiles,
    download_histogram,
    install_histogram,
)

__all__ = [
    "AppProfile",
    "PluginProfile",
    "MaterializedPackage",
    "materialize_package",
    "build_webapp_corpus",
    "build_wordpress_corpus",
    "vuln_snippet",
    "fp_snippet",
    "benign_snippet",
    "page_wrapper",
    "CUSTOM_HELPER_LIB",
    "SUPPORTED_CLASSES",
    "DEFAULT_FILE_CAP",
    "VULNERABLE_WEBAPPS",
    "VULNERABLE_PLUGINS",
    "all_webapp_profiles",
    "all_plugin_profiles",
    "clean_webapp_profiles",
    "clean_plugin_profiles",
    "download_histogram",
    "install_histogram",
    "bin_index",
    "DOWNLOAD_BINS",
    "DOWNLOAD_BIN_LABELS",
    "INSTALL_BINS",
    "INSTALL_BIN_LABELS",
]
