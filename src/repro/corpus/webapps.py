"""Profiles of the 54 web application packages (Tables V and VI).

Each :class:`AppProfile` carries the paper's reported metadata (files, lines
of code, analysis time, vulnerable files) and the seeded content the
generator materializes: real vulnerabilities per class and false-positive
candidates per kind.

Reconstruction notes (also in EXPERIMENTS.md): the paper's per-class totals
(last row of Table VI) are encoded exactly — SQLI 72, XSS 255, Files 55,
SCD 4, LDAPI 2, SF 1, HI 19, CS 5, total 413; per-app class splits are
inferred from the row totals and the narrative (e.g. Clip Bucket 2.8 has
"more 4 SQLI" than 2.7; the LDAPI finding sits in *Ldap address book*).
False-positive kinds per app are chosen so the four FPP/FP totals come out
exactly: WAP v2.1 62 predicted + 60 missed, WAPe 104 predicted + 18 missed,
with vfront carrying 6 custom-sanitizer cases (§V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AppProfile:
    """One web application package of the evaluation."""

    name: str
    version: str
    paper_files: int
    paper_loc: int
    paper_time_s: float
    paper_vuln_files: int
    #: real vulnerabilities per class id.
    vulns: dict[str, int] = field(default_factory=dict)
    #: false-positive candidates: (old-symptom, new-symptom, custom-helper).
    fp_old: int = 0
    fp_new: int = 0
    fp_custom: int = 0

    @property
    def total_vulns(self) -> int:
        return sum(self.vulns.values())

    @property
    def total_fps(self) -> int:
        return self.fp_old + self.fp_new + self.fp_custom

    @property
    def is_vulnerable(self) -> bool:
        return self.total_vulns > 0

    # Table VI bookkeeping --------------------------------------------------
    @property
    def wap_fpp(self) -> int:
        """FPs WAP v2.1 predicts: only old-symptom cases."""
        return self.fp_old

    @property
    def wap_fp(self) -> int:
        """FPs WAP v2.1 misses: new-symptom + custom-helper cases."""
        return self.fp_new + self.fp_custom

    @property
    def wape_fpp(self) -> int:
        """FPs WAPe predicts: old- and new-symptom cases."""
        return self.fp_old + self.fp_new

    @property
    def wape_fp(self) -> int:
        """FPs WAPe misses: custom-helper cases (the '18 cases')."""
        return self.fp_custom


def _app(name, version, files, loc, time_s, vuln_files, vulns=None,
         fp=(0, 0, 0)):
    return AppProfile(name, version, files, loc, time_s, vuln_files,
                      vulns or {}, fp[0], fp[1], fp[2])


#: the 17 vulnerable packages of Tables V and VI.
VULNERABLE_WEBAPPS: tuple[AppProfile, ...] = (
    _app("Admin Control Panel Lite 2", "0.10.2", 14, 1_984, 1, 9,
         {"sqli": 9, "xss": 72}, fp=(8, 0, 0)),
    _app("Anywhere Board Games", "0.150215", 3, 501, 1, 1,
         {"xss": 1, "lfi": 1, "cs": 1}),
    _app("Clip Bucket", "2.7.0.4", 597, 148_129, 11, 16,
         {"xss": 10, "rfi": 5, "lfi": 4, "dt_pt": 2, "scd": 1},
         fp=(2, 4, 0)),
    _app("Clip Bucket", "2.8", 606, 149_830, 12, 18,
         {"sqli": 4, "xss": 10, "rfi": 5, "lfi": 4, "dt_pt": 2, "scd": 1},
         fp=(2, 4, 0)),
    _app("Community Mobile Channels", "0.2.0", 372, 119_890, 8, 116,
         {"sqli": 14, "xss": 27, "lfi": 2, "dt_pt": 1, "hi": 3},
         fp=(4, 0, 2)),
    _app("divine", "0.1.3a", 5, 706, 1, 2,
         {"sqli": 4, "xss": 2, "rfi": 1, "lfi": 2}),
    _app("Ldap address book", "0.22", 18, 4_615, 2, 4,
         {"ldapi": 1}),
    _app("Minutes", "0.42", 19, 2_670, 1, 2,
         {"xss": 9, "dt_pt": 1}, fp=(0, 0, 1)),
    _app("Mle Moodle", "0.8.8.5", 235, 59_723, 18, 4,
         {"xss": 6, "ldapi": 1}, fp=(2, 0, 1)),
    _app("Php Open Chat", "3.0.2", 249, 83_899, 7, 9,
         {"xss": 10, "hi": 1}, fp=(0, 0, 2)),
    _app("Pivotx", "2.3.10", 254, 108_893, 6, 1,
         {"xss": 1}, fp=(5, 4, 0)),
    _app("Play sms", "1.3.1", 1_420, 248_875, 19, 7,
         {"xss": 6}, fp=(2, 0, 0)),
    _app("RCR AEsir", "0.11a", 8, 396, 1, 6,
         {"sqli": 9, "xss": 3, "lfi": 1}, fp=(0, 1, 0)),
    _app("refbase", "0.9.6", 171, 109_600, 10, 18,
         {"sqli": 2, "xss": 46}, fp=(7, 4, 0)),
    _app("SAE", "1.1", 150, 47_207, 7, 39,
         {"sqli": 11, "xss": 25, "rfi": 3, "lfi": 4, "dt_pt": 3,
          "scd": 1, "hi": 1}, fp=(3, 9, 4)),
    _app("Tomahawk Mail", "2.0", 155, 16_742, 3, 3,
         {"xss": 2, "hi": 1}, fp=(1, 2, 2)),
    _app("vfront", "0.99.3", 438, 93_042, 15, 25,
         {"sqli": 19, "xss": 25, "rfi": 4, "lfi": 6, "dt_pt": 4,
          "scd": 1, "sf": 1, "hi": 13, "cs": 4}, fp=(26, 14, 6)),
)

#: paper totals for the whole 54-package run (§V-A).
PAPER_TOTAL_PACKAGES = 54
PAPER_TOTAL_FILES = 8_374
PAPER_TOTAL_LOC = 2_065_914
PAPER_TOTAL_TIME_S = 123
PAPER_TOTAL_VULNS = 413
PAPER_TOTAL_VULN_FILES = 280

#: Table VI totals (for assertions in tests and benches).
PAPER_CLASS_TOTALS = {"SQLI": 72, "XSS": 255, "Files": 55, "SCD": 4,
                      "LDAPI": 2, "SF": 1, "HI": 19, "CS": 5}
PAPER_WAP_FPP = 62
PAPER_WAP_FP = 60
PAPER_WAPE_FPP = 104
PAPER_WAPE_FP = 18

_CLEAN_NAMES = [
    "phpBB Es", "Gallery", "SimpleInvoice", "OpenDocMan", "WebCalendar",
    "MyWebSQL", "BoltWire", "PHPList", "Collabtive", "EasyPoll",
    "FormTools", "GuestBook Pro", "HelpDeskZ", "ImageVue", "JobBoard",
    "KnowledgeTree", "LinkManager", "MicroBlog", "NewsPortal", "OpenCart",
    "PasteBoard", "QuizMaster", "RSSReader", "SiteMapper", "TaskFreak",
    "UrlShortener", "VotePoll", "WikiLite", "XmlPortal", "YellowPages",
    "ZenGallery", "BookStack", "CalorieLog", "DocViewer", "EventBoard",
    "FileShare", "GradeBook",
]


def clean_webapp_profiles() -> tuple[AppProfile, ...]:
    """The 37 packages WAPe found no vulnerabilities in.

    Their files/LoC make the corpus totals (54 packages, 8,374 files,
    2,065,914 LoC) match §V-A exactly.
    """
    remaining_files = PAPER_TOTAL_FILES - sum(
        a.paper_files for a in VULNERABLE_WEBAPPS)
    remaining_loc = PAPER_TOTAL_LOC - sum(
        a.paper_loc for a in VULNERABLE_WEBAPPS)
    n = len(_CLEAN_NAMES)
    out = []
    files_each, files_extra = divmod(remaining_files, n)
    loc_each, loc_extra = divmod(remaining_loc, n)
    for i, name in enumerate(_CLEAN_NAMES):
        out.append(_app(
            name, f"1.{i}",
            files_each + (1 if i < files_extra else 0),
            loc_each + (1 if i < loc_extra else 0),
            0.5, 0))
    return tuple(out)


def all_webapp_profiles() -> tuple[AppProfile, ...]:
    return VULNERABLE_WEBAPPS + clean_webapp_profiles()
