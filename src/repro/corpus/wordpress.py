"""Profiles of the 115 WordPress plugins (Table VII and Fig. 4).

Encodes per-plugin real-vulnerability counts (SQLI findings are $wpdb-based
and only reachable through the ``-wpsqli`` weapon), the paper totals of
Table VII (SQLI 55, XSS 71, Files 31, SCD 5, CS 2, HI 5 — 169 total, 3 FPP,
2 FP), and per-plugin download / active-install figures binned into Fig. 4's
ranges.

Reconstruction notes: column totals and the narrative anchors are exact
(simple-support-ticket-system has 18 SQLI — the 5 registered in CVE plus the
13 extra WAPe found; Lightbox Plus Colorbox is the most-installed vulnerable
plugin, XSS only; WP EasyCart is the 60-vulnerability outlier).  Remaining
per-cell splits are inferred from row totals.  Download/install numbers are
synthetic but reproduce the figure's constraints: 16 of the 23 vulnerable
plugins have >10K downloads and 12 are active on >2,000 sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PluginProfile:
    """One WordPress plugin of the evaluation."""

    name: str
    version: str
    downloads: int
    active_installs: int
    #: real vulnerabilities per class id ("wpsqli" for $wpdb SQLI).
    vulns: dict[str, int] = field(default_factory=dict)
    #: false-positive candidates by kind (old/new symptoms, custom helper).
    fp_old: int = 0
    fp_new: int = 0
    fp_custom: int = 0
    cve: tuple[str, ...] = ()

    @property
    def total_vulns(self) -> int:
        return sum(self.vulns.values())

    @property
    def is_vulnerable(self) -> bool:
        return self.total_vulns > 0

    @property
    def wape_fpp(self) -> int:
        return self.fp_old + self.fp_new

    @property
    def wape_fp(self) -> int:
        return self.fp_custom


def _plugin(name, version, downloads, installs, vulns=None, fp=(0, 0, 0),
            cve=()):
    return PluginProfile(name, version, downloads, installs, vulns or {},
                         fp[0], fp[1], fp[2], tuple(cve))


#: the 23 vulnerable plugins of Table VII.
VULNERABLE_PLUGINS: tuple[PluginProfile, ...] = (
    _plugin("appointment-booking-calendar", "1.1.7", 42_000, 3_100,
            {"wpsqli": 1, "xss": 3}, fp=(1, 0, 0),
            cve=("CVE-2015-7319", "CVE-2015-7320")),
    _plugin("auth0", "1.3.6", 1_500, 900, {"xss": 1}),
    _plugin("authorizer", "2.3.6", 26_000, 1_700, {"xss": 2}),
    _plugin("buddypress", "2.4.0", 2_300_000, 200_000, {},
            fp=(1, 0, 0)),
    _plugin("contact-form-generator", "2.0.1", 87_000, 6_500,
            {"wpsqli": 11}),
    _plugin("cp-appointment-calendar", "1.1.7", 34_000, 2_400,
            {"xss": 2}),
    _plugin("easy2map", "1.2.9", 21_000, 1_300,
            {"wpsqli": 1, "xss": 2}, cve=("CVE-2015-7666",)),
    _plugin("ecwid-shopping-cart", "3.4.6", 640_000, 45_000, {"xss": 1}),
    _plugin("gantry-framework", "4.1.6", 96_000, 8_200,
            {"xss": 2, "dt_pt": 1}),
    _plugin("google-maps-travel-route", "1.3.1", 9_100, 620,
            {"wpsqli": 1, "xss": 2}),
    _plugin("lightbox-plus-colorbox", "2.7.2", 880_000, 230_000,
            {"xss": 8}),
    _plugin("payment-form-for-paypal-pro", "1.0.1", 17_500, 1_100,
            {"wpsqli": 2}, cve=("CVE-2015-7669",)),
    _plugin("recipes-writer", "1.0.4", 4_300, 340, {"xss": 4}),
    _plugin("resads", "1.0.1", 9_800, 850, {"xss": 2},
            cve=("CVE-2015-7670",)),
    _plugin("simple-support-ticket-system", "1.2", 8_400, 480,
            {"wpsqli": 18}, cve=("CVE-2015-7667", "CVE-2015-7668")),
    _plugin("the-cartpress-ecommerce-shopping-cart", "1.4.7", 132_000,
            9_600, {"wpsqli": 8, "xss": 17}),
    _plugin("webkite", "2.0.1", 1_900, 140, {"xss": 1}),
    _plugin("wp-easycart-ecommerce-shopping-cart", "3.2.3", 215_000,
            17_000,
            {"wpsqli": 13, "xss": 6, "rfi": 9, "lfi": 12, "dt_pt": 8,
             "scd": 5, "cs": 2, "hi": 5}),
    _plugin("wp-marketplace", "2.4.1", 68_000, 4_800, {"xss": 9},
            fp=(0, 0, 1)),
    _plugin("wp-shop", "3.5.3", 53_000, 3_900, {"xss": 5},
            fp=(0, 0, 1)),
    _plugin("wp-toolbar-removal-node", "1839", 1_200, 95, {"xss": 1}),
    _plugin("wp-ultimate-recipe", "2.5", 510_000, 30_000, {},
            fp=(1, 0, 0)),
    _plugin("wp-web-scraper", "3.5", 29_000, 1_900,
            {"xss": 3, "dt_pt": 1}),
)

#: Table VII totals, for assertions.
PAPER_PLUGIN_CLASS_TOTALS = {"SQLI": 55, "XSS": 71, "Files": 31,
                             "SCD": 5, "CS": 2, "HI": 5}
PAPER_PLUGIN_TOTAL_VULNS = 169
PAPER_PLUGIN_FPP = 3
PAPER_PLUGIN_FP = 2
PAPER_TOTAL_PLUGINS = 115
PAPER_ZERO_DAY_PLUGIN_VULNS = 153
PAPER_KNOWN_PLUGIN_VULNS = 16

# Fig. 4 bin edges --------------------------------------------------------
DOWNLOAD_BINS = ((0, 2_000), (2_000, 5_000), (5_000, 10_000),
                 (10_000, 50_000), (50_000, 100_000),
                 (100_000, 500_000), (500_000, None))
DOWNLOAD_BIN_LABELS = ("< 2000", "2K - 5K", "5K - 10K", "10K - 50K",
                       "50K - 100K", "100K - 500K", "> 500K")
INSTALL_BINS = ((0, 100), (100, 500), (500, 1_000), (1_000, 2_000),
                (2_000, 5_000), (5_000, 10_000), (10_000, None))
INSTALL_BIN_LABELS = ("< 100", "100 - 500", "500 - 1K", "1K - 2K",
                      "2K - 5K", "5K - 10K", "> 10K")

# analyzed (115-plugin) target histograms used to lay out clean plugins
_TARGET_DOWNLOAD_HIST = (30, 18, 12, 25, 10, 12, 8)
_TARGET_INSTALL_HIST = (25, 20, 15, 15, 16, 12, 12)

_CLEAN_TAGS = ["arts", "food", "health", "shopping", "travel", "auth",
               "seo", "social", "forms", "gallery", "backup", "cache"]


def bin_index(value: int, bins) -> int:
    """Index of the bin containing *value*."""
    for i, (lo, hi) in enumerate(bins):
        if value >= lo and (hi is None or value < hi):
            return i
    return len(bins) - 1


def _bin_representative(i: int, bins, offset: int) -> int:
    lo, hi = bins[i]
    if hi is None:
        return lo * 2 + offset * 1_000
    return lo + (hi - lo) // 3 + offset


def clean_plugin_profiles() -> tuple[PluginProfile, ...]:
    """The 92 plugins with no findings, laid out so the 115-plugin
    histograms of Fig. 4 match the target shapes."""
    vuln_dl_hist = [0] * len(DOWNLOAD_BINS)
    vuln_in_hist = [0] * len(INSTALL_BINS)
    for plugin in VULNERABLE_PLUGINS:
        vuln_dl_hist[bin_index(plugin.downloads, DOWNLOAD_BINS)] += 1
        vuln_in_hist[bin_index(plugin.active_installs, INSTALL_BINS)] += 1

    need_dl: list[int] = []
    for i, target in enumerate(_TARGET_DOWNLOAD_HIST):
        need_dl.extend([i] * max(0, target - vuln_dl_hist[i]))
    need_in: list[int] = []
    for i, target in enumerate(_TARGET_INSTALL_HIST):
        need_in.extend([i] * max(0, target - vuln_in_hist[i]))

    count = PAPER_TOTAL_PLUGINS - len(VULNERABLE_PLUGINS)
    out = []
    for k in range(count):
        dl_bin = need_dl[k] if k < len(need_dl) else k % len(DOWNLOAD_BINS)
        in_bin = need_in[k] if k < len(need_in) else k % len(INSTALL_BINS)
        tag = _CLEAN_TAGS[k % len(_CLEAN_TAGS)]
        out.append(_plugin(
            f"{tag}-plugin-{k:03d}", f"1.{k % 10}",
            _bin_representative(dl_bin, DOWNLOAD_BINS, k),
            _bin_representative(in_bin, INSTALL_BINS, k),
        ))
    return tuple(out)


def all_plugin_profiles() -> tuple[PluginProfile, ...]:
    return VULNERABLE_PLUGINS + clean_plugin_profiles()


def download_histogram(plugins) -> list[int]:
    hist = [0] * len(DOWNLOAD_BINS)
    for plugin in plugins:
        hist[bin_index(plugin.downloads, DOWNLOAD_BINS)] += 1
    return hist


def install_histogram(plugins) -> list[int]:
    hist = [0] * len(INSTALL_BINS)
    for plugin in plugins:
        hist[bin_index(plugin.active_installs, INSTALL_BINS)] += 1
    return hist
