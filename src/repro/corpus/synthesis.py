"""Corpus materialization: profiles → PHP trees on disk.

The generator turns an :class:`~repro.corpus.webapps.AppProfile` or
:class:`~repro.corpus.wordpress.PluginProfile` into a real directory of PHP
files that the analyzer then lexes, parses and taint-tracks — only the
*corpus* is synthetic, never the analysis results (DESIGN.md substitution
#1).

Layout rules:

* real vulnerabilities are spread over ``paper_vuln_files`` files (several
  flows per file when the paper reports more vulnerabilities than
  vulnerable files, as most packages do);
* false-positive candidates get their own files, a few per file;
* apps with ``custom``-kind false positives also receive a ``lib.php``
  defining the app-specific helper functions (vfront's ``escape`` et al.);
* benign filler brings the file count up to ``min(paper_files, file_cap)``
  — materializing all 8,374 paper files would only add parse time, not
  detection results, so filler is capped (documented in DESIGN.md).

Generation is deterministic: every profile seeds its own RNG from its name.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field

from repro.exceptions import CorpusError
from repro.corpus.snippets import (
    CUSTOM_HELPER_LIB,
    benign_snippet,
    fp_snippet,
    page_wrapper,
    vuln_snippet,
)
from repro.corpus.webapps import AppProfile, all_webapp_profiles
from repro.corpus.wordpress import PluginProfile, all_plugin_profiles

#: default cap on benign filler files per package.
DEFAULT_FILE_CAP = 40


@dataclass
class MaterializedPackage:
    """One generated package on disk plus its ground truth."""

    name: str
    version: str
    path: str
    profile: object
    #: expected real vulnerabilities per class id.
    expected_vulns: dict[str, int] = field(default_factory=dict)
    #: expected false-positive candidates by kind.
    expected_fp: dict[str, int] = field(default_factory=dict)
    files_written: int = 0

    @property
    def expected_total_vulns(self) -> int:
        return sum(self.expected_vulns.values())

    @property
    def expected_total_fps(self) -> int:
        return sum(self.expected_fp.values())


def _slug(name: str, version: str) -> str:
    return (name.lower().replace(" ", "_") + "-" + version).replace(
        "/", "_")


def _spread(items: list[str], n_files: int) -> list[list[str]]:
    """Distribute snippet bodies over *n_files* files, round-robin."""
    n_files = max(1, min(n_files, len(items)))
    buckets: list[list[str]] = [[] for _ in range(n_files)]
    for i, item in enumerate(items):
        buckets[i % n_files].append(item)
    return buckets


def materialize_package(profile: AppProfile | PluginProfile, root: str,
                        file_cap: int = DEFAULT_FILE_CAP,
                        ) -> MaterializedPackage:
    """Write one package's PHP tree under *root* and return ground truth."""
    if isinstance(profile, AppProfile):
        paper_files = profile.paper_files
        vuln_files = profile.paper_vuln_files
    else:
        paper_files = max(4, profile.total_vulns + 3)
        vuln_files = max(1, profile.total_vulns // 2) \
            if profile.is_vulnerable else 0

    slug = _slug(profile.name, profile.version)
    pkg_dir = os.path.join(root, slug)
    os.makedirs(pkg_dir, exist_ok=True)
    rng = random.Random(f"corpus::{slug}")

    result = MaterializedPackage(profile.name, profile.version, pkg_dir,
                                 profile)

    # --- real vulnerabilities -----------------------------------------
    vuln_bodies: list[str] = []
    for class_id in sorted(profile.vulns):
        count = profile.vulns[class_id]
        if count < 0:
            raise CorpusError(
                f"{profile.name}: negative count for {class_id}")
        for _ in range(count):
            vuln_bodies.append(vuln_snippet(class_id, rng))
        result.expected_vulns[class_id] = count
    rng.shuffle(vuln_bodies)
    n_written = 0
    if vuln_bodies:
        target_files = min(vuln_files or 1, len(vuln_bodies))
        for i, bucket in enumerate(_spread(vuln_bodies, target_files)):
            _write_page(pkg_dir, f"page_{i:03d}.php",
                        bucket, f"{profile.name} page {i}", rng)
            n_written += 1

    # --- false-positive candidates -------------------------------------
    fp_bodies: list[str] = []
    for kind in ("old", "new", "custom"):
        count = getattr(profile, f"fp_{kind}")
        result.expected_fp[kind] = count
        for _ in range(count):
            fp_bodies.append(fp_snippet(kind, rng))
    if fp_bodies:
        for i, bucket in enumerate(_spread(fp_bodies,
                                           (len(fp_bodies) + 2) // 3)):
            _write_page(pkg_dir, f"admin_{i:03d}.php",
                        bucket, f"{profile.name} admin {i}", rng)
            n_written += 1
    if result.expected_fp.get("custom"):
        with open(os.path.join(pkg_dir, "lib.php"), "w",
                  encoding="utf-8") as f:
            f.write("<?php\n// application helper library\n"
                    + CUSTOM_HELPER_LIB + "\n")
        n_written += 1

    # --- benign filler ---------------------------------------------------
    filler = max(0, min(paper_files, file_cap) - n_written)
    for i in range(filler):
        _write_page(pkg_dir, f"inc_{i:03d}.php",
                    [benign_snippet(rng)],
                    f"{profile.name} include {i}", rng)
        n_written += 1

    result.files_written = n_written
    return result


def _write_page(pkg_dir: str, filename: str, bodies: list[str],
                title: str, rng: random.Random) -> None:
    with open(os.path.join(pkg_dir, filename), "w",
              encoding="utf-8") as f:
        f.write(page_wrapper(bodies, title, rng))


# ---------------------------------------------------------------------------
# whole-corpus builders
# ---------------------------------------------------------------------------

def build_webapp_corpus(root: str, file_cap: int = DEFAULT_FILE_CAP,
                        vulnerable_only: bool = False,
                        ) -> list[MaterializedPackage]:
    """Materialize the 54-package web application corpus (§V-A)."""
    from repro.corpus.webapps import VULNERABLE_WEBAPPS
    profiles = (VULNERABLE_WEBAPPS if vulnerable_only
                else all_webapp_profiles())
    return [materialize_package(p, root, file_cap) for p in profiles]


def build_wordpress_corpus(root: str, file_cap: int = DEFAULT_FILE_CAP,
                           vulnerable_only: bool = False,
                           ) -> list[MaterializedPackage]:
    """Materialize the 115-plugin WordPress corpus (§V-B)."""
    from repro.corpus.wordpress import VULNERABLE_PLUGINS
    profiles = (VULNERABLE_PLUGINS if vulnerable_only
                else all_plugin_profiles())
    return [materialize_package(p, root, file_cap) for p in profiles]
