"""Parameterized PHP snippet generators for the synthetic corpus.

Each generator renders a small, realistic PHP fragment containing exactly
one *flow* of interest:

* :func:`vuln_snippet` — one real vulnerability of a given class (minimal
  validation symptoms, so the predictor keeps it);
* :func:`fp_snippet` — one candidate that is a false positive, in one of
  three kinds mirroring §V-A:

  - ``old``: guarded by an original-WAP symptom (both tools predict it),
  - ``new``: guarded only by a new-in-WAPe symptom (only WAPe predicts it),
  - ``custom``: neutralized by an application-specific helper function
    (neither tool predicts it — the "18 cases", fixable by feeding the
    helper to the tool as a sanitizer);

* :func:`benign_snippet` — code with no candidate flows at all.

All variation (variable names, table names, keys) is drawn from the given
``random.Random`` so corpus generation is deterministic per seed.
"""

from __future__ import annotations

import random

_KEYS = ["id", "uid", "page", "cat", "q", "name", "user", "token", "ref",
         "item", "post", "tag", "lang", "sort", "sid"]
_TABLES = ["users", "posts", "items", "orders", "comments", "sessions",
           "products", "logs", "pages", "members"]
_COLS = ["name", "title", "body", "email", "status", "owner", "label"]
_VARS = ["value", "input", "data", "param", "arg", "field", "entry"]
_SUPERGLOBALS = ["_GET", "_POST", "_REQUEST", "_COOKIE"]

#: guards whose symptom existed in WAP v2.1 (original column of Table I).
_OLD_GUARDS = ["is_numeric", "ctype_digit", "ctype_alnum", "is_int",
               "is_float", "preg_match", "strcmp", "strncmp"]
#: guards whose symptom is new in WAPe (right column of Table I).
_NEW_GUARDS = ["is_integer", "is_long", "is_real", "is_scalar",
               "is_double", "preg_match_all"]
#: names used for app-specific sanitizing helpers (the `escape` scenario).
_CUSTOM_HELPERS = ["escape", "clean_input", "db_safe", "quote_smart",
                   "my_filter"]


def _pick(rng: random.Random, pool: list[str]) -> str:
    return pool[rng.randrange(len(pool))]


def _source(rng: random.Random) -> tuple[str, str]:
    """A superglobal read: returns (php expression, key)."""
    sg = _pick(rng, _SUPERGLOBALS)
    key = _pick(rng, _KEYS)
    return f"${sg}['{key}']", key


# ---------------------------------------------------------------------------
# real vulnerabilities, one generator per class
# ---------------------------------------------------------------------------

def _vuln_sqli(rng: random.Random) -> str:
    src, key = _source(rng)
    table = _pick(rng, _TABLES)
    col = _pick(rng, _COLS)
    var = _pick(rng, _VARS)
    style = rng.randrange(4)
    if style == 0:
        return (f"${var} = {src};\n"
                f"$result = mysql_query(\"SELECT * FROM {table} "
                f"WHERE {col} = '\" . ${var} . \"'\");")
    if style == 1:
        return (f"${var} = {src};\n"
                f"mysql_query(\"UPDATE {table} SET {col} = '\" . ${var}"
                f" . \"' WHERE id = 1\");")
    if style == 2:
        return (f"${var} = {src};\n"
                f"$sql = \"SELECT {col} FROM {table} WHERE {col} = "
                f"'${var}'\";"
                f"\nmysql_query($sql);")
    # interprocedural: the sink sits inside a local helper
    fn = f"run_{table}_{rng.randrange(1_000_000)}"
    return (f"function {fn}($sql) {{\n"
            f"    return mysql_query($sql);\n"
            f"}}\n"
            f"{fn}(\"SELECT {col} FROM {table} WHERE {col} = '\""
            f" . {src} . \"'\");")


def _vuln_wpsqli(rng: random.Random) -> str:
    src, key = _source(rng)
    col = _pick(rng, _COLS)
    var = _pick(rng, _VARS)
    method = _pick(rng, ["query", "get_results", "get_row", "get_var"])
    return (f"global $wpdb;\n"
            f"${var} = {src};\n"
            f"$rows = $wpdb->{method}(\"SELECT * FROM {{$wpdb->posts}} "
            f"WHERE {col} = '\" . ${var} . \"'\");")


def _vuln_xss(rng: random.Random) -> str:
    src, key = _source(rng)
    var = _pick(rng, _VARS)
    style = rng.randrange(4)
    if style == 0:
        return f"echo \"<p>\" . {src} . \"</p>\";"
    if style == 1:
        return (f"${var} = {src};\n"
                f"echo \"<input type='hidden' value='${var}'>\";")
    if style == 2:
        return (f"${var} = {src};\n"
                f"print ${var};")
    # interprocedural: the echo sits inside a local rendering helper
    fn = f"render_{var}_{rng.randrange(1_000_000)}"
    return (f"function {fn}($html) {{\n"
            f"    echo \"<div>\" . $html . \"</div>\";\n"
            f"}}\n"
            f"{fn}({src});")


def _vuln_rfi(rng: random.Random) -> str:
    src, _ = _source(rng)
    return f"include {src};"


def _vuln_lfi(rng: random.Random) -> str:
    src, _ = _source(rng)
    directory = _pick(rng, ["pages", "modules", "inc", "tpl"])
    return f"include '{directory}/' . {src} . '.php';"


def _vuln_dt_pt(rng: random.Random) -> str:
    src, _ = _source(rng)
    var = _pick(rng, _VARS)
    fn = _pick(rng, ["fopen", "opendir", "unlink"])
    extra = ", 'r'" if fn == "fopen" else ""
    return f"${var} = {src};\n$h = {fn}(${var}{extra});"


def _vuln_scd(rng: random.Random) -> str:
    src, _ = _source(rng)
    fn = _pick(rng, ["readfile", "show_source", "highlight_file"])
    return f"{fn}({src});"


def _vuln_osci(rng: random.Random) -> str:
    src, _ = _source(rng)
    var = _pick(rng, _VARS)
    if rng.randrange(2):
        return f"${var} = {src};\nsystem('convert ' . ${var});"
    return f"${var} = {src};\n$out = exec(${var});"


def _vuln_phpci(rng: random.Random) -> str:
    src, _ = _source(rng)
    return f"eval({src});"


def _vuln_sf(rng: random.Random) -> str:
    src, _ = _source(rng)
    if rng.randrange(2):
        return f"session_id({src});\nsession_start();"
    return f"setcookie('session', {src});"


def _vuln_cs(rng: random.Random) -> str:
    src, _ = _source(rng)
    var = _pick(rng, _VARS)
    return (f"${var} = {src};\n"
            f"file_put_contents('comments.txt', ${var}, FILE_APPEND);")


def _vuln_ldapi(rng: random.Random) -> str:
    src, _ = _source(rng)
    fn = _pick(rng, ["ldap_search", "ldap_list", "ldap_read"])
    return (f"$filter = '(uid=' . {src} . ')';\n"
            f"$entries = {fn}($ds, 'dc=example,dc=org', $filter);")


def _vuln_xpathi(rng: random.Random) -> str:
    src, _ = _source(rng)
    return (f"$query = \"//user[name='\" . {src} . \"']\";\n"
            f"$nodes = xpath_eval($ctx, $query);")


def _vuln_nosqli(rng: random.Random) -> str:
    src, key = _source(rng)
    return (f"$collection = $db->selectCollection('users');\n"
            f"$doc = $collection->find(array('{key}' => {src}));")


def _vuln_hi(rng: random.Random) -> str:
    src, _ = _source(rng)
    header = _pick(rng, ["Location: ", "X-Redirect: ", "Refresh: 0; url="])
    return f"header(\"{header}\" . {src});"


def _vuln_ei(rng: random.Random) -> str:
    src, _ = _source(rng)
    return f"mail({src}, 'Notification', $body);"


_VULN_GENERATORS = {
    "sqli": _vuln_sqli,
    "wpsqli": _vuln_wpsqli,
    "xss": _vuln_xss,
    "rfi": _vuln_rfi,
    "lfi": _vuln_lfi,
    "dt_pt": _vuln_dt_pt,
    "scd": _vuln_scd,
    "osci": _vuln_osci,
    "phpci": _vuln_phpci,
    "sf": _vuln_sf,
    "cs": _vuln_cs,
    "ldapi": _vuln_ldapi,
    "xpathi": _vuln_xpathi,
    "nosqli": _vuln_nosqli,
    "hi": _vuln_hi,
    "ei": _vuln_ei,
}

SUPPORTED_CLASSES = tuple(sorted(_VULN_GENERATORS))


def vuln_snippet(class_id: str, rng: random.Random) -> str:
    """PHP fragment with exactly one real vulnerability of *class_id*."""
    try:
        generator = _VULN_GENERATORS[class_id]
    except KeyError:
        raise ValueError(f"no snippet generator for class {class_id!r}") \
            from None
    return generator(rng)


# ---------------------------------------------------------------------------
# false-positive candidates (always SQLI-shaped: the shared class both
# tool versions detect)
# ---------------------------------------------------------------------------

def fp_snippet(kind: str, rng: random.Random) -> str:
    """PHP fragment with one false-positive SQLI candidate of *kind*."""
    src, key = _source(rng)
    table = _pick(rng, _TABLES)
    col = _pick(rng, _COLS)
    var = _pick(rng, _VARS)
    if kind == "old":
        guard = _pick(rng, _OLD_GUARDS)
        if guard in ("preg_match", "strcmp", "strncmp"):
            check = f"{guard}('/^[0-9]+$/', ${var})" \
                if guard == "preg_match" else \
                f"{guard}(${var}, 'expected') == 0"
            return (f"${var} = {src};\n"
                    f"if (!({check})) {{ exit('invalid'); }}\n"
                    f"mysql_query(\"SELECT {col} FROM {table} "
                    f"WHERE {col} = \" . ${var});")
        return (f"${var} = {src};\n"
                f"if ({guard}(${var})) {{\n"
                f"    mysql_query(\"SELECT {col} FROM {table} "
                f"WHERE id = \" . ${var});\n"
                f"}}")
    if kind == "new":
        guard = _pick(rng, _NEW_GUARDS)
        if guard == "preg_match_all":
            return (f"${var} = {src};\n"
                    f"if (preg_match_all('/^[a-z0-9]+$/', ${var})) {{\n"
                    f"    mysql_query(\"SELECT {col} FROM {table} "
                    f"WHERE {col} = '\" . ${var} . \"'\");\n}}")
        return (f"${var} = {src};\n"
                f"if ({guard}(${var})) {{\n"
                f"    mysql_query(\"SELECT {col} FROM {table} "
                f"WHERE id = \" . ${var});\n"
                f"}}")
    if kind == "custom":
        helper = _pick(rng, _CUSTOM_HELPERS)
        return (f"${var} = {helper}({src});\n"
                f"mysql_query(\"SELECT {col} FROM {table} "
                f"WHERE {col} = '\" . ${var} . \"'\");")
    raise ValueError(f"unknown false-positive kind {kind!r}")


#: PHP source of the app-specific helper functions referenced by
#: ``custom`` false positives (each app that uses them defines them once in
#: a lib file, like vfront's `escape`).
CUSTOM_HELPER_LIB = "\n".join(
    f"function {name}($value) {{\n"
    f"    return str_replace(array(\"'\", '\"'), '', $value);\n"
    f"}}" for name in _CUSTOM_HELPERS
)


# ---------------------------------------------------------------------------
# benign code
# ---------------------------------------------------------------------------

def benign_snippet(rng: random.Random) -> str:
    """PHP fragment with no tainted flows at all."""
    table = _pick(rng, _TABLES)
    col = _pick(rng, _COLS)
    var = _pick(rng, _VARS)
    style = rng.randrange(4)
    if style == 0:
        return (f"${var} = {rng.randrange(100)};\n"
                f"$total = ${var} * 2 + 1;\n"
                f"echo 'total: ' . $total;")
    if style == 1:
        return (f"$rows = mysql_query(\"SELECT {col} FROM {table} "
                f"ORDER BY {col} LIMIT 10\");\n"
                f"$count = 0;\n"
                f"while ($count < 10) {{ $count++; }}")
    if style == 2:
        safe = _pick(rng, _SUPERGLOBALS)
        key = _pick(rng, _KEYS)
        return (f"${var} = (int)${safe}['{key}'];\n"
                f"mysql_query(\"SELECT {col} FROM {table} "
                f"WHERE id = \" . ${var});")
    return (f"function helper_{rng.randrange(1000)}($a, $b) {{\n"
            f"    return $a . '-' . $b;\n"
            f"}}\n"
            f"echo helper_{'x'}('{table}', '{col}');").replace(
                "helper_x", f"helper_{rng.randrange(1000)}")


def page_wrapper(body_parts: list[str], title: str,
                 rng: random.Random) -> str:
    """Assemble snippet fragments into a realistic PHP page."""
    php_body = "\n\n".join(body_parts)
    return (f"<html>\n<head><title>{title}</title></head>\n<body>\n"
            f"<h1>{title}</h1>\n"
            f"<?php\n// {title} - generated corpus file\n"
            f"{php_body}\n?>\n"
            f"</body>\n</html>\n")
