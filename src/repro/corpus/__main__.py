"""Materialize the evaluation corpora to disk.

Usage::

    python -m repro.corpus --out /tmp/corpus                 # both corpora
    python -m repro.corpus --out /tmp/w --webapps-only
    python -m repro.corpus --out /tmp/p --wordpress-only --vulnerable-only
    python -m repro.corpus --out /tmp/c --file-cap 10

The generated trees are plain PHP packages; point the tool at them::

    wape -wpsqli -hei /tmp/corpus/wordpress/<plugin>/
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.corpus.synthesis import (
    DEFAULT_FILE_CAP,
    build_webapp_corpus,
    build_wordpress_corpus,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.corpus",
        description="materialize the synthetic evaluation corpora "
                    "(Tables V-VII of the paper)")
    parser.add_argument("--out", required=True,
                        help="output directory")
    parser.add_argument("--webapps-only", action="store_true")
    parser.add_argument("--wordpress-only", action="store_true")
    parser.add_argument("--vulnerable-only", action="store_true",
                        help="skip the clean packages")
    parser.add_argument("--file-cap", type=int, default=DEFAULT_FILE_CAP,
                        help="benign filler files per package "
                             f"(default {DEFAULT_FILE_CAP})")
    args = parser.parse_args(argv)

    if args.webapps_only and args.wordpress_only:
        parser.error("choose at most one of --webapps-only / "
                     "--wordpress-only")

    total_pkgs = 0
    total_files = 0
    if not args.wordpress_only:
        packages = build_webapp_corpus(
            os.path.join(args.out, "webapps"), args.file_cap,
            args.vulnerable_only)
        total_pkgs += len(packages)
        total_files += sum(p.files_written for p in packages)
        print(f"webapps:   {len(packages)} packages")
    if not args.webapps_only:
        packages = build_wordpress_corpus(
            os.path.join(args.out, "wordpress"), args.file_cap,
            args.vulnerable_only)
        total_pkgs += len(packages)
        total_files += sum(p.files_written for p in packages)
        print(f"wordpress: {len(packages)} plugins")
    print(f"materialized {total_pkgs} packages / {total_files} PHP files "
          f"under {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
