"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch a single base class at tool boundaries (the CLI does this)
while tests can assert on the precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class PhpSyntaxError(ReproError):
    """Raised by the lexer or parser on malformed PHP source.

    Attributes:
        message: human readable description of the problem.
        line: 1-based line number in the source file.
        col: 1-based column number in the source file.
        filename: best-effort name of the file being parsed.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0,
                 filename: str = "<source>") -> None:
        self.message = message
        self.line = line
        self.col = col
        self.filename = filename
        super().__init__(f"{filename}:{line}:{col}: {message}")


class KnowledgeBaseError(ReproError):
    """Raised when a vulnerability-class catalog is malformed or missing."""


class WeaponConfigError(ReproError):
    """Raised when a weapon specification is invalid or incomplete."""


class FixTemplateError(ReproError):
    """Raised when a fix template cannot be instantiated from the given data."""


class CorrectionError(ReproError):
    """Raised when the code corrector cannot apply a fix to the source."""


class DatasetError(ReproError):
    """Raised when a training data set is malformed (shape, labels, balance)."""


class ClassifierError(ReproError):
    """Raised on invalid classifier usage (predict before fit, bad shapes)."""


class CorpusError(ReproError):
    """Raised when corpus synthesis hits an inconsistent profile."""


class ReportSchemaError(ReproError):
    """Raised when a JSON report has an unknown or malformed schema."""


class ServiceError(ReproError):
    """Raised by the scan service on invalid requests or bad state."""
