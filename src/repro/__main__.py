"""``python -m repro`` runs the consolidated ``wape`` entry point.

``python -m repro scan app/`` etc.; bare flag-style arguments still
dispatch to ``scan`` with a deprecation notice on stderr.
"""

import sys

from repro.tool.main import main

if __name__ == "__main__":
    sys.exit(main())
