"""``python -m repro`` runs the consolidated ``wape`` entry point.

``python -m repro scan app/`` etc.; the historical bare flag-style
invocation was removed and now fails fast with the matching subcommand.
"""

import sys

from repro.tool.main import main

if __name__ == "__main__":
    sys.exit(main())
