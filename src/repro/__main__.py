"""``python -m repro`` runs the WAPe command-line interface."""

import sys

from repro.tool.cli import main

if __name__ == "__main__":
    sys.exit(main())
