"""Exporters: JSON trace files and Prometheus-style metrics text.

Two machine-readable outputs and their loaders/validators:

* **JSON trace** (``--trace-out``): the full span tree of a run, format
  :data:`TRACE_FORMAT`.  :func:`load_trace` reads a file back and
  :func:`validate_trace` checks the schema (unique ids, resolvable parent
  links, non-negative durations) so round-trips are testable.

* **Prometheus text** (``--metrics-out``): the classic exposition format —
  ``# TYPE`` comments plus one ``name value`` line per instrument, with
  histogram summaries flattened into ``{quantile="..."}`` labels.  The
  output is scrapable as-is by any Prometheus-compatible collector.
"""

from __future__ import annotations

import json

#: bump when the span record layout changes.
TRACE_FORMAT = 1

_REQUIRED_SPAN_KEYS = frozenset(
    {"id", "parent", "name", "phase", "start", "duration"})


def trace_to_dict(tracer, tool: str = "", target: str = "") -> dict:
    """The JSON document for ``--trace-out``."""
    return {
        "trace_format": TRACE_FORMAT,
        "tool": tool,
        "target": target,
        "spans": [span.to_record() for span in tracer.spans],
    }


def write_trace(path: str, tracer, tool: str = "",
                target: str = "") -> None:
    with open(path, "w", encoding="utf-8") as f:
        json.dump(trace_to_dict(tracer, tool, target), f, indent=2)
        f.write("\n")


def load_trace(path: str) -> dict:
    """Read a ``--trace-out`` file back, validating the schema."""
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    validate_trace(data)
    return data


def validate_trace(data: dict) -> None:
    """Raise ``ValueError`` unless *data* is a well-formed trace."""
    if data.get("trace_format") != TRACE_FORMAT:
        raise ValueError(
            f"unsupported trace_format {data.get('trace_format')!r}")
    spans = data.get("spans")
    if not isinstance(spans, list):
        raise ValueError("trace has no span list")
    ids = set()
    for rec in spans:
        missing = _REQUIRED_SPAN_KEYS - set(rec)
        if missing:
            raise ValueError(f"span missing keys: {sorted(missing)}")
        if rec["id"] in ids:
            raise ValueError(f"duplicate span id {rec['id']}")
        ids.add(rec["id"])
        if rec["duration"] < 0:
            raise ValueError(f"span {rec['id']} has negative duration")
    for rec in spans:
        parent = rec["parent"]
        if parent is not None and parent not in ids:
            raise ValueError(
                f"span {rec['id']} has dangling parent {parent}")


# ---------------------------------------------------------------------------
# Prometheus-style text format
# ---------------------------------------------------------------------------

def _metric_name(prefix: str, name: str) -> str:
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_"
                   for ch in name)
    return f"{prefix}_{safe}" if prefix else safe


def metrics_to_text(metrics, prefix: str = "wape") -> str:
    """Prometheus exposition-format dump of a metrics registry."""
    lines: list[str] = []
    for name, counter in sorted(metrics.counters.items()):
        full = _metric_name(prefix, name)
        lines.append(f"# TYPE {full} counter")
        lines.append(f"{full} {counter.value}")
    for name, gauge in sorted(metrics.gauges.items()):
        full = _metric_name(prefix, name)
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {gauge.value:.6g}")
    for name, hist in sorted(metrics.histograms.items()):
        full = _metric_name(prefix, name)
        summary = hist.summary()
        lines.append(f"# TYPE {full} summary")
        lines.append(f"{full}_count {summary['count']}")
        lines.append(f"{full}_sum {summary['sum']:.6g}")
        for q in ("p50", "p95"):
            quantile = "0.5" if q == "p50" else "0.95"
            lines.append(f"{full}{{quantile=\"{quantile}\"}} "
                         f"{summary[q]:.6g}")
        lines.append(f"{full}{{quantile=\"1\"}} {summary['max']:.6g}")
    return "\n".join(lines) + "\n"


def write_metrics(path: str, metrics, prefix: str = "wape") -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(metrics_to_text(metrics, prefix))
