"""Exporters: JSON trace files and Prometheus-style metrics text.

Two machine-readable outputs and their loaders/validators:

* **JSON trace** (``--trace-out``): the full span tree of a run, format
  :data:`TRACE_FORMAT`.  :func:`load_trace` reads a file back and
  :func:`validate_trace` checks the schema (unique ids, resolvable parent
  links, non-negative durations) so round-trips are testable.

* **Prometheus text** (``--metrics-out``): the classic exposition format —
  ``# TYPE`` comments plus one ``name value`` line per instrument, with
  histogram summaries flattened into ``{quantile="..."}`` labels.  The
  output is scrapable as-is by any Prometheus-compatible collector.
"""

from __future__ import annotations

import json

#: bump when the span record layout changes.
TRACE_FORMAT = 1

_REQUIRED_SPAN_KEYS = frozenset(
    {"id", "parent", "name", "phase", "start", "duration"})


def trace_to_dict(tracer, tool: str = "", target: str = "") -> dict:
    """The JSON document for ``--trace-out``."""
    return {
        "trace_format": TRACE_FORMAT,
        "tool": tool,
        "target": target,
        "spans": [span.to_record() for span in tracer.spans],
    }


def write_trace(path: str, tracer, tool: str = "",
                target: str = "") -> None:
    with open(path, "w", encoding="utf-8") as f:
        json.dump(trace_to_dict(tracer, tool, target), f, indent=2)
        f.write("\n")


def load_trace(path: str) -> dict:
    """Read a ``--trace-out`` file back, validating the schema."""
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    validate_trace(data)
    return data


def validate_trace(data: dict) -> None:
    """Raise ``ValueError`` unless *data* is a well-formed trace."""
    if data.get("trace_format") != TRACE_FORMAT:
        raise ValueError(
            f"unsupported trace_format {data.get('trace_format')!r}")
    spans = data.get("spans")
    if not isinstance(spans, list):
        raise ValueError("trace has no span list")
    ids = set()
    for rec in spans:
        missing = _REQUIRED_SPAN_KEYS - set(rec)
        if missing:
            raise ValueError(f"span missing keys: {sorted(missing)}")
        if rec["id"] in ids:
            raise ValueError(f"duplicate span id {rec['id']}")
        ids.add(rec["id"])
        if rec["duration"] < 0:
            raise ValueError(f"span {rec['id']} has negative duration")
    for rec in spans:
        parent = rec["parent"]
        if parent is not None and parent not in ids:
            raise ValueError(
                f"span {rec['id']} has dangling parent {parent}")


# ---------------------------------------------------------------------------
# Prometheus-style text format
# ---------------------------------------------------------------------------

def _metric_name(prefix: str, name: str) -> str:
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_"
                   for ch in name)
    return f"{prefix}_{safe}" if prefix else safe


def _split_labels(name: str) -> tuple[str, list[tuple[str, str]]]:
    """Parse the registry's label convention: ``base|k=v,k=v``.

    Instruments are registered under flat string names; a ``|`` suffix
    carries Prometheus labels (the service uses it for per-endpoint
    request metrics) that this exporter renders as ``base{k="v",...}``.
    """
    base, sep, label_part = name.partition("|")
    if not sep:
        return name, []
    labels: list[tuple[str, str]] = []
    for pair in label_part.split(","):
        key, eq, value = pair.partition("=")
        if eq and key.strip():
            labels.append((key.strip(), value.strip()))
    return base, labels


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _render_labels(labels: list[tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label(value)}"'
                     for key, value in labels)
    return "{" + inner + "}"


def metrics_to_text(metrics, prefix: str = "wape") -> str:
    """Prometheus exposition-format dump of a metrics registry.

    Labeled instruments (``base|k=v,k=v`` names) share one ``# TYPE``
    comment per base name and emit one sample line per label set.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def emit_type(full: str, kind: str) -> None:
        if full not in typed:
            typed.add(full)
            lines.append(f"# TYPE {full} {kind}")

    for name, counter in sorted(metrics.counters.items()):
        base, labels = _split_labels(name)
        full = _metric_name(prefix, base)
        emit_type(full, "counter")
        lines.append(f"{full}{_render_labels(labels)} {counter.value}")
    for name, gauge in sorted(metrics.gauges.items()):
        base, labels = _split_labels(name)
        full = _metric_name(prefix, base)
        emit_type(full, "gauge")
        lines.append(f"{full}{_render_labels(labels)} "
                     f"{gauge.value:.6g}")
    for name, hist in sorted(metrics.histograms.items()):
        base, labels = _split_labels(name)
        full = _metric_name(prefix, base)
        summary = hist.summary()
        emit_type(full, "summary")
        rendered = _render_labels(labels)
        lines.append(f"{full}_count{rendered} {summary['count']}")
        lines.append(f"{full}_sum{rendered} {summary['sum']:.6g}")
        for q, quantile in (("p50", "0.5"), ("p95", "0.95"),
                            ("max", "1")):
            q_labels = labels + [("quantile", quantile)]
            lines.append(f"{full}{_render_labels(q_labels)} "
                         f"{summary[q]:.6g}")
    return "\n".join(lines) + "\n"


def write_metrics(path: str, metrics, prefix: str = "wape") -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(metrics_to_text(metrics, prefix))
