"""Scan telemetry: phase-scoped tracing, pipeline metrics, provenance.

Dependency-free instrumentation for the whole scan stack.  One
:class:`Telemetry` value bundles a tracer and a metrics registry and is
threaded through the pipeline (``FusedDetector`` → ``TaintEngine`` →
``ScanScheduler`` → the tool facades); the disabled default
(:data:`NULL_TELEMETRY`) is a shared no-op whose hot paths are guarded by
a single boolean check, so scans without telemetry pay nothing.

>>> from repro.telemetry import Telemetry
>>> telemetry = Telemetry()
>>> with telemetry.tracer.span("scan", phase="scan"):
...     telemetry.metrics.counter("files_scanned").inc()
"""

from repro.telemetry.export import (  # noqa: F401
    TRACE_FORMAT,
    load_trace,
    metrics_to_text,
    trace_to_dict,
    validate_trace,
    write_metrics,
    write_trace,
)
from repro.telemetry.metrics import (  # noqa: F401
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    Metrics,
    NullMetrics,
)
from repro.telemetry.tracing import (  # noqa: F401
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)


class Telemetry:
    """A tracer + metrics registry pair threaded through one run."""

    __slots__ = ("enabled", "tracer", "metrics")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.tracer = Tracer() if enabled else NULL_TRACER
        self.metrics = Metrics() if enabled else NULL_METRICS


#: the shared disabled default — costs one attribute read to check.
NULL_TELEMETRY = Telemetry(enabled=False)

# provenance reaches into repro.analysis, which imports this package back
# for NULL_TELEMETRY — so Telemetry must exist before these two imports.
from repro.telemetry.provenance import (  # noqa: E402,F401
    Provenance,
    ProvenanceEvent,
    build_provenance,
)
from repro.telemetry.stats import (  # noqa: E402,F401
    CacheStats,
    PrefilterStats,
    ScanStats,
    build_scan_stats,
)

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Metrics",
    "NullMetrics",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "Provenance",
    "ProvenanceEvent",
    "build_provenance",
    "CacheStats",
    "PrefilterStats",
    "ScanStats",
    "build_scan_stats",
    "TRACE_FORMAT",
    "trace_to_dict",
    "validate_trace",
    "load_trace",
    "write_trace",
    "metrics_to_text",
    "write_metrics",
]
