"""Phase-scoped tracing: spans, the tracer, and the no-op default.

A :class:`Span` is one timed region of the scan — the whole run, a phase
(``discover``, ``scan``, ``predict``), a per-file stage (``lex``,
``parse``, ``taint``, ``split``), a cache access, or a worker chunk.
Spans nest: the tracer keeps a stack of open spans and each new span is
parented on the innermost open one, so exporting the span list yields the
full tree of where scan time went.

Two properties matter for the scan pipeline:

* **Cross-process merging** — analysis workers record spans into their own
  tracer, :meth:`Tracer.drain` serializes them, and the parent process
  stitches them into its trace with :meth:`Tracer.merge`, re-parenting the
  worker's root spans under the chunk span and stamping every record with
  the worker id.  Span ids are remapped on merge so ids stay unique even
  though every worker numbers its own spans from 1.

* **Near-zero disabled overhead** — the module-level :data:`NULL_TRACER`
  never allocates: ``span()`` hands back one shared no-op context manager.
  Hot per-file code paths additionally guard on ``telemetry.enabled`` so a
  scan without telemetry performs no tracing calls at all (the throughput
  benchmark pins this).
"""

from __future__ import annotations

import time


class Span:
    """One timed, named region of the scan.

    Attributes:
        span_id: tracer-unique integer id.
        parent_id: id of the enclosing span, ``None`` for roots.
        name: region name (``file``, ``lex``, ``chunk``, ...).
        phase: coarse phase bucket the region belongs to.
        start: wall-clock start (``time.time()``), comparable across
            processes to within clock skew.
        duration: elapsed seconds (monotonic, from ``perf_counter``).
        worker: process id of the recording worker; ``None`` in-process.
        attrs: free-form string attributes (``file``, ``cause``, ...).
    """

    __slots__ = ("span_id", "parent_id", "name", "phase", "start",
                 "duration", "worker", "attrs", "_t0")

    def __init__(self, span_id: int, parent_id: int | None, name: str,
                 phase: str, attrs: dict | None = None) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.phase = phase
        self.start = time.time()
        self.duration = 0.0
        self.worker: int | None = None
        self.attrs = attrs or {}
        self._t0 = time.perf_counter()

    def set(self, **attrs) -> "Span":
        """Attach attributes to an open (or closed) span."""
        self.attrs.update(attrs)
        return self

    def to_record(self) -> dict:
        """JSON-serializable representation (the trace wire format)."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "phase": self.phase,
            "start": round(self.start, 6),
            "duration": round(self.duration, 6),
            "worker": self.worker,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, phase={self.phase!r}, "
                f"{self.duration:.6f}s)")


class _ActiveSpan:
    """Context manager that closes a span and files it with its tracer."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc) -> bool:
        self.tracer._close(self.span)
        return False


class Tracer:
    """Collects spans for one process; nested via an open-span stack."""

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    def span(self, name: str, phase: str = "", **attrs) -> _ActiveSpan:
        """Open a span parented on the innermost open span."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self._next_id, parent, name, phase or name,
                    attrs if attrs else None)
        self._next_id += 1
        self._stack.append(span)
        return _ActiveSpan(self, span)

    def _close(self, span: Span) -> None:
        span.duration = time.perf_counter() - span._t0
        # tolerate out-of-order exits (exceptions unwinding): pop to span
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self.spans.append(span)

    def event(self, name: str, phase: str = "", **attrs) -> Span:
        """Record an instantaneous (zero-duration) span."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self._next_id, parent, name, phase or name,
                    attrs if attrs else None)
        self._next_id += 1
        span.duration = 0.0
        self.spans.append(span)
        return span

    @property
    def current_id(self) -> int | None:
        """Id of the innermost open span (merge target for workers)."""
        return self._stack[-1].span_id if self._stack else None

    # ------------------------------------------------------------------
    # cross-process support
    # ------------------------------------------------------------------
    def drain(self, worker: int | None = None) -> list[dict]:
        """Serialize and clear all closed spans (worker side)."""
        records = []
        for span in self.spans:
            if worker is not None and span.worker is None:
                span.worker = worker
            records.append(span.to_record())
        self.spans = []
        return records

    def merge(self, records: list[dict],
              parent_id: int | None = None) -> None:
        """Stitch drained worker records into this trace.

        Ids are remapped into this tracer's id space; records whose parent
        is not part of the batch (the worker's roots) are re-parented on
        *parent_id*.
        """
        id_map: dict[int, int] = {}
        for rec in records:
            id_map[rec["id"]] = self._next_id
            self._next_id += 1
        for rec in records:
            span = Span(id_map[rec["id"]],
                        id_map.get(rec.get("parent"), parent_id),
                        rec["name"], rec["phase"], dict(rec.get("attrs")
                                                        or {}))
            span.start = rec["start"]
            span.duration = rec["duration"]
            span.worker = rec.get("worker")
            self.spans.append(span)

    # ------------------------------------------------------------------
    def children_of(self, span_id: int) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def descendants_of(self, span_id: int) -> list[Span]:
        """Every span transitively below *span_id* (closed spans only)."""
        by_parent: dict[int | None, list[Span]] = {}
        for span in self.spans:
            by_parent.setdefault(span.parent_id, []).append(span)
        out: list[Span] = []
        todo = [span_id]
        while todo:
            for child in by_parent.get(todo.pop(), ()):
                out.append(child)
                todo.append(child.span_id)
        return out


class _NullSpan:
    """Shared do-nothing span/context-manager (the disabled path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer that records nothing; ``span()`` allocates nothing."""

    enabled = False
    spans: list = []
    current_id = None

    def span(self, name: str, phase: str = "", **attrs) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, phase: str = "", **attrs) -> _NullSpan:
        return NULL_SPAN

    def drain(self, worker: int | None = None) -> list:
        return []

    def merge(self, records, parent_id=None) -> None:
        pass

    def children_of(self, span_id: int) -> list:
        return []

    def descendants_of(self, span_id: int) -> list:
        return []


NULL_TRACER = NullTracer()
