"""Explainable candidate provenance.

Every :class:`~repro.analysis.model.CandidateVulnerability` already
carries the raw data-flow path the taint engine walked.  This module
turns that path into an *explained* decision trace: for each hop it
states what the engine concluded and why — the entry point is attacker
controlled, an assignment or concatenation propagated the taint, a
function call did **not** untaint because it is not a registered
sanitizer for the class, a validation guard was recorded as a symptom
(not as sanitization), the sink was reached, and finally what the
false-positive predictor decided and on which symptom vector.

This is the per-candidate analogue of WAP's false-positive justification
(Fig. 3): instead of explaining only why a candidate was *dismissed*, the
provenance explains why it was *kept* at every step.  The
``repro.tool.explain`` command renders it; ``Provenance.to_dict`` feeds
the JSON report.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.analysis.model import (
    STEP_ASSIGN,
    STEP_CALL,
    STEP_CONCAT,
    STEP_GUARD,
    STEP_PARAM,
    STEP_RETURN,
    STEP_SINK,
    STEP_SOURCE,
    CandidateVulnerability,
)

#: provenance event stages, in path order.
STAGE_SOURCE = "source"
STAGE_PROPAGATE = "propagate"
STAGE_GUARD = "guard"
STAGE_SINK = "sink"
STAGE_VERDICT = "verdict"


@dataclass(frozen=True)
class ProvenanceEvent:
    """One explained decision along a candidate's data-flow path."""

    stage: str
    detail: str
    line: int
    note: str = ""
    #: set when the hop happened in a *different* file than the candidate
    #: (cross-file flow through a resolved include); empty otherwise.
    file: str = ""

    def to_dict(self) -> dict:
        out = {"stage": self.stage, "detail": self.detail,
               "line": self.line, "note": self.note}
        if self.file:
            out["file"] = self.file
        return out


@dataclass(frozen=True)
class Provenance:
    """The full explained trace of one candidate (plus the verdict)."""

    vuln_class: str
    filename: str
    events: tuple[ProvenanceEvent, ...]
    verdict: str | None = None          # "real" | "false_positive" | None
    symptoms: tuple[str, ...] = ()
    votes: tuple[tuple[str, int], ...] = ()

    def to_dict(self) -> dict:
        return {
            "class": self.vuln_class,
            "file": self.filename,
            "verdict": self.verdict,
            "symptoms": list(self.symptoms),
            "votes": dict(self.votes),
            "events": [e.to_dict() for e in self.events],
        }

    def render(self) -> str:
        """Human-readable provenance (what ``explain`` prints)."""
        head = next((e for e in self.events if e.stage == STAGE_SINK), None)
        title = (f"{self.vuln_class} candidate at "
                 f"{self.filename}:{head.line if head else '?'}")
        lines = [title]
        for event in self.events:
            if event.file:
                where = f" ({event.file}:{event.line})"
            else:
                where = f" (line {event.line})" if event.line else ""
            note = f" — {event.note}" if event.note else ""
            lines.append(f"  {event.stage:>9}: {event.detail}"
                         f"{where}{note}")
        if self.verdict is not None:
            verdict = ("REAL vulnerability" if self.verdict == "real"
                       else "predicted FALSE POSITIVE")
            symptoms = ", ".join(self.symptoms) or "none"
            votes = ", ".join(f"{name}={'FP' if v else 'RV'}"
                              for name, v in self.votes)
            lines.append(f"    verdict: {verdict}")
            lines.append(f"             symptoms: {symptoms}")
            if votes:
                lines.append(f"             votes: {votes}")
        return "\n".join(lines)


def build_provenance(candidate: CandidateVulnerability,
                     prediction=None,
                     sanitizers: Iterable[str] = ()) -> Provenance:
    """Explain one candidate's path, decision by decision.

    Args:
        candidate: the flagged data flow.
        prediction: the predictor's
            :class:`~repro.mining.predictor.Prediction`, if available —
            contributes the verdict, symptom vector and classifier votes.
        sanitizers: the sanitization functions registered for the
            candidate's class; used to state, per call hop, that the
            function did *not* untaint (the §V-A ``escape`` scenario).
    """
    known = {s.lower() for s in sanitizers}
    cls = candidate.vuln_class
    events: list[ProvenanceEvent] = []
    for step in candidate.path:
        if step.kind == STEP_SOURCE:
            events.append(ProvenanceEvent(
                STAGE_SOURCE, f"read of {step.detail}", step.line,
                "attacker-controlled entry point — taint born here"))
        elif step.kind == STEP_ASSIGN:
            events.append(ProvenanceEvent(
                STAGE_PROPAGATE, f"assigned to {step.detail}", step.line,
                "taint propagated by assignment"))
        elif step.kind == STEP_CONCAT:
            events.append(ProvenanceEvent(
                STAGE_PROPAGATE, f"string built via {step.detail}",
                step.line,
                "concatenation keeps the payload attacker-controlled"))
        elif step.kind == STEP_CALL:
            name = step.detail.lower().rstrip("()")
            if name in known:
                note = (f"registered {cls} sanitizer — would untaint "
                        "(taint reached the sink by another hop)")
            else:
                note = (f"not a registered {cls} sanitizer — "
                        "taint preserved")
            events.append(ProvenanceEvent(
                STAGE_PROPAGATE, f"passed through {step.detail}()",
                step.line, note))
        elif step.kind == STEP_GUARD:
            events.append(ProvenanceEvent(
                STAGE_GUARD, f"validated by {step.detail}", step.line,
                "recorded as a symptom for the predictor, "
                "does not untaint"))
        elif step.kind == STEP_PARAM:
            events.append(ProvenanceEvent(
                STAGE_PROPAGATE, f"entered function as {step.detail}",
                step.line, "inter-procedural propagation into a callee"))
        elif step.kind == STEP_RETURN:
            events.append(ProvenanceEvent(
                STAGE_PROPAGATE, "returned to the caller", step.line,
                "inter-procedural propagation out of a callee"))
        elif step.kind == STEP_SINK:
            detail = f"reached sensitive sink {step.detail}"
            if candidate.tainted_args:
                args = ", ".join(str(i) for i in candidate.tainted_args)
                detail += f" (tainted argument {args})"
            events.append(ProvenanceEvent(
                STAGE_SINK, detail, step.line,
                f"{candidate.sink_kind} sink of class {cls} — "
                "candidate emitted"))
        else:  # future step kinds degrade gracefully
            events.append(ProvenanceEvent(
                STAGE_PROPAGATE, f"{step.kind}: {step.detail}", step.line))
        hop_file = getattr(step, "file", "")
        if hop_file and hop_file != candidate.filename:
            note = events[-1].note
            if step.kind in (STEP_PARAM, STEP_RETURN):
                # inter-procedural hops in a foreign file are replayed
                # from the dependency's function summary, not from
                # re-executing its body in the includer's analysis
                origin = ("replayed from the include closure's "
                          "composed function summary")
                note = f"{note}; {origin}" if note else origin
            events[-1] = replace(events[-1], file=hop_file, note=note)

    verdict = None
    symptoms: tuple[str, ...] = ()
    votes: tuple[tuple[str, int], ...] = ()
    if prediction is not None:
        verdict = ("false_positive" if prediction.is_false_positive
                   else "real")
        symptoms = tuple(sorted(prediction.symptoms))
        votes = tuple(sorted(prediction.votes.items()))
    return Provenance(cls, candidate.filename, tuple(events),
                      verdict, symptoms, votes)
