"""The ``--stats`` summary: phase-time breakdown and scan health.

:func:`build_scan_stats` distills a finished trace + metrics registry into
a :class:`ScanStats` value that the report renders as a footer:

* **wall phases** — the top-level sequential phases of the run
  (``discover`` → ``scan`` → ``predict`` ...) plus an explicit ``other``
  bucket for unattributed time, so the table always sums to the measured
  wall clock (the acceptance bound: within 10%).
* **per-file phases** — aggregate latency distributions (p50/p95/max) of
  the per-file stage spans (``lex``/``parse``/``taint``/``split``/
  ``predict``/cache accesses), summed across workers; under ``--jobs N``
  their total legitimately exceeds wall time — it is CPU time.
* **scan health** — slowest files, cache hit/miss/eviction counts, worker
  retries and crashes (file + exception class), parse errors with the
  first message.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: per-file stage span names aggregated into the CPU-time table.
FILE_PHASE_NAMES = ("lex", "parse", "lower", "taint", "split",
                    "predict_file", "cache_get", "cache_put")

#: how many slowest files the footer lists.
TOP_SLOWEST = 5


@dataclass(frozen=True)
class CacheStats:
    """Result-cache behaviour for one scan (telemetry-independent)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0

    @property
    def hit_rate(self) -> float:
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "puts": self.puts,
                "hit_rate": round(self.hit_rate, 4)}


@dataclass(frozen=True)
class PrefilterStats:
    """Relevance-prefilter tier counts for one scan (telemetry-independent).

    Produced by :mod:`repro.analysis.prefilter`: how many files the
    byte-level knowledge matcher classified into each tier.  ``skipped``
    files never touched the lex/parse/taint pipeline.
    """

    skipped: int = 0
    dep_only: int = 0
    sink_bearing: int = 0

    @property
    def total(self) -> int:
        return self.skipped + self.dep_only + self.sink_bearing

    @property
    def skip_rate(self) -> float:
        """Fraction of classified files that bypassed the pipeline
        entirely (dep-only files are parsed lazily, so they don't
        count as skipped)."""
        total = self.total
        return self.skipped / total if total else 0.0

    def to_dict(self) -> dict:
        return {"skipped": self.skipped, "dep_only": self.dep_only,
                "sink_bearing": self.sink_bearing,
                "skip_rate": round(self.skip_rate, 4)}


@dataclass
class ScanStats:
    """Everything the ``--stats`` footer shows, in structured form."""

    total_seconds: float = 0.0
    files: int = 0
    lines: int = 0
    workers: int = 0
    #: ordered (phase, seconds) rows summing to ``total_seconds``.
    wall_phases: list[tuple[str, float]] = field(default_factory=list)
    #: per-file stage name -> histogram summary dict.
    file_phases: dict[str, dict] = field(default_factory=dict)
    slowest_files: list[tuple[str, float]] = field(default_factory=list)
    cache: CacheStats | None = None
    worker_retries: list[tuple[str, str]] = field(default_factory=list)
    worker_crashes: list[tuple[str, str]] = field(default_factory=list)
    parse_errors: int = 0
    first_parse_error: tuple[str, str] | None = None
    #: files where statement-level recovery skipped damaged statements
    #: (still analyzed) and how many statements were dropped in total.
    parse_warnings: int = 0
    recovered_statements: int = 0
    #: include statements statically resolved / not resolvable.
    resolved_includes: int = 0
    unresolved_includes: int = 0
    #: AST/summary cache tiers.  Hits/misses come from the merged
    #: cross-process counters where available (workers publish them);
    #: puts are parent-side gauges.  ``reparse_avoided`` counts requests
    #: served from the in-memory AST memo without touching the disk tier.
    ast_cache_hits: int = 0
    ast_cache_misses: int = 0
    ast_cache_puts: int = 0
    reparse_avoided: int = 0
    summary_cache_hits: int = 0
    summary_cache_misses: int = 0
    summary_cache_puts: int = 0
    candidates: int = 0
    predicted_fp: int = 0
    #: relevance-prefilter tier counts (None when the prefilter was off).
    prefilter: PrefilterStats | None = None

    # ------------------------------------------------------------------
    @property
    def loc_per_second(self) -> float:
        return self.lines / self.total_seconds if self.total_seconds \
            else 0.0

    @property
    def fp_rate(self) -> float:
        return self.predicted_fp / self.candidates if self.candidates \
            else 0.0

    def to_dict(self) -> dict:
        return {
            "total_seconds": round(self.total_seconds, 6),
            "files": self.files,
            "lines": self.lines,
            "workers": self.workers,
            "loc_per_second": round(self.loc_per_second, 1),
            "wall_phases": [
                {"phase": name, "seconds": round(seconds, 6)}
                for name, seconds in self.wall_phases],
            "file_phases": self.file_phases,
            "slowest_files": [
                {"file": path, "seconds": round(seconds, 6)}
                for path, seconds in self.slowest_files],
            "cache": self.cache.to_dict() if self.cache else None,
            "worker_retries": [
                {"file": path, "error": error}
                for path, error in self.worker_retries],
            "worker_crashes": [
                {"file": path, "error": error}
                for path, error in self.worker_crashes],
            "parse_errors": self.parse_errors,
            "first_parse_error": (
                {"file": self.first_parse_error[0],
                 "error": self.first_parse_error[1]}
                if self.first_parse_error else None),
            "parse_warnings": self.parse_warnings,
            "recovered_statements": self.recovered_statements,
            "resolved_includes": self.resolved_includes,
            "unresolved_includes": self.unresolved_includes,
            "ast_cache": {"hits": self.ast_cache_hits,
                          "misses": self.ast_cache_misses,
                          "puts": self.ast_cache_puts,
                          "reparse_avoided": self.reparse_avoided},
            "summary_cache": {"hits": self.summary_cache_hits,
                              "misses": self.summary_cache_misses,
                              "puts": self.summary_cache_puts},
            "candidates": self.candidates,
            "predicted_false_positives": self.predicted_fp,
            "predictor_fp_rate": round(self.fp_rate, 4),
            "prefilter": self.prefilter.to_dict()
            if self.prefilter is not None else None,
        }

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The human ``--stats`` footer."""
        lines = ["== scan statistics",
                 f"   wall time: {self.total_seconds:.3f}s   "
                 f"files: {self.files}   lines: {self.lines}   "
                 f"throughput: {self.loc_per_second:,.0f} LoC/s   "
                 f"workers: {self.workers or 1}"]
        lines.append("   phase breakdown (wall):")
        for name, seconds in self.wall_phases:
            share = seconds / self.total_seconds * 100 \
                if self.total_seconds else 0.0
            lines.append(f"      {name:<10} {seconds:>9.4f}s  "
                         f"{share:>5.1f}%")
        if self.file_phases:
            lines.append("   per-file phases (CPU time across workers):")
            for name, summary in self.file_phases.items():
                lines.append(
                    f"      {name:<12} n={summary['count']:<5} "
                    f"sum={summary['sum']:.4f}s  "
                    f"p50={summary['p50'] * 1000:.2f}ms  "
                    f"p95={summary['p95'] * 1000:.2f}ms  "
                    f"max={summary['max'] * 1000:.2f}ms")
        if self.slowest_files:
            lines.append(f"   top-{len(self.slowest_files)} slowest files:")
            for path, seconds in self.slowest_files:
                lines.append(f"      {seconds:>9.4f}s  {path}")
        if self.cache is not None:
            lines.append(
                f"   cache: {self.cache.hits} hits, "
                f"{self.cache.misses} misses, "
                f"{self.cache.evictions} evictions, "
                f"{self.cache.puts} puts "
                f"(hit rate {self.cache.hit_rate * 100:.1f}%)")
        if self.prefilter is not None:
            lines.append(
                f"   prefilter: {self.prefilter.skipped} skipped, "
                f"{self.prefilter.dep_only} dep-only, "
                f"{self.prefilter.sink_bearing} sink-bearing "
                f"(skip rate {self.prefilter.skip_rate * 100:.1f}%)")
        if (self.ast_cache_hits or self.ast_cache_misses
                or self.ast_cache_puts or self.reparse_avoided):
            lines.append(
                f"   ast cache: {self.ast_cache_hits} hits, "
                f"{self.ast_cache_misses} misses, "
                f"{self.ast_cache_puts} puts, "
                f"{self.reparse_avoided} reparses avoided")
        if (self.summary_cache_hits or self.summary_cache_misses
                or self.summary_cache_puts):
            probes = self.summary_cache_hits + self.summary_cache_misses
            rate = self.summary_cache_hits / probes * 100 if probes else 0.0
            lines.append(
                f"   summary cache: {self.summary_cache_hits} hits, "
                f"{self.summary_cache_misses} misses, "
                f"{self.summary_cache_puts} puts "
                f"(hit rate {rate:.1f}%)")
        if self.worker_retries or self.worker_crashes:
            lines.append(
                f"   worker faults: {len(self.worker_retries)} isolated "
                f"retries, {len(self.worker_crashes)} crashes")
            for path, error in (self.worker_retries
                                + self.worker_crashes)[:TOP_SLOWEST]:
                lines.append(f"      {error}: {path}")
        if self.parse_errors:
            first = ""
            if self.first_parse_error:
                first = (f" (first: {self.first_parse_error[0]}: "
                         f"{self.first_parse_error[1]})")
            lines.append(f"   parse errors: {self.parse_errors}{first}")
        if self.parse_warnings:
            lines.append(
                f"   parse warnings: {self.parse_warnings} file(s), "
                f"{self.recovered_statements} damaged statement(s) "
                f"skipped by recovery")
        if self.resolved_includes or self.unresolved_includes:
            lines.append(
                f"   includes: {self.resolved_includes} resolved, "
                f"{self.unresolved_includes} unresolved")
        lines.append(
            f"   candidates: {self.candidates}   predicted FPs: "
            f"{self.predicted_fp} "
            f"(predictor FP rate {self.fp_rate * 100:.1f}%)")
        return "\n".join(lines)


def build_scan_stats(report, telemetry, root_span=None,
                     cache=None, retries=(), crashes=()) -> ScanStats:
    """Distill one run's trace + metrics + report into :class:`ScanStats`.

    Args:
        report: the :class:`~repro.tool.report.AnalysisReport` (duck-typed:
            ``files``, ``outcomes``, totals).
        telemetry: the run's :class:`~repro.telemetry.Telemetry`.
        root_span: the run's root span; wall phases are its direct
            children.  When omitted the first parentless span is used.
        cache: the :class:`~repro.analysis.pipeline.ResultCache`, if any.
        retries: (file, exception class) isolated-retry log.
        crashes: (file, exception class) crash log.
    """
    tracer = telemetry.tracer
    stats = ScanStats()
    stats.files = len(report.files)
    stats.lines = report.total_lines
    stats.candidates = len(report.outcomes)
    stats.predicted_fp = len(report.predicted_false_positives)

    if root_span is None:
        root_span = next((s for s in tracer.spans
                          if s.parent_id is None), None)
    if root_span is not None:
        stats.total_seconds = root_span.duration
        scoped = tracer.descendants_of(root_span.span_id)
        accounted = 0.0
        for child in tracer.children_of(root_span.span_id):
            stats.wall_phases.append((child.name, child.duration))
            accounted += child.duration
        stats.wall_phases.append(
            ("other", max(0.0, root_span.duration - accounted)))
        by_name: dict[str, list[float]] = {}
        workers = set()
        for span in scoped:
            if span.name in FILE_PHASE_NAMES:
                by_name.setdefault(span.name, []).append(span.duration)
            if span.worker is not None:
                workers.add(span.worker)
        stats.workers = len(workers)
        for name in FILE_PHASE_NAMES:
            durations = by_name.get(name)
            if durations:
                stats.file_phases[name] = _summarize(durations)

    stats.slowest_files = sorted(
        ((f.filename, f.seconds) for f in report.files),
        key=lambda item: -item[1])[:TOP_SLOWEST]
    if cache is not None:
        stats.cache = CacheStats(cache.hits, cache.misses,
                                 cache.evictions, cache.puts)
    stats.worker_retries = list(retries)
    stats.worker_crashes = list(crashes)
    stats.prefilter = getattr(report, "prefilter", None)
    failed = [f for f in report.files if f.parse_error]
    stats.parse_errors = len(failed)
    if failed:
        stats.first_parse_error = (failed[0].filename,
                                   failed[0].parse_error)
    for f in report.files:
        if getattr(f, "parse_warning", None):
            stats.parse_warnings += 1
        stats.recovered_statements += getattr(f, "recovered_statements", 0)
        stats.resolved_includes += getattr(f, "resolved_includes", 0)
        stats.unresolved_includes += getattr(f, "unresolved_includes", 0)

    metrics = telemetry.metrics
    if metrics.enabled:
        def _count(name: str) -> int:
            inst = metrics.counters.get(name)
            return int(inst.value) if inst else 0

        def _gauge(name: str) -> int:
            inst = metrics.gauges.get(name)
            return int(inst.value) if inst else 0

        # hits/misses: the counters are incremented in-process AND merged
        # back from workers, so they dominate the parent-side gauges in
        # parallel runs; max() keeps serial runs (where both agree) exact.
        stats.ast_cache_hits = max(_count("ast_cache_hit"),
                                   _gauge("ast_cache_hits"))
        stats.ast_cache_misses = _gauge("ast_cache_misses")
        stats.ast_cache_puts = _gauge("ast_cache_puts")
        stats.reparse_avoided = _count("frontend_reparse_avoided")
        stats.summary_cache_hits = max(_count("summary_cache_hit"),
                                       _gauge("summary_cache_hits"))
        stats.summary_cache_misses = max(_count("summary_cache_miss"),
                                         _gauge("summary_cache_misses"))
        stats.summary_cache_puts = _gauge("summary_cache_puts")
        metrics.gauge("loc_per_second").set(stats.loc_per_second)
        metrics.gauge("predictor_fp_rate").set(stats.fp_rate)
        if stats.cache is not None:
            metrics.gauge("cache_hit_rate").set(stats.cache.hit_rate)
    return stats


def _summarize(durations: list[float]) -> dict:
    ordered = sorted(durations)

    def pick(q: float) -> float:
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    return {"count": len(ordered), "sum": round(sum(ordered), 6),
            "p50": round(pick(0.50), 6), "p95": round(pick(0.95), 6),
            "max": round(ordered[-1], 6)}
