"""Pipeline metrics: counters, gauges and latency histograms.

A :class:`Metrics` registry is a flat namespace of named instruments:

* :class:`Counter` — monotonically increasing totals (files scanned,
  cache hits, worker crashes, candidates per class).
* :class:`Gauge` — last-value measurements (LoC/sec, predictor FP rate).
* :class:`Histogram` — latency distributions with p50/p95/max summaries
  (per-phase seconds).

Counters recorded inside analysis workers are shipped back with
:meth:`Metrics.drain_counters` and folded into the parent registry with
:meth:`Metrics.merge_counters` (gauges and histograms are parent-side
only: per-phase latencies travel as spans).  The :data:`NULL_METRICS`
registry hands out shared no-op instruments so disabled telemetry costs
nothing.
"""

from __future__ import annotations


class Counter:
    """Monotonic counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-value measurement."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Observation list with percentile summaries."""

    __slots__ = ("observations",)

    def __init__(self) -> None:
        self.observations: list[float] = []

    def observe(self, value: float) -> None:
        self.observations.append(value)

    @property
    def count(self) -> int:
        return len(self.observations)

    @property
    def total(self) -> float:
        return sum(self.observations)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the observations (0 <= q <= 1)."""
        if not self.observations:
            return 0.0
        ordered = sorted(self.observations)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "p50": round(self.percentile(0.50), 6),
            "p95": round(self.percentile(0.95), 6),
            "max": round(max(self.observations), 6)
            if self.observations else 0.0,
        }


class Metrics:
    """Registry of named instruments; instruments are created on demand."""

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter()
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge()
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram()
        return inst

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable dump of every instrument."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "gauges": {name: round(g.value, 6)
                       for name, g in sorted(self.gauges.items())},
            "histograms": {name: h.summary()
                           for name, h in sorted(self.histograms.items())},
        }

    # ------------------------------------------------------------------
    # cross-process support (worker counters only)
    # ------------------------------------------------------------------
    def drain_counters(self) -> dict[str, int]:
        """Serialize and clear the counters (worker side)."""
        out = {name: c.value for name, c in self.counters.items()
               if c.value}
        self.counters = {}
        return out

    def merge_counters(self, counters: dict[str, int] | None) -> None:
        """Fold drained worker counters into this registry."""
        for name, value in (counters or {}).items():
            self.counter(name).inc(value)


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()
    value = 0
    observations: list = []
    count = 0
    total = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def summary(self) -> dict:
        return {"count": 0, "sum": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}


NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Registry that records nothing."""

    enabled = False
    counters: dict = {}
    gauges: dict = {}
    histograms: dict = {}

    def counter(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def drain_counters(self) -> dict:
        return {}

    def merge_counters(self, counters) -> None:
        pass


NULL_METRICS = NullMetrics()
