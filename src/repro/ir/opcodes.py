"""The flat taint IR: opcodes, instructions and per-file modules.

The taint engine used to interpret the PHP AST directly: a 30-way
``isinstance`` dispatch per expression node, with guard extraction,
context strings and receiver descriptions recomputed on every visit (and
re-visited twice per loop).  :func:`repro.ir.lower.lower_program` performs
all of that *syntax-only* work exactly once, producing a linear array of
:class:`IRInstr` three-address instructions; the engine then runs its
abstract domain (taint sets, 2-iteration loop joins, guard recording) as
a tight integer-dispatch loop over the array.

Design rules:

* **Config independence.**  Lowering never consults a
  :class:`~repro.analysis.model.DetectorConfig`: which names are entry
  points, sources, sanitizers or sinks is decided at *run* time by the
  engine's merged tables.  That is what lets one lowered module be cached
  on disk next to its AST (same content hash, same ``ast-v<N>`` tier) and
  shared by every knowledge configuration.
* **Registers are static single-use slots.**  Every expression gets a
  fresh register at lowering time; register 0 is the constant EMPTY taint
  set.  Loop bodies re-execute their span and simply overwrite their
  registers.
* **Control flow is structured.**  ``IF``/``LOOP``/``SWITCH``/``TRY``
  instructions carry a meta object whose sub-spans the engine executes
  with exactly the env copies and joins the AST walker used; a ``JUMP``
  placed before each span region keeps the linear stream executable
  without the interpreter knowing about span layout.

The byte-identity of the engine's findings against the original AST
walker (kept as a reference implementation in
:mod:`repro.analysis.astwalk`) is pinned by the differential oracle test
suite over the grammar corpus and the demo application.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: bump together with :data:`repro.php.ast_store.AST_FORMAT`: lowered
#: modules are pickled into the same cache tier as the ASTs they mirror.
IR_FORMAT = 1

# ---------------------------------------------------------------------------
# opcodes
# ---------------------------------------------------------------------------
# reads (dst = taint set)
SOURCE = 1         # variable read: entry-point taint or env lookup
SOURCE_INDEX = 2   # array read $base[idx]: superglobal taint or env lookup
LOAD_KEY = 3       # property / static-property read via a storage key

# writes (dst = stored taint set)
ASSIGN = 4         # $x = v / compound $x .= v (extra carries compound)
ASSIGN_KEY = 5     # $obj->prop = v via a storage key
ASSIGN_STATIC = 6  # Cls::$prop = v (always overwrites)
APPEND = 7         # $arr[...] = v (unions into the whole array)
LIST_ASSIGN = 8    # list($a, $b) = v

# pure dataflow
STEP = 9           # dst = {t.step(kind, detail, line)} over src
CONCAT = 10        # dst = stepped-CONCAT union of operand registers
UNION = 11         # dst = plain union of operand registers
CALL_FOLD = 12     # dst = stepped-CALL union (dynamic call / new Cls)
CAST = 13          # dst = src, or EMPTY for configured untaint casts

# calls (dispatch against the runtime knowledge tables)
CALL = 14          # free function call
CALL_METHOD = 15   # $obj->m(...) (a = receiver register)
CALL_STATIC = 16   # Cls::m(...)

# effects
SINK = 17          # echo/print/exit/include/shell sink check on src
GUARD = 18         # apply recorded condition guards to the current env
RET = 19           # record return taints on the current frame
UNSET = 20         # drop variables from the env

# scoped sub-programs
CLOSURE = 21       # run a closure body in a fresh captured env
ARROW = 22         # run an arrow-function expression in an env copy

# structured control (extra = meta object, spans executed by the engine)
IF = 23
LOOP = 24
SWITCH = 25
TRY = 26
JUMP = 27          # linear skip over a span region: pc := a

#: opcode -> mnemonic, for disassembly and debugging.
OPNAMES = {
    SOURCE: "SOURCE", SOURCE_INDEX: "SOURCE_INDEX", LOAD_KEY: "LOAD_KEY",
    ASSIGN: "ASSIGN", ASSIGN_KEY: "ASSIGN_KEY",
    ASSIGN_STATIC: "ASSIGN_STATIC", APPEND: "APPEND",
    LIST_ASSIGN: "LIST_ASSIGN", STEP: "STEP", CONCAT: "CONCAT",
    UNION: "UNION", CALL_FOLD: "CALL_FOLD", CAST: "CAST", CALL: "CALL",
    CALL_METHOD: "CALL_METHOD", CALL_STATIC: "CALL_STATIC", SINK: "SINK",
    GUARD: "GUARD", RET: "RET", UNSET: "UNSET", CLOSURE: "CLOSURE",
    ARROW: "ARROW", IF: "IF", LOOP: "LOOP", SWITCH: "SWITCH", TRY: "TRY",
    JUMP: "JUMP",
}

#: a half-open ``[start, end)`` index range into a module's code array.
Span = tuple[int, int]


@dataclass(slots=True)
class IRInstr:
    """One three-address instruction.

    Field use varies per opcode (documented next to each opcode above):
    ``dst``/``a`` are register numbers (``a`` doubles as the jump target
    for ``JUMP``), ``name`` is the interned variable/function/sink name,
    ``line`` the source line, and ``extra`` the per-opcode payload
    (operand register tuples, precomputed context strings, control-flow
    meta objects).
    """

    op: int
    dst: int = 0
    a: int = 0
    name: str = ""
    line: int = 0
    extra: object = None


@dataclass(slots=True)
class IfMeta:
    """``IF``: branch spans plus everything the merge logic needs."""

    line: int
    cond_guards: tuple          # ((key, guard_func), ...) of the if-cond
    then_span: Span
    #: ((cond_span, body_span), ...) — conds run in the parent env.
    elifs: tuple
    else_span: Span | None
    then_terminates: bool
    exit_kind: str | None       # "exit" / "return" / "error" / None


@dataclass(slots=True)
class LoopMeta:
    """``LOOP``: while/do-while/for/foreach bodies (2-iteration join)."""

    kind: str                   # "while" | "dowhile" | "for" | "foreach"
    line: int
    body_span: Span
    cond_span: Span | None = None    # while/do-while condition
    step_span: Span | None = None    # for-loop step expressions
    subject: int = 0                 # foreach: register of the iterable
    value_names: tuple = ()          # foreach: value-target variable names
    key_name: str | None = None      # foreach: key-target variable name


@dataclass(slots=True)
class SwitchMeta:
    """``SWITCH``: (test_span | None, body_span) per case, in order."""

    cases: tuple


@dataclass(slots=True)
class TryMeta:
    """``TRY``: catch body spans (the try body itself runs inline)."""

    catch_spans: tuple


@dataclass(slots=True)
class IRFunction:
    """One lowered function/method body."""

    name: str                   # lowercase; "cls::method" for methods
    param_names: tuple          # declared parameter names, in order
    span: Span                  # body instructions
    line: int                   # declaration line


@dataclass(slots=True)
class IRModule:
    """The lowered form of one parsed file.

    ``functions`` preserves the declaration-collection order and aliasing
    of the AST walker: methods appear both as ``cls::name`` and under
    their bare name (first declaration wins), and aliases share one
    :class:`IRFunction`.
    """

    code: list = field(default_factory=list)
    top_span: Span = (0, 0)
    functions: dict = field(default_factory=dict)
    n_regs: int = 1
    version: int = IR_FORMAT


def disassemble(module: IRModule) -> str:
    """Human-readable listing (debugging and the IR docs examples)."""
    lines = [f"module: {len(module.code)} instrs, "
             f"{module.n_regs} regs, top={module.top_span}"]
    for name, fn in module.functions.items():
        lines.append(f"  func {name}{fn.param_names} @ {fn.span}")
    for i, instr in enumerate(module.code):
        extra = "" if instr.extra is None else f" extra={instr.extra!r}"
        lines.append(
            f"  {i:4d}: {OPNAMES.get(instr.op, instr.op):<13}"
            f" dst=r{instr.dst} a={instr.a} name={instr.name!r}"
            f" line={instr.line}{extra}")
    return "\n".join(lines)
