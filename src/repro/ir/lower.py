"""One-pass AST -> flat IR lowering for the taint engine.

:func:`lower_program` walks a parsed file exactly once and emits the
linear instruction stream described in :mod:`repro.ir.opcodes`.  The
lowering is a statement-for-statement, expression-for-expression mirror
of the original AST walker (kept as the reference implementation in
:mod:`repro.analysis.astwalk`): instruction order IS the walker's
evaluation order, so env mutations, guard applications and sink checks
happen in precisely the same sequence and the engine's findings stay
byte-identical.

Everything that depends only on *syntax* is precomputed here, once per
unique file content instead of once per visit:

* condition guards (:func:`extract_guards`), including the isset/empty
  forms and superglobal-read keys;
* sink context strings (:func:`expr_context` / :func:`context_text`)
  mined by the false-positive predictor;
* receiver descriptions for method-sink hint matching;
* property/static-property storage keys and superglobal descriptors;
* branch-termination facts (``if (!valid($x)) exit;`` handling);
* lowercased call names, with :func:`sys.intern` applied to every name
  that ends up as a dict key at run time.

What is deliberately **not** decided here: whether a name is an entry
point, source, sanitizer or sink.  Those live in the engine's merged
config tables and are resolved per instruction at run time, keeping
lowered modules config-independent and therefore cacheable purely by
content hash (see ``docs/ir.md``).
"""

from __future__ import annotations

from sys import intern

from repro.php import ast
from repro.ir.opcodes import (
    APPEND,
    ARROW,
    ASSIGN,
    ASSIGN_KEY,
    ASSIGN_STATIC,
    CALL,
    CALL_FOLD,
    CALL_METHOD,
    CALL_STATIC,
    CAST,
    CLOSURE,
    CONCAT,
    GUARD,
    IF,
    JUMP,
    LIST_ASSIGN,
    LOAD_KEY,
    LOOP,
    RET,
    SINK,
    SOURCE,
    SOURCE_INDEX,
    STEP,
    SWITCH,
    TRY,
    UNION,
    UNSET,
    IfMeta,
    IRFunction,
    IRInstr,
    IRModule,
    LoopMeta,
    Span,
    SwitchMeta,
    TryMeta,
)

#: step-kind literal for ``.=`` (mirrors ``model.STEP_CONCAT`` without
#: importing the analysis layer from the IR package).
_KIND_CONCAT = "concat"

_TERMINATORS = (ast.Return, ast.Throw, ast.Break, ast.Continue)


def lower_program(program: ast.Program) -> IRModule:
    """Lower one parsed file to its flat IR module."""
    return _Lowerer().lower(program)


def lower_function(decl) -> tuple[IRModule, IRFunction]:
    """Lower a single foreign function/method declaration.

    Used for cross-file declarations handed to the engine as raw AST
    nodes (the :class:`~repro.analysis.project.ProjectAnalyzer` path);
    nested declarations are *not* collected — calls from the body resolve
    through the analyzing run's own tables, exactly like the walker.
    """
    lw = _Lowerer()
    start = len(lw.code)
    for stmt in (decl.body or []):
        lw._stmt(stmt)
    name = decl.name.lower() if isinstance(decl.name, str) else "?"
    fn = IRFunction(intern(name),
                    tuple(p.name for p in decl.params),
                    (start, len(lw.code)), decl.line)
    module = IRModule(lw.code, (0, 0), {fn.name: fn}, lw.n_regs)
    return module, fn


class _Lowerer:
    """Single-use lowering state for one program."""

    def __init__(self) -> None:
        self.code: list[IRInstr] = []
        self.n_regs = 1          # register 0 is the constant EMPTY set
        self.decls: dict = {}    # name -> FunctionDecl/MethodDecl

    # ------------------------------------------------------------------
    def lower(self, program: ast.Program) -> IRModule:
        self._collect(program.body)
        start = len(self.code)
        for stmt in program.body:
            self._stmt(stmt)
        top_span = (start, len(self.code))
        functions: dict = {}
        lowered: dict[int, IRFunction] = {}   # id(decl) -> shared body
        for name, decl in self.decls.items():
            fn = lowered.get(id(decl))
            if fn is None:
                body_start = len(self.code)
                for stmt in (decl.body or []):
                    self._stmt(stmt)
                fn = IRFunction(intern(name),
                                tuple(p.name for p in decl.params),
                                (body_start, len(self.code)), decl.line)
                lowered[id(decl)] = fn
            functions[intern(name)] = fn
        return IRModule(self.code, top_span, functions, self.n_regs)

    # ------------------------------------------------------------------
    # declaration collection (mirrors the walker: one control level deep)
    # ------------------------------------------------------------------
    def _collect(self, body) -> None:
        for node in body:
            if isinstance(node, ast.FunctionDecl):
                self.decls.setdefault(node.name.lower(), node)
                self._collect(node.body)
            elif isinstance(node, ast.ClassDecl):
                for member in node.members:
                    if isinstance(member, ast.MethodDecl) and member.body:
                        key = f"{node.name.lower()}::{member.name.lower()}"
                        self.decls.setdefault(key, member)
                        # loose resolution by bare method name as fallback
                        self.decls.setdefault(member.name.lower(), member)
            elif isinstance(node, (ast.Block, ast.If, ast.While,
                                   ast.DoWhile, ast.For, ast.Foreach,
                                   ast.Switch, ast.Try, ast.NamespaceDecl)):
                for child in node.children():
                    if isinstance(child, (ast.FunctionDecl, ast.ClassDecl)):
                        self._collect([child])

    # ------------------------------------------------------------------
    # emission primitives
    # ------------------------------------------------------------------
    def _reg(self) -> int:
        r = self.n_regs
        self.n_regs += 1
        return r

    def _emit(self, op: int, dst: int = 0, a: int = 0, name: str = "",
              line: int = 0, extra=None) -> None:
        self.code.append(IRInstr(op, dst, a, name, line, extra))

    def _emit_jump(self) -> int:
        """Emit a JUMP over a span region; patch the target later."""
        self.code.append(IRInstr(JUMP))
        return len(self.code) - 1

    def _patch_jump(self, index: int) -> None:
        self.code[index].a = len(self.code)

    def _span(self, body) -> Span:
        start = len(self.code)
        for stmt in body:
            self._stmt(stmt)
        return (start, len(self.code))

    def _guarded_span(self, body, guards: tuple, line: int) -> Span:
        start = len(self.code)
        if guards:
            self._emit(GUARD, line=line, extra=guards)
        for stmt in body:
            self._stmt(stmt)
        return (start, len(self.code))

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _stmt(self, node) -> None:  # noqa: C901
        if isinstance(node, (ast.InlineHTML, ast.FunctionDecl,
                             ast.ClassDecl, ast.UseDecl, ast.ConstStatement,
                             ast.Global, ast.StaticVarDecl,
                             ast.Goto, ast.Label)):
            return
        if isinstance(node, ast.NamespaceDecl):
            if node.body:
                for stmt in node.body:
                    self._stmt(stmt)
            return
        if isinstance(node, ast.ExpressionStatement):
            self._expr(node.expr)
            return
        if isinstance(node, ast.Echo):
            for expr in node.exprs:
                value = self._expr(expr)
                self._emit(SINK, a=value, name="echo", line=node.line,
                           extra=("echo", expr_context(expr)))
            return
        if isinstance(node, ast.Block):
            for stmt in node.body:
                self._stmt(stmt)
            return
        if isinstance(node, ast.If):
            self._lower_if(node)
            return
        if isinstance(node, (ast.While, ast.DoWhile)):
            jump = self._emit_jump()
            cond_start = len(self.code)
            self._expr(node.cond)
            cond_span = (cond_start, len(self.code))
            body_span = self._span(node.body)
            self._patch_jump(jump)
            kind = "dowhile" if isinstance(node, ast.DoWhile) else "while"
            self._emit(LOOP, line=node.line,
                       extra=LoopMeta(kind, node.line, body_span,
                                      cond_span=cond_span))
            return
        if isinstance(node, ast.For):
            for expr in node.init:
                self._expr(expr)
            for expr in node.cond:
                self._expr(expr)
            jump = self._emit_jump()
            body_span = self._span(node.body)
            step_start = len(self.code)
            for expr in node.step:
                self._expr(expr)
            step_span = (step_start, len(self.code))
            self._patch_jump(jump)
            self._emit(LOOP, line=node.line,
                       extra=LoopMeta("for", node.line, body_span,
                                      step_span=step_span))
            return
        if isinstance(node, ast.Foreach):
            subject = self._expr(node.subject)
            value_names: list[str] = []
            if isinstance(node.value_var, ast.Variable):
                value_names.append(node.value_var.name)
            elif isinstance(node.value_var, ast.ListAssign):
                # foreach ($rows as list($a, $b)) destructuring
                for target in node.value_var.targets:
                    if isinstance(target, ast.Variable):
                        value_names.append(target.name)
            elif isinstance(node.value_var, ast.ArrayLiteral):
                # foreach ($rows as [$a, $b]) destructuring
                for item in node.value_var.items:
                    if isinstance(item.value, ast.Variable):
                        value_names.append(item.value.name)
            key_name = node.key_var.name \
                if isinstance(node.key_var, ast.Variable) else None
            jump = self._emit_jump()
            body_span = self._span(node.body)
            self._patch_jump(jump)
            self._emit(LOOP, line=node.line,
                       extra=LoopMeta("foreach", node.line, body_span,
                                      subject=subject,
                                      value_names=tuple(
                                          intern(n) for n in value_names),
                                      key_name=key_name))
            return
        if isinstance(node, ast.Switch):
            self._expr(node.subject)
            jump = self._emit_jump()
            cases = []
            for case in node.cases:
                test_span = None
                if case.test is not None:
                    test_start = len(self.code)
                    self._expr(case.test)
                    test_span = (test_start, len(self.code))
                cases.append((test_span, self._span(case.body)))
            self._patch_jump(jump)
            self._emit(SWITCH, extra=SwitchMeta(tuple(cases)))
            return
        if isinstance(node, ast.Return):
            if node.expr is not None:
                value = self._expr(node.expr)
                self._emit(RET, a=value, line=node.line)
            return
        if isinstance(node, ast.Unset):
            names = tuple(intern(var.name) for var in node.vars
                          if isinstance(var, ast.Variable))
            if names:
                self._emit(UNSET, extra=names)
            return
        if isinstance(node, ast.Throw):
            if node.expr is not None:
                self._expr(node.expr)
            return
        if isinstance(node, ast.Try):
            for stmt in node.body:       # try body runs on the live env
                self._stmt(stmt)
            jump = self._emit_jump()
            catch_spans = tuple(self._span(catch.body)
                                for catch in node.catches)
            self._patch_jump(jump)
            self._emit(TRY, extra=TryMeta(catch_spans))
            if node.finally_body:
                for stmt in node.finally_body:
                    self._stmt(stmt)
            return
        if isinstance(node, (ast.Break, ast.Continue)):
            return
        # any other statement-ish node: evaluate it as an expression
        self._expr(node)

    def _lower_if(self, node: ast.If) -> None:
        self._expr(node.cond)
        guards = tuple(extract_guards(node.cond))
        jump = self._emit_jump()
        then_span = self._guarded_span(node.then, guards, node.line)
        elifs = []
        for cond, body in node.elifs:
            cond_start = len(self.code)
            self._expr(cond)
            cond_span = (cond_start, len(self.code))
            branch_guards = tuple(extract_guards(cond))
            elifs.append((cond_span,
                          self._guarded_span(body, branch_guards,
                                             node.line)))
        else_span = self._span(node.otherwise) \
            if node.otherwise is not None else None
        self._patch_jump(jump)
        self._emit(IF, line=node.line,
                   extra=IfMeta(node.line, guards, then_span,
                                tuple(elifs), else_span,
                                terminates(node.then),
                                terminator_kind(node.then)))

    # ------------------------------------------------------------------
    # expressions (return the result register; 0 is the EMPTY constant)
    # ------------------------------------------------------------------
    def _expr(self, node) -> int:  # noqa: C901
        if node is None or isinstance(node, (ast.Literal, ast.ConstFetch,
                                             ast.ClassConstAccess)):
            return 0
        if isinstance(node, ast.Variable):
            dst = self._reg()
            self._emit(SOURCE, dst=dst, name=intern(node.name),
                       line=node.line, extra=intern("$" + node.name))
            return dst
        if isinstance(node, ast.ArrayAccess):
            return self._lower_array_read(node)
        if isinstance(node, ast.PropertyAccess):
            if node.name and isinstance(node.name, ast.Node):
                self._expr(node.name)
            key = property_key(node)
            if key is not None:
                dst = self._reg()
                self._emit(LOAD_KEY, dst=dst, name=intern(key))
                return dst
            return self._expr(node.obj)
        if isinstance(node, ast.StaticPropertyAccess):
            key = f"{node.cls if isinstance(node.cls, str) else '?'}" \
                  f"::${node.name}"
            dst = self._reg()
            self._emit(LOAD_KEY, dst=dst, name=intern(key))
            return dst
        if isinstance(node, ast.InterpolatedString):
            regs = tuple(self._expr(p) for p in node.parts
                         if not isinstance(p, ast.Literal))
            if not regs:
                return 0
            dst = self._reg()
            self._emit(CONCAT, dst=dst, name="interpolation",
                       line=node.line, extra=regs)
            return dst
        if isinstance(node, ast.ShellExec):
            regs = tuple(self._expr(p) for p in node.parts
                         if not isinstance(p, ast.Literal))
            tmp = self._reg()
            self._emit(UNION, dst=tmp, extra=regs)
            self._emit(SINK, a=tmp, name="shell_exec", line=node.line,
                       extra=("shell", ""))
            return 0
        if isinstance(node, ast.Assign):
            return self._lower_assign(node)
        if isinstance(node, ast.ListAssign):
            value = self._expr(node.value)
            names = tuple(intern(t.name) for t in node.targets
                          if isinstance(t, ast.Variable))
            if names:
                self._emit(LIST_ASSIGN, a=value, line=node.line,
                           extra=names)
            return value
        if isinstance(node, ast.BinaryOp):
            left = self._expr(node.left)
            right = self._expr(node.right)
            if node.op == ".":
                dst = self._reg()
                self._emit(CONCAT, dst=dst, name=".", line=node.line,
                           extra=(left, right))
                return dst
            if node.op == "??":
                dst = self._reg()
                self._emit(UNION, dst=dst, extra=(left, right))
                return dst
            # arithmetic coerces to numbers, comparisons/logic to bools:
            # both neutralize taint, so no instruction is needed
            return 0
        if isinstance(node, (ast.UnaryOp, ast.IncDec)):
            self._expr(node.operand)
            return 0
        if isinstance(node, ast.Cast):
            value = self._expr(node.expr)
            dst = self._reg()
            self._emit(CAST, dst=dst, a=value, name=intern(node.to))
            return dst
        if isinstance(node, ast.Ternary):
            self._expr(node.cond)
            # short ternary `?:` re-evaluates the condition as the value,
            # exactly like the walker did
            then = self._expr(node.then) if node.then is not None \
                else self._expr(node.cond)
            other = self._expr(node.otherwise)
            dst = self._reg()
            self._emit(UNION, dst=dst, extra=(then, other))
            return dst
        if isinstance(node, ast.ErrorSuppress):
            return self._expr(node.expr)
        if isinstance(node, (ast.Isset, ast.Empty, ast.InstanceOf)):
            for child in node.children():
                self._expr(child)
            return 0
        if isinstance(node, ast.PrintExpr):
            value = self._expr(node.expr)
            self._emit(SINK, a=value, name="print", line=node.line,
                       extra=("echo", ""))
            return 0
        if isinstance(node, ast.ExitExpr):
            if node.expr is not None:
                value = self._expr(node.expr)
                self._emit(SINK, a=value, name="exit", line=node.line,
                           extra=("echo", ""))
            return 0
        if isinstance(node, ast.Include):
            value = self._expr(node.expr)
            self._emit(SINK, a=value, name=intern(node.kind),
                       line=node.line, extra=("include", ""))
            return 0
        if isinstance(node, ast.ArrayLiteral):
            regs = [self._expr(item.value) for item in node.items]
            regs += [self._expr(item.key) for item in node.items
                     if item.key is not None]
            if not regs:
                return 0
            dst = self._reg()
            self._emit(UNION, dst=dst, extra=tuple(regs))
            return dst
        if isinstance(node, ast.FunctionCall):
            arg_regs = tuple(self._expr(a.value) for a in node.args)
            if not isinstance(node.name, str):
                self._expr(node.name)
                if not arg_regs:
                    return 0
                dst = self._reg()
                self._emit(CALL_FOLD, dst=dst, name="dynamic_call",
                           line=node.line, extra=arg_regs)
                return dst
            dst = self._reg()
            self._emit(CALL, dst=dst,
                       name=intern(node.name.lower().lstrip("\\")),
                       line=node.line,
                       extra=(arg_regs, context_text(node.args)))
            return dst
        if isinstance(node, ast.MethodCall):
            obj = self._expr(node.obj)
            arg_regs = tuple(self._expr(a.value) for a in node.args)
            if not isinstance(node.name, str):
                dst = self._reg()
                self._emit(UNION, dst=dst, extra=(obj,) + arg_regs)
                return dst
            dst = self._reg()
            self._emit(CALL_METHOD, dst=dst, a=obj,
                       name=intern(node.name.lower()), line=node.line,
                       extra=(arg_regs, intern(receiver_text(node.obj)),
                              context_text(node.args)))
            return dst
        if isinstance(node, ast.StaticCall):
            arg_regs = tuple(self._expr(a.value) for a in node.args)
            if not isinstance(node.name, str):
                if not arg_regs:
                    return 0
                dst = self._reg()
                self._emit(UNION, dst=dst, extra=arg_regs)
                return dst
            cls = node.cls.lower() if isinstance(node.cls, str) else "?"
            dst = self._reg()
            self._emit(CALL_STATIC, dst=dst,
                       name=intern(node.name.lower()), line=node.line,
                       extra=(arg_regs, intern(cls),
                              context_text(node.args)))
            return dst
        if isinstance(node, ast.New):
            arg_regs = tuple(self._expr(a.value) for a in node.args)
            if not arg_regs:
                return 0
            cls = node.cls if isinstance(node.cls, str) else "?"
            dst = self._reg()
            self._emit(CALL_FOLD, dst=dst, name=intern(f"new {cls}"),
                       line=node.line, extra=arg_regs)
            return dst
        if isinstance(node, ast.Clone):
            return self._expr(node.expr)
        if isinstance(node, ast.Closure):
            if node.is_arrow:
                # arrow functions capture the enclosing scope implicitly;
                # their body is one expression, run in a scope copy
                body = node.body[0]
                expr = body.expr if isinstance(body, ast.Return) else body
                jump = self._emit_jump()
                start = len(self.code)
                result = self._expr(expr)
                span = (start, len(self.code))
                self._patch_jump(jump)
                dst = self._reg()
                self._emit(ARROW, dst=dst, a=result, extra=span)
                return dst
            uses = tuple(intern(name) for name, _ in node.uses)
            jump = self._emit_jump()
            span = self._span(node.body)
            self._patch_jump(jump)
            self._emit(CLOSURE, extra=(uses, span))
            return 0
        if isinstance(node, ast.Match):
            self._expr(node.subject)
            regs = []
            for arm in node.arms:
                for cond in arm.conditions or []:
                    self._expr(cond)
                regs.append(self._expr(arm.body))
            if not regs:
                return 0
            dst = self._reg()
            self._emit(UNION, dst=dst, extra=tuple(regs))
            return dst
        if isinstance(node, ast.VariableVariable):
            if node.expr is not None:
                self._expr(node.expr)
            return 0
        # fallback: evaluate children, propagate nothing
        for child in node.children():
            self._expr(child)
        return 0

    # ------------------------------------------------------------------
    def _lower_array_read(self, node: ast.ArrayAccess) -> int:
        if node.index is not None:
            self._expr(node.index)
        base = node.base
        if isinstance(base, ast.Variable):
            key = None
            if isinstance(node.index, ast.Literal):
                key = str(node.index.value).lower()
            desc = entry_point_desc(base.name, node.index)
            dst = self._reg()
            self._emit(SOURCE_INDEX, dst=dst, name=intern(base.name),
                       line=node.line, extra=(key, intern(desc)))
            return dst
        return self._expr(base)

    def _lower_assign(self, node: ast.Assign) -> int:
        value = self._expr(node.value)
        if node.op in (".=",):
            tmp = self._reg()
            self._emit(STEP, dst=tmp, a=value, name=".=", line=node.line,
                       extra=_KIND_CONCAT)
            value = tmp
        target = node.target
        if isinstance(target, ast.Variable):
            dst = self._reg()
            self._emit(ASSIGN, dst=dst, a=value,
                       name=intern(target.name), line=node.line,
                       extra=(intern(f"${target.name}"), node.op != "="))
            return dst
        if isinstance(target, ast.ArrayAccess):
            if target.index is not None:
                self._expr(target.index)
            base = target.base
            if isinstance(base, ast.Variable):
                dst = self._reg()
                self._emit(APPEND, dst=dst, a=value,
                           name=intern(base.name), line=node.line,
                           extra=intern(f"${base.name}[]"))
                return dst
            self._expr(base)
            return value
        key = property_key(target) \
            if isinstance(target, ast.PropertyAccess) else None
        if key is not None:
            dst = self._reg()
            self._emit(ASSIGN_KEY, dst=dst, a=value, name=intern(key),
                       line=node.line, extra=node.op != "=")
            return dst
        if isinstance(target, ast.StaticPropertyAccess):
            skey = f"{target.cls if isinstance(target.cls, str) else '?'}" \
                   f"::${target.name}"
            dst = self._reg()
            self._emit(ASSIGN_STATIC, dst=dst, a=value,
                       name=intern(skey), line=node.line)
            return dst
        return value


# ---------------------------------------------------------------------------
# syntax-only helpers (shared with the engine's runtime via re-export)
# ---------------------------------------------------------------------------

def extract_guards(cond) -> list[tuple[str, str]]:
    """Collect (key, guard-function) pairs from a condition.

    Keys are plain variable names, or entry-point descriptions such as
    ``$_GET['n']`` when the guard applies directly to a superglobal read.
    Guards are validation calls such as ``is_numeric($x)`` or
    ``preg_match('/^\\d+$/', $x)``; also ``isset``/``empty`` checks.  They
    are recorded as path symptoms, never as sanitization.
    """
    guards: list[tuple[str, str]] = []
    if cond is None:
        return guards
    for node in cond.walk():
        if isinstance(node, ast.FunctionCall) and \
                isinstance(node.name, str):
            # every call on a variable in a condition is recorded: known
            # validation functions become static symptoms, anything else
            # is only visible through the dynamic-symptom map (§III-B2)
            name = node.name.lower()
            for arg in node.args:
                for key in _guard_keys(arg.value):
                    guards.append((key, name))
        elif isinstance(node, ast.Isset):
            for var_node in node.vars:
                for key in _guard_keys(var_node):
                    guards.append((key, "isset"))
        elif isinstance(node, ast.Empty):
            for key in _guard_keys(node.expr):
                guards.append((key, "empty"))
    return guards


def _guard_keys(node) -> list[str]:
    """Guardable keys inside an expression: vars + superglobal reads."""
    if node is None:
        return []
    keys: list[str] = []
    for n in node.walk():
        if isinstance(n, ast.Variable):
            keys.append(n.name)
        elif isinstance(n, ast.ArrayAccess) and \
                isinstance(n.base, ast.Variable) and \
                n.base.name.startswith("_"):
            keys.append(entry_point_desc(n.base.name, n.index))
    return keys


def entry_point_desc(base_name: str, index) -> str:
    """Canonical description of a superglobal read, e.g. ``$_GET['id']``."""
    if isinstance(index, ast.Literal):
        return f"${base_name}['{index.value}']"
    return f"${base_name}[...]"


def property_key(node: ast.PropertyAccess) -> str | None:
    """Key for property taint storage: ``$obj->prop`` -> ``obj->prop``."""
    if not isinstance(node.name, str):
        return None
    if isinstance(node.obj, ast.Variable):
        return f"{node.obj.name}->{node.name}"
    if isinstance(node.obj, ast.PropertyAccess):
        inner = property_key(node.obj)
        if inner is not None:
            return f"{inner}->{node.name}"
    return None


def receiver_text(node) -> str:
    """Loose textual description of a method receiver for hint matching."""
    if isinstance(node, ast.Variable):
        return node.name.lower()
    if isinstance(node, ast.PropertyAccess):
        name = node.name if isinstance(node.name, str) else ""
        return f"{receiver_text(node.obj)}->{name}".lower()
    if isinstance(node, ast.MethodCall):
        name = node.name if isinstance(node.name, str) else ""
        return f"{receiver_text(node.obj)}.{name}()".lower()
    if isinstance(node, ast.New):
        cls = node.cls if isinstance(node.cls, str) else ""
        return f"new:{cls}".lower()
    if isinstance(node, ast.FunctionCall) and isinstance(node.name, str):
        return f"{node.name}()".lower()
    return ""


def terminates(body) -> bool:
    """Does this branch unconditionally leave the enclosing flow?"""
    for stmt in body:
        if isinstance(stmt, _TERMINATORS):
            return True
        if isinstance(stmt, ast.ExpressionStatement) and \
                isinstance(stmt.expr, ast.ExitExpr):
            return True
    return False


def terminator_kind(body) -> str | None:
    """Name of the terminator ending a guard branch (``exit``/``error``)."""
    for stmt in body:
        if isinstance(stmt, ast.ExpressionStatement) and \
                isinstance(stmt.expr, ast.ExitExpr):
            return "exit"
        if isinstance(stmt, ast.Return):
            return "return"
        if isinstance(stmt, ast.Throw):
            return "error"
    return None


def expr_context(expr) -> str:
    """Approximate the literal text around tainted data in an expression.

    Literal string fragments are kept verbatim; every non-literal part is
    replaced by the placeholder ``§``.  The false-positive predictor
    mines this for the SQL-query symptoms of Table I (FROM clause,
    aggregate functions, complex queries, numeric entry points).
    """
    if expr is None:
        return ""
    if isinstance(expr, ast.Literal):
        return str(expr.value) if expr.kind == "string" else "§"
    if isinstance(expr, ast.InterpolatedString):
        return "".join(expr_context(p) for p in expr.parts)
    if isinstance(expr, ast.BinaryOp) and expr.op == ".":
        return expr_context(expr.left) + expr_context(expr.right)
    if isinstance(expr, ast.Assign):
        return expr_context(expr.value)
    if isinstance(expr, ast.ErrorSuppress):
        return expr_context(expr.expr)
    return "§"


def context_text(args) -> str:
    return " ".join(expr_context(a.value) for a in args)
