"""Flat opcode IR for the taint engine.

:mod:`repro.ir.opcodes` defines the instruction set and module
containers; :mod:`repro.ir.lower` compiles a parsed PHP file into them
in one pass.  The taint engine (:mod:`repro.analysis.engine`) interprets
lowered modules; the original AST walker survives as the differential
oracle in :mod:`repro.analysis.astwalk`.
"""

from repro.ir.lower import lower_function, lower_program  # noqa: F401
from repro.ir.opcodes import (  # noqa: F401
    IR_FORMAT,
    IRFunction,
    IRInstr,
    IRModule,
    disassemble,
)
