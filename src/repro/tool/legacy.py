"""Deprecation shims for the pre-consolidation command surfaces.

Before the single ``wape`` entry point grew subcommands, the tool shipped
four invocation surfaces: the flag-style ``wape [flags]``, the separate
``wape-explain`` executable, and their module spellings ``python -m
repro.tool.cli`` / ``python -m repro.tool.explain``.  All four keep
working for one release: they print a one-line pointer to the new
spelling on stderr (stdout stays clean — scripted consumers parse it)
and dispatch to the unchanged implementations.
"""

from __future__ import annotations

import sys
import warnings


def _notice(old: str, new: str) -> None:
    # stderr pointer for humans watching the terminal, plus a real
    # DeprecationWarning so test suites and `-W error` runs catch
    # lingering callers before the shims are removed
    print(f"note: `{old}` is deprecated; use `{new}`", file=sys.stderr)
    warnings.warn(
        f"`{old}` is deprecated and will be removed in the next release; "
        f"use `{new}`",
        DeprecationWarning, stacklevel=3)


def wape_main(argv: list[str] | None = None) -> int:
    """The historical flag-style ``wape`` console script."""
    _notice("wape [flags]", "wape scan [flags]")
    from repro.tool.cli import main
    return main(argv)


def explain_main(argv: list[str] | None = None) -> int:
    """The historical ``wape-explain`` console script."""
    _notice("wape-explain", "wape explain")
    from repro.tool.explain import main
    return main(argv)
