"""``wape top``: a live terminal view of a running scan daemon.

Polls the daemon's ``/v1/status`` endpoint (:mod:`repro.service`) and
renders uptime, queue depth, in-flight requests and the warm per-root
state (files, findings, approximate resident bytes).  Against a fleet
(``wape serve --workers N``) the panel adds a per-worker section: pid,
aliveness, queue depth, scans/restarts/evictions and resident bytes.

::

    wape top                          # poll localhost:8711 every 2s
    wape top --port 9000 --interval 5
    wape top --once                   # one snapshot, no loop (scripting)

Stop with Ctrl-C.  ``--once`` prints a single snapshot and exits 0, or
exits 1 when the daemon is unreachable — cheap liveness probe for
scripts and tests.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.exceptions import ServiceError
from repro.service import ServiceClient


def _fmt_bytes(n) -> str:
    if not isinstance(n, (int, float)) or n < 0:
        return "?"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024:
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}TiB"


def _fmt_uptime(seconds: float) -> str:
    seconds = int(seconds)
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    return f"{hours}:{minutes:02d}:{secs:02d}"


def render_status(status: dict) -> str:
    """One status snapshot as a fixed-width panel."""
    requests = status.get("requests") or {}
    lines = [
        f"wape daemon {status.get('version', '?')}  "
        f"uptime {_fmt_uptime(status.get('uptime_seconds', 0))}  "
        f"queue {status.get('queue_depth', 0)}/"
        f"{status.get('max_queue', '?')}  "
        f"served {requests.get('served', 0)}  "
        f"errors {requests.get('errors', 0)}  "
        f"timeouts {requests.get('timeouts', 0)}",
    ]
    workers = status.get("workers") or []
    if isinstance(workers, list) and workers:
        lines.append(f"workers ({len(workers)}):")
        lines.append(f"  {'id':>3} {'pid':>7} {'state':>5} {'queue':>5} "
                     f"{'scans':>6} {'resp.':>5} {'evict':>5} "
                     f"{'roots':>5} {'approx':>8}  current")
        for worker in workers:
            lines.append(
                f"  {worker.get('worker', '?'):>3} "
                f"{worker.get('pid', '?'):>7} "
                f"{'up' if worker.get('alive') else 'DOWN':>5} "
                f"{worker.get('queue_depth', 0):>5} "
                f"{worker.get('scans', 0):>6} "
                f"{worker.get('restarts', 0):>5} "
                f"{worker.get('evictions', 0):>5} "
                f"{worker.get('warm_roots', 0):>5} "
                f"{_fmt_bytes(worker.get('approx_bytes')):>8}  "
                f"{worker.get('current_request') or '-'}")
    in_flight = status.get("in_flight") or []
    if in_flight:
        lines.append("in flight:")
        for req in in_flight:
            flags = " TIMED-OUT" if req.get("timed_out") else ""
            where = f" w{req['worker']}" if "worker" in req else ""
            lines.append(f"  {req.get('request_id', '?'):<18} "
                         f"{req.get('elapsed_seconds', 0.0):>6.1f}s"
                         f"{where}  {req.get('root', '?')}{flags}")
    roots = status.get("roots") or []
    if roots:
        header = (f"  {'files':>6} {'results':>7} {'findings':>8} "
                  f"{'approx':>8}  root")
        lines.append(f"warm roots ({len(roots)}):")
        lines.append(header)
        for root in roots:
            lines.append(f"  {root.get('files', 0):>6} "
                         f"{root.get('results', 0):>7} "
                         f"{root.get('candidates', 0):>8} "
                         f"{_fmt_bytes(root.get('approx_bytes')):>8}  "
                         f"{root.get('root', '?')}")
    else:
        lines.append("warm roots: none")
    return "\n".join(lines)


def build_top_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wape top",
        description="live status view of a running wape scan daemon")
    parser.add_argument("--host", default="127.0.0.1",
                        help="daemon host (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8711,
                        help="daemon port (default: 8711)")
    parser.add_argument("--interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="refresh interval (default: 2s)")
    parser.add_argument("--once", action="store_true",
                        help="print one snapshot and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_top_parser().parse_args(
        list(sys.argv[1:] if argv is None else argv))
    client = ServiceClient(host=args.host, port=args.port)
    while True:
        try:
            status = client.status()
        except (ServiceError, OSError) as exc:
            print(f"wape top: daemon at {args.host}:{args.port} "
                  f"unreachable ({exc})", file=sys.stderr)
            return 1
        if not args.once:
            # ANSI clear + home keeps the panel in place between polls
            sys.stdout.write("\x1b[2J\x1b[H")
        print(render_status(status))
        if args.once:
            return 0
        sys.stdout.flush()
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
