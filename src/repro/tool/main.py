"""``wape``: the single consolidated entry point.

One executable, seven subcommands::

    wape scan [flags] TARGET...     analyze (and optionally fix) PHP code
    wape explain [flags] TARGET...  full decision trace per candidate
    wape watch [flags] ROOT         continuous scanning: findings deltas
    wape serve [flags]              long-running scan daemon (local HTTP)
    wape bench [flags] TARGET       cold vs warm vs incremental timings
    wape history [flags]            scan-ledger trends + regression gate
    wape top [flags]                live status view of a running daemon

The historical flag-style invocation (``wape --quiet app/``) and the
separate ``wape-explain`` executable were removed after their
deprecation cycle: unknown first arguments now fail fast with a message
pointing at the matching subcommand.
"""

from __future__ import annotations

import argparse
import sys

_USAGE = """\
usage: wape <command> [options]

commands:
  scan      analyze PHP files/trees for vulnerabilities (and --fix them)
  explain   print the full decision trace behind each candidate
  watch     poll a tree for edits and print findings deltas (new/fixed)
  serve     run the warm scan daemon (answers scans over local HTTP)
  bench     measure cold vs warm vs incremental scan times on a target
  history   render run-ledger trends and gate on regressions (--check)
  top       poll a running daemon's /v1/status in the terminal

run `wape <command> --help` for command options.
"""

COMMANDS = ("scan", "explain", "watch", "serve", "bench", "history",
            "top")


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0 if argv else 2
    if argv[0] == "--version":
        from repro.tool.wap import Wape
        print(f"wape ({Wape.version})")
        return 0
    command, rest = argv[0], argv[1:]
    if command not in COMMANDS:
        # the historical flag-style invocation (`wape [flags] targets`)
        # was removed after its deprecation cycle: fail fast and name
        # the replacement instead of guessing at intent
        print(f"error: unknown command {command!r}; flag-style "
              f"`wape [flags]` was removed — use `wape scan [flags]` "
              f"(run `wape --help` for all commands)", file=sys.stderr)
        return 2
    if command == "scan":
        from repro.tool.cli import main as scan_main
        return scan_main(rest)
    if command == "explain":
        from repro.tool.explain import main as explain_main
        return explain_main(rest)
    if command == "watch":
        from repro.tool.watch import main as watch_main
        return watch_main(rest)
    if command == "serve":
        return serve_main(rest)
    if command == "history":
        from repro.tool.history import main as history_main
        return history_main(rest)
    if command == "top":
        from repro.tool.top import main as top_main
        return top_main(rest)
    from repro.tool.bench import main as bench_main
    return bench_main(rest)


# ---------------------------------------------------------------------------
# wape serve
# ---------------------------------------------------------------------------

def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wape serve",
        description="long-running scan daemon: the tool is built (and the "
                    "false-positive predictor trained) once, parsed state "
                    "stays warm, and repeat scans of an edited project "
                    "re-analyze only the dirty include-closure",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8711,
                        help="listen port; 0 picks an ephemeral port "
                             "(default: 8711)")
    parser.add_argument("--original", action="store_true",
                        help="serve the original WAP v2.1 instead of WAPe")
    parser.add_argument("--weapon-dir", action="append", default=[],
                        metavar="DIR",
                        help="load a weapon bundle directory "
                             "(may be repeated)")
    parser.add_argument("--sanitizer", action="append", default=[],
                        metavar="CLASS:FUNC",
                        help="treat FUNC as a sanitization function for "
                             "CLASS")
    parser.add_argument("--symptom", action="append", default=[],
                        metavar="FUNC:STATIC",
                        help="dynamic symptom: FUNC behaves like STATIC")
    parser.add_argument("--kb", metavar="DIR",
                        help="load the vulnerability-class knowledge base "
                             "from DIR")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for COLD scans (warm "
                             "re-scans always run in-process; default: 1)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="share an on-disk result cache with batch "
                             "`wape scan` runs")
    parser.add_argument("--no-includes", action="store_true",
                        help="disable static include/require resolution")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="warm scanner worker processes; >1 serves "
                             "a sharded fleet with sticky per-root "
                             "routing and crash supervision "
                             "(default: 1, in-process)")
    parser.add_argument("--memory-budget-mb", type=float, default=None,
                        metavar="MB",
                        help="per-worker warm-state budget; least-"
                             "recently-scanned roots are evicted past "
                             "it (fleet mode only; default: unlimited)")
    parser.add_argument("--max-queue", type=int, default=8, metavar="N",
                        help="queued+running scans (per worker in fleet "
                             "mode) before requests get 503 (default: 8)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        metavar="SECONDS",
                        help="default per-request scan timeout "
                             "(default: 300)")
    parser.add_argument("--quiet", action="store_true",
                        help="no per-request log lines")
    parser.add_argument("--log", metavar="FILE", default=None,
                        help="append structured JSONL events (request "
                             "ids, scan outcomes, pipeline events) to "
                             "FILE")
    parser.add_argument("--log-level", default="info",
                        choices=("debug", "info", "warning", "error"),
                        help="minimum level recorded by --log "
                             "(default: info)")
    return parser


def serve_main(argv: list[str]) -> int:
    from repro.exceptions import ReproError
    from repro.tool.cli import build_tool, resolve_weapons

    registry, weapon_flags, rest = resolve_weapons(argv)
    args = build_serve_parser().parse_args(rest)
    try:
        tool = build_tool(args, weapon_flags, registry)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    from repro.analysis.options import ScanOptions
    from repro.service import FleetService, ScanService

    options = ScanOptions(jobs=args.jobs, cache_dir=args.cache_dir,
                          includes=not args.no_includes)
    log = None if args.quiet else \
        (lambda message: print(message, file=sys.stderr, flush=True))
    logger = None
    if args.log:
        from repro.obs import JsonlLogger
        logger = JsonlLogger(path=args.log, level=args.log_level)
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    try:
        if args.workers > 1:
            service = FleetService(
                tool, options, host=args.host, port=args.port,
                workers=args.workers, max_queue=args.max_queue,
                request_timeout=args.timeout,
                memory_budget_mb=args.memory_budget_mb,
                log=log, logger=logger)
        else:
            service = ScanService(tool, options, host=args.host,
                                  port=args.port,
                                  max_queue=args.max_queue,
                                  request_timeout=args.timeout, log=log,
                                  logger=logger)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    # the one line tooling is allowed to parse: the actual address
    print(f"wape serve: listening on {service.address}", flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        service.shutdown()
        service.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
