"""The tool facades: WAP v2.1 and WAPe.

Both run the full Fig. 1 pipeline — code analyzer → false positive
predictor → (optionally) code corrector — and differ exactly where the
paper says they do:

=====================  ==========================  =========================
aspect                 :class:`Wap21`              :class:`Wape`
=====================  ==========================  =========================
vulnerability classes  the original 8              8 + SF, CS, LDAPI, XPathI
weapons                none                        ``-nosqli -hei -wpsqli``
                                                   + user weapons
attributes             16 (15 + class)             61 (60 + class)
training set           76 instances                256 instances
top-3 classifiers      SVM, LR, Random Tree        SVM, LR, Random Forest
configurable ep/ss/san no (hard-coded)             yes (external data)
=====================  ==========================  =========================
"""

from __future__ import annotations

import os
import time

from repro.exceptions import WeaponConfigError
from repro.analysis.knowledge import extend_config
from repro.analysis.model import CandidateVulnerability
from repro.analysis.options import ScanOptions
from repro.analysis.pipeline import (
    ConfigGroup,
    FusedDetector,
    ScanScheduler,
)
from repro.corrector import CodeCorrector, CorrectionResult
from repro.exceptions import PhpSyntaxError
from repro.mining.extraction import NO_DYNAMIC_SYMPTOMS, DynamicSymptoms
from repro.mining.predictor import (
    FalsePositivePredictor,
    new_predictor,
    original_predictor,
)
from repro.telemetry import (
    NULL_TELEMETRY,
    CacheStats,
    Telemetry,
    build_scan_stats,
)
from repro.tool.report import AnalysisReport, CandidateOutcome, FileReport
from repro.vulnerabilities import (
    ORIGIN_WEAPON,
    SubModule,
    VulnRegistry,
    build_submodules,
    original_registry,
    wape_registry,
)
from repro.weapons import Weapon, WeaponRegistry


class _BaseTool:
    """Shared pipeline driver for both tool versions."""

    version = "wap-base"

    def __init__(self) -> None:
        self.submodules: dict[str, SubModule] = {}
        self.weapons: list[Weapon] = []
        self.predictor: FalsePositivePredictor | None = None
        self.corrector = CodeCorrector()
        self.groups: dict[str, str] = {}
        self._fused: FusedDetector | None = None

    # -- pipeline -------------------------------------------------------
    def _config_groups(self) -> list[ConfigGroup]:
        """Detection units (sub-modules + armed weapons) for the pipeline."""
        groups: list[ConfigGroup] = []
        for name, sub in self.submodules.items():
            if sub.detector is None:
                continue
            groups.append(ConfigGroup(name, tuple(sub.detector.configs),
                                      split_rfi_lfi=sub.refines_lfi))
        for weapon in self.weapons:
            groups.append(ConfigGroup(f"weapon:{weapon.name}",
                                      tuple(weapon.configs)))
        return groups

    @property
    def fused_detector(self) -> FusedDetector:
        """The single-traversal detector over every sub-module and weapon.

        Built once per tool configuration; arming a weapon rebuilds it.
        """
        if self._fused is None:
            self._fused = FusedDetector(self._config_groups())
        return self._fused

    def _detect(self, source: str, filename: str,
                telemetry: Telemetry | None = None
                ) -> list[CandidateVulnerability]:
        if telemetry is not None and telemetry.enabled:
            # traced runs get their own detector so spans land in the
            # run's tracer; the shared fused detector stays untouched
            detector = FusedDetector(self._config_groups(),
                                     telemetry=telemetry)
            return detector.detect_source(source, filename)
        return self.fused_detector.detect_source(source, filename)

    def analyze_source(self, source: str,
                       filename: str = "<source>",
                       telemetry: Telemetry | None = None
                       ) -> AnalysisReport:
        """Run the pipeline on source text, returning a full report."""
        telem = telemetry if telemetry is not None else NULL_TELEMETRY
        report = AnalysisReport(self.version, filename,
                                groups=dict(self.groups))
        assert self.predictor is not None
        with telem.tracer.span("analyze_source", phase="run",
                               file=filename) as root_span:
            start = time.perf_counter()
            file_report = FileReport(filename,
                                     lines_of_code=source.count("\n") + 1)
            try:
                candidates = self._detect(source, filename, telem)
            except PhpSyntaxError as exc:
                file_report.parse_error = str(exc)
                candidates = []
            with telem.tracer.span("predict", phase="predict"):
                for cand in candidates:
                    prediction = self.predictor.predict(cand)
                    file_report.outcomes.append(
                        CandidateOutcome(cand, prediction))
            file_report.seconds = time.perf_counter() - start
            report.files.append(file_report)
        if telem.enabled:
            report.stats = build_scan_stats(report, telem, root_span)
        return report

    def analyze_file(self, path: str,
                     telemetry: Telemetry | None = None) -> AnalysisReport:
        with open(path, encoding="utf-8", errors="replace") as f:
            source = f.read()
        return self.analyze_source(source, path, telemetry=telemetry)

    def analyze_tree(self, root: str, options: ScanOptions | None = None
                     ) -> AnalysisReport:
        """Analyze every PHP file under *root*.

        Args:
            options: the run's :class:`ScanOptions` — worker count, cache
                directory, include resolution, prefilter, telemetry and
                an optional predictor override.
        """
        scheduler = ScanScheduler(self._config_groups(),
                                  tool_version=self.version,
                                  options=options)
        return self.run_scheduler(scheduler, root)

    def run_scheduler(self, scheduler: ScanScheduler, root: str,
                      paths: list[str] | None = None,
                      collect: list | None = None,
                      on_file=None) -> AnalysisReport:
        """Scan *root* with a caller-built scheduler, predict, report.

        Split out of :meth:`analyze_tree` so warm embedders
        (:class:`repro.api.Scanner`) can keep their own scheduler and
        still produce byte-identical reports.

        Args:
            paths: exact file list to scan; defaults to discovering
                *root*.  Lets a caller that already walked the tree pin
                the set (no re-discovery race).
            collect: when given, the raw per-file
                :class:`~repro.analysis.detector.FileResult` objects are
                appended to it — the seed of a warm scanner's state.
            on_file: optional ``callable(FileReport)`` invoked per file
                as its verdicts are finalized, in report order — the
                daemon's streaming hook (``POST /v1/scan?stream=1``).
        """
        telem = scheduler.telemetry
        predictor = scheduler.options.predictor or self.predictor
        report = AnalysisReport(self.version, root,
                                groups=dict(self.groups))
        assert predictor is not None
        memo0 = (predictor.memo_hits, predictor.memo_misses)
        with telem.tracer.span("analyze_tree", phase="run",
                               root=root) as root_span:
            results = scheduler.scan_files(paths) if paths is not None \
                else scheduler.scan_tree(root)
            if collect is not None:
                collect.extend(results)
            with telem.tracer.span("predict", phase="predict",
                                   files=len(results)):
                for result in results:
                    file_report = self._predict_result(result, telem,
                                                       predictor)
                    report.files.append(file_report)
                    if on_file is not None:
                        on_file(file_report)
        if scheduler.cache is not None:
            report.cache = CacheStats(scheduler.cache.hits,
                                      scheduler.cache.misses,
                                      scheduler.cache.evictions,
                                      scheduler.cache.puts)
        report.prefilter = scheduler.prefilter_stats
        if telem.enabled:
            telem.metrics.counter("predictor_memo_hits").inc(
                predictor.memo_hits - memo0[0])
            telem.metrics.counter("predictor_memo_misses").inc(
                predictor.memo_misses - memo0[1])
            report.stats = build_scan_stats(
                report, telem, root_span, cache=scheduler.cache,
                retries=scheduler.retries, crashes=scheduler.crashes)
        return report

    def _predict_result(self, result, telem: Telemetry,
                        predictor: FalsePositivePredictor | None = None
                        ) -> FileReport:
        """Classify one scan result's candidates into a file report."""
        predictor = predictor or self.predictor
        assert predictor is not None
        start = time.perf_counter()
        file_report = FileReport(
            result.filename,
            result.lines_of_code,
            parse_error=result.parse_error,
            parse_warning=getattr(result, "parse_warning", None),
            recovered_statements=getattr(result, "recovered_statements", 0),
            resolved_includes=getattr(result, "resolved_includes", 0),
            unresolved_includes=getattr(result, "unresolved_includes", 0))
        if telem.enabled and result.candidates:
            with telem.tracer.span("predict_file", phase="predict",
                                   file=result.filename) as span:
                for cand in result.candidates:
                    file_report.outcomes.append(CandidateOutcome(
                        cand, predictor.predict(cand)))
                span.set(candidates=len(result.candidates))
        else:
            for cand in result.candidates:
                file_report.outcomes.append(
                    CandidateOutcome(cand, predictor.predict(cand)))
        file_report.seconds = result.seconds + \
            (time.perf_counter() - start)
        return file_report

    def analyze_project(self, root: str,
                        options: ScanOptions | None = None
                        ) -> AnalysisReport:
        """Whole-project analysis with cross-file call resolution.

        Unlike :meth:`analyze_tree` (per-file, like the original tool),
        this resolves user functions across files: a sanitizing helper in
        ``lib.php`` silences flows in ``index.php``, and a sink inside a
        shared helper is reported once, at its declaration site.

        Accepts a :class:`ScanOptions` like :meth:`analyze_tree`.
        """
        from repro.analysis.project import ProjectAnalyzer

        opts = options if options is not None else ScanOptions()
        telem = opts.resolve_telemetry()
        predictor = opts.predictor or self.predictor
        report = AnalysisReport(self.version, root,
                                groups=dict(self.groups))
        assert predictor is not None

        groups = self._config_groups()
        analyzer = ProjectAnalyzer(groups, options=opts)
        with telem.tracer.span("analyze_project", phase="run",
                               root=root) as root_span:
            result = analyzer.analyze_tree(root)

            refined = [SubModule._split_rfi_lfi(cand)
                       for cand in result.candidates]

            by_file: dict[str, FileReport] = {}
            for pf in result.files:
                by_file[pf.path] = FileReport(pf.path, pf.lines_of_code,
                                              seconds=pf.seconds,
                                              parse_error=pf.parse_error)
            with telem.tracer.span("predict", phase="predict",
                                   candidates=len(refined)):
                for cand in refined:
                    start = time.perf_counter()
                    prediction = predictor.predict(cand)
                    file_report = by_file.setdefault(
                        cand.filename, FileReport(cand.filename))
                    file_report.outcomes.append(
                        CandidateOutcome(cand, prediction))
                    file_report.seconds += time.perf_counter() - start
            report.files = list(by_file.values())
        if telem.enabled:
            report.stats = build_scan_stats(report, telem, root_span)
        return report

    # -- correction -----------------------------------------------------
    def correct_source(self, source: str,
                       report: AnalysisReport | None = None,
                       filename: str = "<source>") -> CorrectionResult:
        """Fix the real vulnerabilities of *source* (Fig. 1, box 3)."""
        if report is None:
            report = self.analyze_source(source, filename)
        real = [o.candidate for o in report.real_vulnerabilities]
        return self.corrector.correct_source(source, real, filename)

    def correct_file(self, path: str,
                     output_path: str | None = None) -> CorrectionResult:
        report = self.analyze_file(path)
        real = [o.candidate for o in report.real_vulnerabilities]
        return self.corrector.correct_file(path, real, output_path)

    # -- introspection ---------------------------------------------------
    @property
    def class_ids(self) -> list[str]:
        out: list[str] = []
        for sub in self.submodules.values():
            out.extend(sub.class_ids)
        for weapon in self.weapons:
            out.extend(weapon.class_ids)
        return sorted(set(out))


class Wap21(_BaseTool):
    """The original WAP v2.1: 8 classes, 16 attributes, no extensibility."""

    version = "WAP v2.1"

    def __init__(self) -> None:
        super().__init__()
        registry = original_registry()
        self.registry = registry
        self.submodules = build_submodules(registry)
        self.predictor = original_predictor()
        self.groups = {info.class_id: info.group() for info in registry}
        self._fused = FusedDetector(self._config_groups())


class Wape(_BaseTool):
    """WAPe: the modular, extensible version presented by the paper.

    Args:
        weapon_flags: activation flags for weapons (``["-nosqli",
            "-hei", "-wpsqli"]`` for the builtins, plus any user weapon
            registered in *weapon_registry*).
        weapon_registry: where flags are resolved; defaults to the builtin
            registry.
        extra_sanitizers: per-class extra sanitization functions — the
            §V-A scenario of feeding vfront's ``escape`` helper to the
            tool: ``{"sqli": {"escape"}}``.
        dynamic_symptoms: extra user dynamic symptoms (§III-B2), merged
            with those carried by activated weapons.
    """

    version = "WAPe"

    def __init__(self,
                 weapon_flags: list[str] | tuple[str, ...] = (),
                 weapon_registry: WeaponRegistry | None = None,
                 extra_sanitizers: dict[str, set[str]] | None = None,
                 dynamic_symptoms: DynamicSymptoms = NO_DYNAMIC_SYMPTOMS,
                 class_registry: VulnRegistry | None = None,
                 ) -> None:
        super().__init__()
        registry = class_registry or wape_registry(include_weapons=False)
        self.registry = registry
        self.weapon_registry = weapon_registry or \
            WeaponRegistry.with_builtins()

        if extra_sanitizers:
            registry = _extend_registry(registry, extra_sanitizers)
            self.registry = registry
        self.submodules = build_submodules(registry)
        self.groups = {info.class_id: info.group() for info in registry}

        dynamic = dynamic_symptoms
        for flag in weapon_flags:
            weapon = self.weapon_registry.by_flag(flag)
            self.weapons.append(weapon)
            dynamic = dynamic.merged(weapon.dynamic_symptoms)
            for class_id in weapon.class_ids:
                self.groups[class_id] = weapon.report_group(class_id)
            self.corrector.register_fix(weapon.class_ids[0], weapon.fix)
            for class_id in weapon.class_ids[1:]:
                self.corrector.class_fixes[class_id] = weapon.fix.fix_id

        self.predictor = new_predictor(dynamic)
        self._fused = FusedDetector(self._config_groups())

    def arm(self, weapon: Weapon) -> None:
        """Register and activate a freshly generated weapon."""
        if weapon.name not in self.weapon_registry:
            self.weapon_registry.register(weapon)
        elif self.weapon_registry.by_name(weapon.name) is not weapon:
            raise WeaponConfigError(
                f"a different weapon named {weapon.name!r} exists")
        self.weapons.append(weapon)
        for class_id in weapon.class_ids:
            self.groups[class_id] = weapon.report_group(class_id)
        self.corrector.register_fix(weapon.class_ids[0], weapon.fix)
        for class_id in weapon.class_ids[1:]:
            self.corrector.class_fixes[class_id] = weapon.fix.fix_id
        assert self.predictor is not None
        self.predictor = self.predictor.with_dynamic(
            weapon.dynamic_symptoms)
        self._fused = FusedDetector(self._config_groups())


def _extend_registry(registry: VulnRegistry,
                     extra_sanitizers: dict[str, set[str]]) -> VulnRegistry:
    """Clone *registry* with extra sanitizers merged into named classes."""
    import dataclasses
    out = VulnRegistry()
    for info in registry:
        extra = extra_sanitizers.get(info.class_id)
        if extra:
            out.add(dataclasses.replace(
                info, config=extend_config(info.config,
                                           sanitizers=set(extra))))
        else:
            out.add(info)
    return out
