"""``wape scan``: the analysis (and correction) command.

Mirrors the paper's usage: weapons are activated with single-dash flags
named after the weapon (``-nosqli``, ``-hei``, ``-wpsqli``, or any weapon
bundle loaded with ``--weapon-dir``).

Examples::

    wape scan app/                       # analyze a tree, 12 classes
    wape scan -wpsqli -hei plugin/       # arm two weapons as well
    wape scan --original app/            # emulate WAP v2.1
    wape scan --fix vulnerable.php       # write corrected source
    wape scan --sanitizer sqli:escape app/  # custom sanitizer (§V-A)

:func:`main` here is the ``scan`` subcommand implementation; the ``wape``
executable itself dispatches through :mod:`repro.tool.main`.  The
historical flag-style invocation (``wape [flags]``) was removed after
its deprecation cycle and now fails fast naming the subcommand.
"""

from __future__ import annotations

import argparse
import sys

from repro.exceptions import ReproError
from repro.mining.extraction import DynamicSymptoms
from repro.tool.wap import Wap21, Wape
from repro.weapons import WeaponRegistry, load_weapon


def parse_jobs(value: str):
    """``--jobs`` argument: the literal ``auto`` or a worker count."""
    if value.strip().lower() == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'auto' or an integer, got {value!r}")


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wape scan",
        description="WAPe - modular, extensible detection (and correction)"
                    " of input validation vulnerabilities in PHP code",
    )
    parser.add_argument("targets", nargs="*",
                        help="PHP files or directories to analyze")
    parser.add_argument("--original", action="store_true",
                        help="emulate the original WAP v2.1 "
                             "(8 classes, 16 attributes)")
    parser.add_argument("--fix", action="store_true",
                        help="correct the real vulnerabilities "
                             "(writes <file>.fixed.php)")
    parser.add_argument("--in-place", action="store_true",
                        help="with --fix: overwrite the original files")
    parser.add_argument("--weapon-dir", action="append", default=[],
                        metavar="DIR",
                        help="load a weapon bundle directory "
                             "(may be repeated)")
    parser.add_argument("--sanitizer", action="append", default=[],
                        metavar="CLASS:FUNC",
                        help="treat FUNC as a sanitization function for "
                             "CLASS (e.g. sqli:escape)")
    parser.add_argument("--symptom", action="append", default=[],
                        metavar="FUNC:STATIC",
                        help="dynamic symptom: user FUNC behaves like "
                             "static symptom STATIC (e.g. val_int:is_int)")
    parser.add_argument("--export-kb", metavar="DIR",
                        help="export the tool's ep/ss/san knowledge base "
                             "as editable text files and exit")
    parser.add_argument("--kb", metavar="DIR",
                        help="load the vulnerability-class knowledge base "
                             "from DIR instead of the builtin catalogs")
    parser.add_argument("--project", action="store_true",
                        help="whole-project analysis: resolve user "
                             "functions across files before reporting")
    parser.add_argument("--jobs", "-j", type=parse_jobs, default="auto",
                        metavar="N",
                        help="analysis worker processes for directory "
                             "targets: 'auto' (the default) caps at the "
                             "machine's CPU count — oversubscribing a "
                             "small box slows scans; an explicit N is "
                             "honored as-is (1 = in-process)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="on-disk result cache location (default: "
                             "~/.cache/wape); unchanged files are served "
                             "from cache")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache entirely")
    parser.add_argument("--no-ast-cache", action="store_true",
                        help="disable the on-disk AST cache tier (parsed "
                             "syntax trees kept next to the result cache)")
    parser.add_argument("--no-summary-cache", action="store_true",
                        help="disable the on-disk function-summary tier "
                             "(per-file taint summaries composed across "
                             "include closures)")
    parser.add_argument("--no-includes", action="store_true",
                        help="disable static include/require resolution "
                             "(each file is analyzed in isolation)")
    parser.add_argument("--no-prefilter", action="store_true",
                        help="disable the knowledge-compiled relevance "
                             "prefilter (analyze every file, even ones "
                             "whose include closure mentions no sink or "
                             "source from any catalog)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of text")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="diff the findings against a committed "
                             "report (any schema version) and print the "
                             "delta; with --json the report gains a "
                             "'delta' block")
    parser.add_argument("--fail-on-new", action="store_true",
                        help="with --baseline: exit non-zero only when "
                             "the scan has NEW real findings (fingerprints "
                             "absent from the baseline) — the CI gate")
    parser.add_argument("--sarif-out", metavar="FILE", default=None,
                        help="also write the report as SARIF 2.1.0 to "
                             "FILE (code-review tooling ingestion)")
    parser.add_argument("--justify", action="store_true",
                        help="explain each predicted false positive "
                             "(symptoms, categories, classifier votes)")
    parser.add_argument("--show-paths", action="store_true",
                        help="print the full data-flow path of each "
                             "candidate")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the summary lines")
    parser.add_argument("--stats", action="store_true",
                        help="print a scan-statistics footer: phase-time "
                             "breakdown, slowest files, cache and worker "
                             "health")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write the full span trace (nested phase "
                             "timings, worker chunks) as JSON to FILE")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write pipeline metrics in Prometheus text "
                             "exposition format to FILE")
    parser.add_argument("--log", metavar="FILE", default=None,
                        help="append structured JSONL log events (run id, "
                             "worker segments, crash/retry records) to "
                             "FILE")
    parser.add_argument("--log-level", default="info",
                        choices=("debug", "info", "warning", "error"),
                        help="minimum level recorded by --log "
                             "(default: info)")
    parser.add_argument("--ledger", metavar="FILE", default=None,
                        help="append one run record per directory scan to "
                             "FILE (default: ledger.jsonl under the cache "
                             "dir); inspect with `wape history`")
    parser.add_argument("--no-ledger", action="store_true",
                        help="do not append this scan to the run ledger")
    parser.add_argument("--profile", action="store_true",
                        help="profile the scan: sampled folded stacks "
                             "(flamegraph-compatible), a hot-function "
                             "table and the IR per-opcode histogram "
                             "(implies telemetry)")
    parser.add_argument("--profile-out", metavar="FILE",
                        default="wape-profile.folded",
                        help="folded-stack output path for --profile "
                             "(default: wape-profile.folded)")
    return parser


def split_weapon_flags(argv: list[str],
                       registry: WeaponRegistry) -> tuple[list[str],
                                                          list[str]]:
    """Separate weapon activation flags (``-nosqli``) from normal args."""
    weapon_flags: list[str] = []
    rest: list[str] = []
    for arg in argv:
        if arg.startswith("-") and not arg.startswith("--") \
                and arg in registry:
            weapon_flags.append(arg)
        else:
            rest.append(arg)
    return weapon_flags, rest


def _parse_extra_sanitizers(pairs: list[str]) -> dict[str, set[str]]:
    out: dict[str, set[str]] = {}
    for pair in pairs:
        class_id, _, func = pair.partition(":")
        if not class_id or not func:
            raise SystemExit(f"--sanitizer expects CLASS:FUNC, got {pair!r}")
        out.setdefault(class_id, set()).add(func)
    return out


def _parse_dynamic(pairs: list[str]) -> DynamicSymptoms:
    mapping: dict[str, str] = {}
    for pair in pairs:
        func, _, static = pair.partition(":")
        if not func or not static:
            raise SystemExit(f"--symptom expects FUNC:STATIC, got {pair!r}")
        mapping[func] = static
    return DynamicSymptoms(mapping=mapping)


def resolve_weapons(argv: list[str]
                    ) -> tuple[WeaponRegistry, list[str], list[str]]:
    """The shared weapon preamble of every tool-building command.

    Loads ``--weapon-dir`` bundles (they must resolve before flag
    splitting so their activation flags are recognized), then separates
    weapon flags from ordinary arguments.  Returns ``(registry,
    weapon_flags, rest)``.
    """
    registry = WeaponRegistry.with_builtins()
    pre = argparse.ArgumentParser(add_help=False)
    pre.add_argument("--weapon-dir", action="append", default=[])
    pre_args, _ = pre.parse_known_args(argv)
    for directory in pre_args.weapon_dir:
        registry.register(load_weapon(directory))
    weapon_flags, rest = split_weapon_flags(argv, registry)
    return registry, weapon_flags, rest


def build_tool(args: argparse.Namespace, weapon_flags: list[str],
               registry: WeaponRegistry) -> Wap21 | Wape:
    """Construct the tool facade from parsed common options.

    Understands the options every command shares (``--sanitizer``,
    ``--symptom``) plus, when present on *args*, ``--original`` and
    ``--kb``.  Raises :class:`ReproError` exactly like the facades do;
    callers turn that into exit code 2.
    """
    if getattr(args, "original", False):
        if weapon_flags:
            raise SystemExit(
                "weapons require the new version (drop --original)")
        return Wap21()
    kb_registry = None
    if getattr(args, "kb", None):
        from repro.analysis import load_registry
        kb_registry = load_registry(args.kb)
    return Wape(
        weapon_flags=weapon_flags,
        weapon_registry=registry,
        extra_sanitizers=_parse_extra_sanitizers(args.sanitizer),
        dynamic_symptoms=_parse_dynamic(args.symptom),
        class_registry=kb_registry,
    )


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)

    registry, weapon_flags, rest = resolve_weapons(argv)
    args = build_arg_parser().parse_args(rest)

    if args.export_kb:
        from repro.analysis import save_registry
        from repro.vulnerabilities import wape_registry
        save_registry(wape_registry(include_weapons=False),
                      args.export_kb)
        print(f"knowledge base exported to {args.export_kb}")
        return 0
    if not args.targets:
        print("error: no targets given", file=sys.stderr)
        return 2
    if args.fail_on_new and not args.baseline:
        print("error: --fail-on-new requires --baseline", file=sys.stderr)
        return 2
    if (args.baseline or args.sarif_out) and len(args.targets) != 1:
        print("error: --baseline/--sarif-out apply to exactly one "
              "target", file=sys.stderr)
        return 2
    baseline_data = None
    if args.baseline:
        from repro.exceptions import ReportSchemaError
        from repro.tool.report import load_report_dict
        try:
            with open(args.baseline, encoding="utf-8") as f:
                baseline_data = load_report_dict(f.read())
        except OSError as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        except ReportSchemaError as exc:
            print(f"error: bad baseline report {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2

    try:
        tool = build_tool(args, weapon_flags, registry)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    from repro.telemetry import NULL_TELEMETRY, Telemetry
    # --profile needs telemetry: the opcode histogram travels as counters
    # and the sampler prefixes samples with the live tracer phase
    telemetry = Telemetry() if (args.stats or args.trace_out
                                or args.metrics_out
                                or args.profile) else NULL_TELEMETRY

    import os
    import time
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir:
        cache_dir = args.cache_dir
    else:
        cache_dir = os.path.join(
            os.environ.get("XDG_CACHE_HOME")
            or os.path.join(os.path.expanduser("~"), ".cache"),
            "wape")

    from repro.obs import (
        NULL_LOG,
        JsonlLogger,
        RunLedger,
        SamplingProfiler,
        build_record,
        default_ledger_path,
        new_run_id,
        opcode_table,
        render_top_functions,
    )
    run_id = new_run_id()
    log = JsonlLogger(path=args.log, level=args.log_level,
                      run_id=run_id) if args.log else NULL_LOG
    ledger = None
    if not args.no_ledger:
        if args.ledger:
            ledger = RunLedger(args.ledger)
        elif cache_dir:
            ledger = RunLedger(default_ledger_path(cache_dir))
    profiler = None
    if args.profile:
        profiler = SamplingProfiler(tracer=telemetry.tracer)
        profiler.start()

    exit_code = 0
    new_real_findings = 0
    for target in args.targets:
        if os.path.isdir(target):
            if args.project:
                if args.original:
                    raise SystemExit(
                        "--project requires the new version")
                # cross-file resolution analyzes as one unit: the scan
                # pipeline (--jobs/--cache-dir) applies to per-file mode
                from repro.analysis.options import ScanOptions
                report = tool.analyze_project(
                    target, ScanOptions(telemetry=telemetry))
            else:
                from repro.analysis.options import ScanOptions
                opts = ScanOptions(
                    jobs=args.jobs, cache_dir=cache_dir,
                    telemetry=telemetry,
                    includes=not args.no_includes,
                    ast_cache=not args.no_ast_cache,
                    summary_cache=not args.no_summary_cache,
                    prefilter=not args.no_prefilter,
                    profile=args.profile, log=log, run_id=run_id)
                started = time.perf_counter()
                report = tool.analyze_tree(target, opts)
                if ledger is not None:
                    from repro.analysis.pipeline import config_fingerprint
                    record = build_record(
                        report, run_id=run_id,
                        fingerprint=config_fingerprint(
                            tool._config_groups(), tool.version),
                        jobs=opts.resolved_jobs(),
                        seconds=time.perf_counter() - started,
                        target=os.path.abspath(target))
                    ledger.append(record)
                    log.info("ledger_appended", path=ledger.path,
                             digest=record["findings"]["digest"][:12])
        else:
            report = tool.analyze_file(target, telemetry=telemetry)
        delta = None
        data = None
        if args.baseline or args.sarif_out or args.json:
            data = report.to_dict()
        if baseline_data is not None:
            from repro.api.delta import diff_reports
            delta = diff_reports(data, baseline_data)
            new_real_findings += len(delta.new_real)
            if args.json:
                data["delta"] = delta.to_dict()
        if args.sarif_out:
            from repro.tool.sarif import write_sarif
            write_sarif(args.sarif_out, data)
        if args.json:
            import json
            print(json.dumps(data, indent=2))
        elif args.quiet:
            print(report.summary_line())
        else:
            print(report.render_text(show_paths=args.show_paths))
        if delta is not None and not args.json:
            print(delta.render_text())
        if args.stats and not args.json:
            footer = report.render_stats()
            if footer:
                print(footer)
        if args.justify and not args.json:
            from repro.mining import justify
            for outcome in report.predicted_false_positives:
                print()
                print(justify(outcome.candidate,
                              outcome.prediction).render())
        if report.real_vulnerabilities:
            exit_code = 1
        if args.fix:
            for file_report in report.files:
                if not file_report.is_vulnerable:
                    continue
                real = [o.candidate for o in file_report.real]
                output = (file_report.filename if args.in_place else
                          file_report.filename + ".fixed.php")
                result = tool.corrector.correct_file(
                    file_report.filename, real, output)
                if result.changed:
                    print(f"fixed {len(result.applied)} "
                          f"vulnerabilities -> {output}")
    if args.fail_on_new:
        # CI-gate semantics: pre-existing (baselined) findings do not
        # fail the build — only new-fingerprint real findings do
        exit_code = 1 if new_real_findings else 0
    if profiler is not None:
        profiler.stop()
        profiler.write_folded(args.profile_out)
        if not args.json:
            print()
            print(f"profile: {profiler.total_samples} samples "
                  f"-> {args.profile_out}")
            print(render_top_functions(profiler.samples))
            counters = {name: counter.value for name, counter
                        in telemetry.metrics.counters.items()}
            print()
            print("IR opcode histogram (control-flow opcodes are "
                  "cumulative; see docs/ir.md):")
            print(opcode_table(counters))
    if args.trace_out:
        from repro.telemetry import write_trace
        write_trace(args.trace_out, telemetry.tracer,
                    tool=tool.version, target=" ".join(args.targets))
    if args.metrics_out:
        from repro.telemetry import write_metrics
        write_metrics(args.metrics_out, telemetry.metrics)
    log.close()
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    print("note: `python -m repro.tool.cli` is deprecated; "
          "use `wape scan` (or `python -m repro scan`)", file=sys.stderr)
    sys.exit(main())
