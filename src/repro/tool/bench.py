"""``wape bench``: measure what the daemon buys on a given project.

Copies *target* into a scratch directory (the edit used to trigger the
incremental path must not touch the real tree), then times the three
scan regimes a user actually experiences:

* **cold** — what one ``wape scan`` process pays: tool construction
  (predictor training included) plus a full tree analysis;
* **warm** — a repeat scan of the unchanged tree against warm state;
* **incremental** — a repeat scan after appending a comment to one file.

The headline number is ``speedup``: cold seconds over incremental
seconds — how much faster an edit-rescan loop runs against ``wape
serve`` than through repeated cold invocations.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wape bench",
        description="time cold vs warm vs incremental scans of TARGET",
    )
    parser.add_argument("target", help="PHP project directory to measure")
    parser.add_argument("--edit", metavar="FILE", default=None,
                        help="file (relative to TARGET) to touch for the "
                             "incremental measurement; default: the "
                             "first PHP file of the tree")
    parser.add_argument("--repeat", type=int, default=3, metavar="N",
                        help="repetitions of the warm/incremental "
                             "measurements; the minimum is reported "
                             "(default: 3)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for the cold scan "
                             "(default: 1)")
    parser.add_argument("--json", action="store_true",
                        help="emit the measurements as JSON")
    return parser


def run_bench(target: str, edit: str | None = None, repeat: int = 3,
              jobs: int = 1) -> dict:
    """The measurement core; also used by the benchmark suite."""
    from repro.analysis.options import ScanOptions
    from repro.analysis.pipeline import ScanScheduler
    from repro.api import Scanner
    from repro.tool.wap import Wape

    scratch = tempfile.mkdtemp(prefix="wape-bench-")
    root = os.path.join(scratch, os.path.basename(os.path.abspath(target)))
    try:
        shutil.copytree(target, root)
        paths = ScanScheduler.discover(root)
        if not paths:
            raise SystemExit(f"no PHP files under {target}")
        if edit is None:
            edit_path = paths[0]
        else:
            edit_path = os.path.join(root, edit)
            if not os.path.isfile(edit_path):
                raise SystemExit(f"--edit file not in target: {edit}")

        t0 = time.perf_counter()
        tool = Wape()
        tool_seconds = time.perf_counter() - t0

        scanner = Scanner(tool, ScanOptions(jobs=jobs))
        t0 = time.perf_counter()
        first = scanner.scan(root)
        cold_scan_seconds = time.perf_counter() - t0

        warm_seconds = min(
            scanner.scan(root).seconds for _ in range(max(1, repeat)))

        incremental_seconds = []
        for i in range(max(1, repeat)):
            with open(edit_path, "a", encoding="utf-8") as f:
                f.write(f"\n<?php // bench edit {i} ?>\n")
            result = scanner.scan(root)
            if not result.incremental or result.analyzed_files == 0:
                raise SystemExit("bench edit did not trigger an "
                                 "incremental re-scan")
            incremental_seconds.append(result.seconds)
        incremental = min(incremental_seconds)

        cold = tool_seconds + cold_scan_seconds
        return {
            "target": os.path.abspath(target),
            "files": len(paths),
            "edited": os.path.relpath(edit_path, root),
            "dirty_files": result.analyzed_files,
            "tool_seconds": round(tool_seconds, 6),
            "cold_scan_seconds": round(cold_scan_seconds, 6),
            "cold_seconds": round(cold, 6),
            "warm_seconds": round(warm_seconds, 6),
            "incremental_seconds": round(incremental, 6),
            "speedup": round(cold / incremental, 2)
            if incremental > 0 else float("inf"),
            "candidates": len(first.report.candidates),
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    args = build_arg_parser().parse_args(argv)
    if not os.path.isdir(args.target):
        print(f"error: not a directory: {args.target}", file=sys.stderr)
        return 2
    results = run_bench(args.target, edit=args.edit, repeat=args.repeat,
                        jobs=args.jobs)
    if args.json:
        print(json.dumps(results, indent=2))
        return 0
    print(f"target: {results['target']} ({results['files']} PHP files, "
          f"{results['candidates']} candidates)")
    print(f"cold   (tool build + full scan): "
          f"{results['cold_seconds']:8.3f}s  "
          f"(scan alone {results['cold_scan_seconds']:.3f}s)")
    print(f"warm   (unchanged tree):         "
          f"{results['warm_seconds']:8.4f}s")
    print(f"incremental (1-file edit, {results['dirty_files']} "
          f"re-analyzed): {results['incremental_seconds']:8.4f}s")
    print(f"speedup (cold / incremental):    "
          f"{results['speedup']:8.1f}x")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
