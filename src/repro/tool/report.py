"""Analysis reports: the structured output of a tool run.

A run produces one :class:`FileReport` per file and an
:class:`AnalysisReport` for the whole target.  Counting conventions follow
the paper's tables:

* a *candidate* is anything the taint analyzer flags;
* a *real vulnerability* is a candidate the predictor did not classify as a
  false positive (these are what Tables V-VII count);
* *FPP* is the number of candidates predicted to be false positives;
* per-class columns use report groups: DT & RFI, LFI collapse into
  "Files", and WordPress SQLI counts as "SQLI" (Tables VI, VII).
"""

from __future__ import annotations

import hashlib
import os
from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.model import CandidateVulnerability
from repro.exceptions import ReportSchemaError
from repro.mining.predictor import Prediction
from repro.telemetry.stats import CacheStats, PrefilterStats, ScanStats

#: current JSON report schema (``docs/report-schema.md``).  Version 1 is
#: the historical ad-hoc dict emitted before the schema was versioned;
#: bump this whenever a field is added, removed or changes meaning, and
#: teach :func:`upgrade_report_dict` how to lift the previous version.
SCHEMA_VERSION = 3

#: fingerprint algorithm tag — the ``partialFingerprints`` key in SARIF
#: exports and the first token of the hashed material.  Bump the suffix
#: whenever the material changes: fingerprints from different algorithm
#: versions must never be compared as equal identities.
FINGERPRINT_ALGORITHM = "wapeFingerprint/v1"

#: keys every versioned report must carry at the top level.
_REQUIRED_KEYS = ("tool", "target", "summary", "files")

#: summary counters (with their empty-report defaults) that version 1
#: reports may lack, depending on how old the producing tool was.
_SUMMARY_DEFAULTS = (
    ("files", 0), ("lines", 0), ("seconds", 0.0), ("candidates", 0),
    ("real_vulnerabilities", 0), ("predicted_false_positives", 0),
    ("parse_errors", 0), ("parse_warnings", 0),
    ("recovered_statements", 0), ("resolved_includes", 0),
    ("unresolved_includes", 0), ("by_class", {}),
)


def normalize_finding_path(path: str, target: str) -> str:
    """*path* as a stable, target-relative POSIX path.

    Finding identities and delta/SARIF locations must survive a checkout
    living somewhere else (CI scans ``/home/runner/...``, the committed
    baseline came from ``/Users/dev/...``), so absolute paths are
    relativized against the report's target.  A path that does not live
    under the target (or a non-path target like ``<source>``) falls back
    to its basename — still stable, just less specific.
    """
    try:
        rel = os.path.relpath(path, target)
    except ValueError:  # pragma: no cover - windows drive mismatch
        rel = None
    if rel is None or rel == "." or rel.startswith(".." + os.sep) \
            or rel == "..":
        return os.path.basename(path)
    return rel.replace(os.sep, "/")


def finding_fingerprint_material(finding: dict, path: str,
                                 target: str) -> str:
    """The pre-hash identity string of one finding.

    Deliberately line-free: the identity is the vulnerability class, the
    sink name, the sink file (target-relative), the entry point and the
    *shape* of the data-flow path — each hop's kind and detail, with
    cross-file hops pinned by basename.  Inserting blank lines above a
    sink, reformatting, or moving the checkout all keep the material
    stable; a genuinely new flow (different sink, source or hop
    sequence) changes it.
    """
    parts = [
        FINGERPRINT_ALGORITHM,
        str(finding.get("class", "")),
        str(finding.get("sink", "")),
        normalize_finding_path(path, target),
        str(finding.get("entry_point", "")),
    ]
    for step in finding.get("path") or ():
        hop = f"{step.get('kind', '')}:{step.get('detail', '')}"
        hop_file = step.get("file")
        if hop_file:
            hop += f"@{os.path.basename(str(hop_file))}"
        parts.append(hop)
    return "\x1f".join(parts)


def stamp_fingerprints(entry: dict, target: str) -> None:
    """Fill ``fingerprint`` on every finding of one ``files[]`` entry.

    The fingerprint is the SHA-256 (truncated to 20 hex chars) of the
    finding's :func:`finding_fingerprint_material` plus an *ordinal*: the
    occurrence index among same-material findings of the same file, in
    emission (sink line) order.  Two textually identical flows in one
    file therefore get distinct, deterministic identities, and the whole
    computation needs nothing outside the entry — the daemon's streaming
    path stamps each file event with exactly the bytes the batch report
    would carry.

    Findings that already carry a ``fingerprint`` keep it verbatim (the
    v3→v3 upgrade is the identity), but still count toward ordinals so a
    partially stamped entry stays consistent.
    """
    seen: dict[str, int] = {}
    for finding in entry.get("findings") or ():
        material = finding_fingerprint_material(
            finding, str(entry.get("path", "")), target)
        ordinal = seen.get(material, 0)
        seen[material] = ordinal + 1
        if "fingerprint" not in finding:
            digest = hashlib.sha256(
                f"{material}\x1f#{ordinal}".encode("utf-8")).hexdigest()
            finding["fingerprint"] = digest[:20]


def report_fingerprints(data: dict) -> list[str]:
    """Every finding fingerprint of a report dict, in report order."""
    return [finding.get("fingerprint", "")
            for entry in data.get("files") or ()
            for finding in entry.get("findings") or ()]


def upgrade_report_dict(data: dict) -> dict:
    """Lift a parsed JSON report to the current schema, or reject it.

    Returns a new dict whose ``schema_version`` is :data:`SCHEMA_VERSION`.
    Version 1 (the pre-versioning ad-hoc dict) is upgraded in place by
    filling the fields later versions added; a report from a *newer* tool
    or with a malformed version marker raises :class:`ReportSchemaError`
    instead of being half-read silently.
    """
    if not isinstance(data, dict):
        raise ReportSchemaError(
            f"report must be a JSON object, got {type(data).__name__}")
    version = data.get("schema_version", 1)
    if not isinstance(version, int) or isinstance(version, bool) \
            or version < 1:
        raise ReportSchemaError(
            f"malformed schema_version {version!r} (expected a positive "
            f"integer)")
    if version > SCHEMA_VERSION:
        raise ReportSchemaError(
            f"report schema_version {version} is newer than this tool "
            f"supports ({SCHEMA_VERSION}); upgrade the reader")
    missing = [key for key in _REQUIRED_KEYS if key not in data]
    if missing:
        raise ReportSchemaError(
            f"report is missing required key(s) {missing}")
    out = dict(data)
    if version == 1:
        out.setdefault("cache", None)
        out.setdefault("stats", None)
        summary = dict(out.get("summary") or {})
        for key, default in _SUMMARY_DEFAULTS:
            summary.setdefault(key, default)
        out["summary"] = summary
        files = []
        for entry in out.get("files") or []:
            entry = dict(entry)
            entry.setdefault("parse_warning", None)
            entry.setdefault("recovered_statements", 0)
            entry.setdefault("resolved_includes", 0)
            entry.setdefault("unresolved_includes", 0)
            files.append(entry)
        out["files"] = files
    if version < 3:
        # v3: every finding carries a stable content-based fingerprint.
        # Computable from v1/v2 material alone, so old reports (committed
        # CI baselines in particular) upgrade into diffable identities.
        target = str(out.get("target", ""))
        files = []
        for entry in out.get("files") or []:
            entry = dict(entry)
            entry["findings"] = [dict(finding)
                                 for finding in entry.get("findings") or ()]
            stamp_fingerprints(entry, target)
            files.append(entry)
        out["files"] = files
    out.setdefault("service", None)
    out["schema_version"] = SCHEMA_VERSION
    return out


def load_report_dict(text: str) -> dict:
    """Parse serialized report JSON and upgrade it to the current schema."""
    import json

    try:
        data = json.loads(text)
    except ValueError as exc:
        raise ReportSchemaError(f"report is not valid JSON: {exc}") from exc
    return upgrade_report_dict(data)


def file_report_dict(file_report: "FileReport", groups: dict[str, str],
                     target: str | None = None) -> dict:
    """One report ``files[]`` entry as a JSON-serializable dict.

    Shared by :meth:`AnalysisReport.to_dict` and the scan daemon's
    streaming path (``POST /v1/scan?stream=1``), which emits exactly one
    of these per file as its verdicts are finalized — the two must stay
    byte-compatible so stream consumers can reassemble a report.
    *groups* maps class ids to report groups (``AnalysisReport.groups``);
    *target* is the scanned root the fingerprints are relativized
    against (``None`` skips fingerprinting — pre-v3 shape).
    """
    f = file_report
    entry = {
        "path": f.filename,
        "lines": f.lines_of_code,
        "seconds": round(f.seconds, 6),
        "parse_error": f.parse_error,
        "parse_warning": f.parse_warning,
        "recovered_statements": f.recovered_statements,
        "resolved_includes": f.resolved_includes,
        "unresolved_includes": f.unresolved_includes,
        "findings": [
            {
                "class": o.vuln_class,
                "group": groups.get(o.vuln_class, o.vuln_class.upper()),
                "sink": o.candidate.sink_name,
                "sink_line": o.candidate.sink_line,
                "entry_point": o.candidate.entry_point,
                "entry_line": o.candidate.entry_line,
                "verdict": "real" if o.is_real else "false_positive",
                "votes": dict(o.prediction.votes),
                "symptoms": sorted(o.prediction.symptoms),
                "path": [
                    {"kind": s.kind, "detail": s.detail, "line": s.line,
                     **({"file": s.file}
                        if s.file and s.file != o.candidate.filename
                        else {})}
                    for s in o.candidate.path
                ],
            }
            for o in f.outcomes
        ],
    }
    if target is not None:
        stamp_fingerprints(entry, target)
    return entry


@dataclass(frozen=True)
class CandidateOutcome:
    """One candidate plus the predictor's verdict."""

    candidate: CandidateVulnerability
    prediction: Prediction

    @property
    def is_real(self) -> bool:
        return not self.prediction.is_false_positive

    @property
    def vuln_class(self) -> str:
        return self.candidate.vuln_class


@dataclass
class FileReport:
    """Per-file analysis outcome."""

    filename: str
    lines_of_code: int = 0
    seconds: float = 0.0
    outcomes: list[CandidateOutcome] = field(default_factory=list)
    parse_error: str | None = None
    #: first syntax error statement-level recovery skipped over (the file
    #: was still analyzed) and how many statements were dropped.
    parse_warning: str | None = None
    recovered_statements: int = 0
    #: include statements statically resolved / not resolvable in this file.
    resolved_includes: int = 0
    unresolved_includes: int = 0

    @property
    def real(self) -> list[CandidateOutcome]:
        return [o for o in self.outcomes if o.is_real]

    @property
    def predicted_fp(self) -> list[CandidateOutcome]:
        return [o for o in self.outcomes if not o.is_real]

    @property
    def is_vulnerable(self) -> bool:
        return bool(self.real)


@dataclass
class AnalysisReport:
    """Whole-run analysis outcome (one target: app, plugin, or tree)."""

    tool_version: str
    target: str = "<source>"
    files: list[FileReport] = field(default_factory=list)
    #: class id -> report group used for table columns.
    groups: dict[str, str] = field(default_factory=dict)
    #: result-cache behaviour; populated whenever a cache was used,
    #: independently of telemetry.
    cache: CacheStats | None = None
    #: relevance-prefilter tier counts; populated whenever the
    #: prefilter ran, independently of telemetry.  Deliberately NOT
    #: part of :meth:`to_dict`: the prefilter is findings-preserving,
    #: so the report JSON stays identical with it on or off (the counts
    #: surface through ``--stats``, the run ledger and ``/v1/status``).
    prefilter: PrefilterStats | None = None
    #: full scan statistics; populated only when telemetry is enabled.
    stats: ScanStats | None = None

    # ------------------------------------------------------------------
    @property
    def total_files(self) -> int:
        return len(self.files)

    @property
    def total_lines(self) -> int:
        return sum(f.lines_of_code for f in self.files)

    @property
    def total_seconds(self) -> float:
        return sum(f.seconds for f in self.files)

    @property
    def parse_errors(self) -> list[FileReport]:
        return [f for f in self.files if f.parse_error]

    @property
    def parse_warnings(self) -> list[FileReport]:
        return [f for f in self.files if f.parse_warning]

    # ------------------------------------------------------------------
    @property
    def outcomes(self) -> list[CandidateOutcome]:
        return [o for f in self.files for o in f.outcomes]

    @property
    def candidates(self) -> list[CandidateVulnerability]:
        return [o.candidate for o in self.outcomes]

    @property
    def real_vulnerabilities(self) -> list[CandidateOutcome]:
        return [o for o in self.outcomes if o.is_real]

    @property
    def predicted_false_positives(self) -> list[CandidateOutcome]:
        return [o for o in self.outcomes if not o.is_real]

    @property
    def vulnerable_files(self) -> list[FileReport]:
        return [f for f in self.files if f.is_vulnerable]

    # ------------------------------------------------------------------
    def counts_by_class(self, real_only: bool = True) -> Counter:
        pool = self.real_vulnerabilities if real_only else self.outcomes
        return Counter(o.vuln_class for o in pool)

    def counts_by_group(self, real_only: bool = True) -> Counter:
        pool = self.real_vulnerabilities if real_only else self.outcomes
        return Counter(self.group_of(o.vuln_class) for o in pool)

    def group_of(self, class_id: str) -> str:
        return self.groups.get(class_id, class_id.upper())

    # ------------------------------------------------------------------
    def summary_line(self) -> str:
        counts = self.counts_by_group()
        per_class = ", ".join(f"{g}: {n}" for g, n in
                              sorted(counts.items()))
        return (f"{self.target}: {self.total_files} files, "
                f"{self.total_lines} LoC, "
                f"{len(self.real_vulnerabilities)} vulnerabilities "
                f"({per_class}), "
                f"{len(self.predicted_false_positives)} predicted FPs, "
                f"{self.total_seconds:.2f}s")

    def to_dict(self) -> dict:
        """JSON-serializable representation of the whole report.

        The layout is versioned: consumers should route parsed dicts
        through :func:`upgrade_report_dict` (or :func:`load_report_dict`)
        rather than assuming a shape.  ``service`` is ``None`` for plain
        CLI runs; the scan daemon fills it with request metadata.
        """
        return {
            "schema_version": SCHEMA_VERSION,
            "tool": self.tool_version,
            "target": self.target,
            "service": None,
            "summary": {
                "files": self.total_files,
                "lines": self.total_lines,
                "seconds": round(self.total_seconds, 4),
                "candidates": len(self.outcomes),
                "real_vulnerabilities": len(self.real_vulnerabilities),
                "predicted_false_positives":
                    len(self.predicted_false_positives),
                "parse_errors": len(self.parse_errors),
                "parse_warnings": len(self.parse_warnings),
                "recovered_statements":
                    sum(f.recovered_statements for f in self.files),
                "resolved_includes":
                    sum(f.resolved_includes for f in self.files),
                "unresolved_includes":
                    sum(f.unresolved_includes for f in self.files),
                "by_class": dict(self.counts_by_group()),
            },
            "cache": self.cache.to_dict() if self.cache else None,
            "stats": self.stats.to_dict() if self.stats else None,
            "files": [
                file_report_dict(f, self.groups, self.target)
                for f in self.files
                if f.outcomes or f.parse_error or f.parse_warning
            ],
        }

    def render_text(self, show_paths: bool = False) -> str:
        """Human-readable report (what the CLI prints)."""
        lines = [f"== {self.tool_version} analysis of {self.target}",
                 f"   files: {self.total_files}   "
                 f"lines: {self.total_lines}   "
                 f"time: {self.total_seconds:.2f}s"]
        for file_report in self.files:
            if not file_report.outcomes and not file_report.parse_error \
                    and not file_report.parse_warning:
                continue
            lines.append(f"-- {file_report.filename}")
            if file_report.parse_error:
                lines.append(f"   parse error: {file_report.parse_error}")
            if file_report.parse_warning:
                lines.append(
                    f"   parse warning: {file_report.parse_warning} "
                    f"({file_report.recovered_statements} statement(s) "
                    f"skipped, rest of the file analyzed)")
            for outcome in file_report.outcomes:
                cand = outcome.candidate
                verdict = ("real vulnerability" if outcome.is_real
                           else "predicted false positive")
                lines.append(
                    f"   [{self.group_of(cand.vuln_class):>6}] "
                    f"line {cand.sink_line:>4} {cand.sink_name}"
                    f" <- {cand.entry_point} (line {cand.entry_line})"
                    f" : {verdict}")
                if show_paths:
                    for step in cand.path:
                        where = f"{step.file}:" if step.file and \
                            step.file != cand.filename else ""
                        lines.append(f"        {step.kind:>7} "
                                     f"{step.detail} @ {where}{step.line}")
        counts = self.counts_by_group()
        lines.append("== summary")
        for group, count in sorted(counts.items()):
            lines.append(f"   {group:>8}: {count}")
        lines.append(f"   total real: {len(self.real_vulnerabilities)}   "
                     f"predicted FPs: "
                     f"{len(self.predicted_false_positives)}")
        return "\n".join(lines)

    def render_stats(self) -> str:
        """The ``--stats`` footer (falls back to cache/prefilter lines
        when the run had no telemetry)."""
        if self.stats is not None:
            return self.stats.render()
        lines = []
        if self.cache is not None:
            lines.append(f"   cache: {self.cache.hits} hits, "
                         f"{self.cache.misses} misses, "
                         f"{self.cache.evictions} evictions, "
                         f"{self.cache.puts} puts "
                         f"(hit rate {self.cache.hit_rate * 100:.1f}%)")
        if self.prefilter is not None:
            lines.append(
                f"   prefilter: {self.prefilter.skipped} skipped, "
                f"{self.prefilter.dep_only} dep-only, "
                f"{self.prefilter.sink_bearing} sink-bearing "
                f"(skip rate {self.prefilter.skip_rate * 100:.1f}%)")
        if not lines:
            return ""
        return "\n".join(["== scan statistics"] + lines)
