"""SARIF 2.1.0 export: findings in the lingua franca of code review.

Every modern code-review surface (GitHub code scanning, VS Code SARIF
viewers, Gerrit checks) ingests SARIF, so the tool's reports should not
need a bespoke adapter per consumer.  :func:`report_to_sarif` converts
any report dict the tool can read (the input is upgraded to the current
schema first) into one SARIF run:

* one ``rule`` per vulnerability class that actually fired, so viewers
  group findings the way the paper's tables do;
* one ``result`` per finding — real vulnerabilities at ``error`` level,
  predicted false positives demoted to ``note`` so they render as
  informational rather than blocking;
* the full data-flow path as a ``codeFlow`` (one thread flow, one
  location per taint hop), which is what makes the finding reviewable
  without re-running the tool;
* the v3 stable fingerprint as ``partialFingerprints`` under the
  :data:`~repro.tool.report.FINGERPRINT_ALGORITHM` key, so SARIF
  consumers track finding identity across commits exactly like the
  tool's own baseline diff does.

Determinism: ``results`` are sorted by fingerprint (then sink line for
the impossible tie), ``rules`` by id — two scans that agree on every
finding serialize byte-identically.

All location URIs are target-relative POSIX paths
(:func:`~repro.tool.report.normalize_finding_path`), never absolute:
the SARIF file must mean the same thing on the machine that reads it as
on the machine that wrote it.
"""

from __future__ import annotations

import os

from repro.tool.report import (
    FINGERPRINT_ALGORITHM,
    normalize_finding_path,
    upgrade_report_dict,
)

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: SARIF result level per predictor verdict.
_LEVELS = {"real": "error", "false_positive": "note"}


def _location(uri: str, line) -> dict:
    region = {"startLine": int(line)} if isinstance(line, int) \
        and line > 0 else {"startLine": 1}
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": uri},
            "region": region,
        },
    }


def _code_flow(finding: dict, uri: str, target: str) -> dict:
    locations = []
    for step in finding.get("path") or ():
        hop_file = step.get("file")
        hop_uri = normalize_finding_path(str(hop_file), target) \
            if hop_file else uri
        location = _location(hop_uri, step.get("line"))
        location["message"] = {
            "text": f"{step.get('kind', '?')}: {step.get('detail', '')}"}
        locations.append({"location": location})
    return {"threadFlows": [{"locations": locations}]}


def _result(finding: dict, entry_path: str, target: str) -> dict:
    uri = normalize_finding_path(entry_path, target)
    verdict = finding.get("verdict", "real")
    group = finding.get("group", str(finding.get("class", "")).upper())
    message = (f"{group}: tainted data from "
               f"{finding.get('entry_point', '?')} (line "
               f"{finding.get('entry_line', '?')}) reaches "
               f"{finding.get('sink', '?')}")
    if verdict != "real":
        message += " [predicted false positive]"
    result = {
        "ruleId": str(finding.get("class", "")),
        "level": _LEVELS.get(verdict, "warning"),
        "message": {"text": message},
        "locations": [_location(uri, finding.get("sink_line"))],
        "partialFingerprints": {
            FINGERPRINT_ALGORITHM: finding.get("fingerprint", "")},
    }
    if finding.get("path"):
        result["codeFlows"] = [_code_flow(finding, uri, target)]
    return result


def report_to_sarif(data: dict) -> dict:
    """Convert a report dict (any readable version) to a SARIF log.

    Raises :class:`~repro.exceptions.ReportSchemaError` on input this
    tool cannot read, exactly like :func:`upgrade_report_dict`.
    """
    data = upgrade_report_dict(data)
    target = str(data.get("target", ""))

    classes: dict[str, str] = {}
    results: list[dict] = []
    for entry in data.get("files") or ():
        entry_path = str(entry.get("path", ""))
        for finding in entry.get("findings") or ():
            class_id = str(finding.get("class", ""))
            classes.setdefault(
                class_id,
                str(finding.get("group", class_id.upper())))
            results.append(_result(finding, entry_path, target))
    results.sort(key=lambda r: (
        r["partialFingerprints"][FINGERPRINT_ALGORITHM],
        r["locations"][0]["physicalLocation"]["region"]["startLine"]))

    rules = [
        {
            "id": class_id,
            "name": class_id.upper(),
            "shortDescription": {
                "text": f"{group} input validation vulnerability"},
            "properties": {"group": group},
        }
        for class_id, group in sorted(classes.items())
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "wape",
                        "version": str(data.get("tool", "")),
                        "rules": rules,
                    },
                },
                "originalUriBaseIds": {
                    "SRCROOT": {
                        "description": {
                            "text": f"scan target: "
                                    f"{os.path.basename(target) or target}"
                        },
                    },
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            },
        ],
    }


def write_sarif(path: str, data: dict) -> None:
    """Serialize :func:`report_to_sarif` output of *data* to *path*.

    Keys are emitted sorted so repeated exports of the same findings
    are byte-identical files.
    """
    import json

    with open(path, "w", encoding="utf-8") as f:
        json.dump(report_to_sarif(data), f, indent=2, sort_keys=True)
        f.write("\n")
