"""Tool facades: WAP v2.1 emulation, WAPe, reports and the CLI."""

from repro.tool.report import (  # noqa: F401
    AnalysisReport,
    CandidateOutcome,
    FileReport,
)
from repro.tool.wap import Wap21, Wape  # noqa: F401

__all__ = [
    "Wap21",
    "Wape",
    "AnalysisReport",
    "FileReport",
    "CandidateOutcome",
]
