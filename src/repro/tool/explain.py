"""``wape-explain``: explainable provenance for flagged candidates.

Re-analyzes one or more PHP files and prints, for every candidate, the
full decision trace the pipeline followed: where the taint was born, how
it propagated (and why each traversed function did *not* sanitize it),
which validation guards were recorded as symptoms, where it reached a
sink, and what the false-positive predictor decided on which symptom
vector.

Examples::

    wape explain app/index.php
    wape explain --class sqli --line 42 app/index.php
    wape explain --sanitizer sqli:escape app/   # §V-A
    wape explain --json app/view.php
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.exceptions import ReproError
from repro.tool.cli import build_tool, resolve_weapons
from repro.tool.report import AnalysisReport
from repro.tool.wap import Wape


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wape explain",
        description="explain every decision behind each candidate "
                    "vulnerability: source, propagation, sanitization "
                    "checks, guards, sink, predictor verdict",
    )
    parser.add_argument("targets", nargs="+",
                        help="PHP files or directories to explain")
    parser.add_argument("--class", dest="vuln_class", default=None,
                        metavar="ID",
                        help="only candidates of this class (e.g. sqli)")
    parser.add_argument("--line", type=int, default=None, metavar="N",
                        help="only candidates whose sink is on line N")
    parser.add_argument("--weapon-dir", action="append", default=[],
                        metavar="DIR",
                        help="load a weapon bundle directory "
                             "(may be repeated)")
    parser.add_argument("--sanitizer", action="append", default=[],
                        metavar="CLASS:FUNC",
                        help="treat FUNC as a sanitization function for "
                             "CLASS (e.g. sqli:escape)")
    parser.add_argument("--symptom", action="append", default=[],
                        metavar="FUNC:STATIC",
                        help="dynamic symptom: user FUNC behaves like "
                             "static symptom STATIC")
    parser.add_argument("--json", action="store_true",
                        help="emit provenance records as JSON")
    return parser


def _class_sanitizers(tool: Wape) -> dict[str, frozenset[str]]:
    """class id -> registered sanitizer names, from the armed config."""
    out: dict[str, set[str]] = {}
    for group in tool._config_groups():
        for cfg in group.configs:
            out.setdefault(cfg.class_id, set()).update(cfg.sanitizers)
    # the RFI/LFI split renames rfi candidates; share the sanitizer set
    if "rfi" in out:
        out.setdefault("lfi", set()).update(out["rfi"])
    return {cls: frozenset(names) for cls, names in out.items()}


def explain_report(report: AnalysisReport, tool: Wape,
                   vuln_class: str | None = None,
                   line: int | None = None) -> list:
    """Provenance records for (a filtered subset of) a report."""
    sanitizers = _class_sanitizers(tool)
    out = []
    for outcome in report.outcomes:
        cand = outcome.candidate
        if vuln_class and cand.vuln_class != vuln_class:
            continue
        if line is not None and cand.sink_line != line:
            continue
        out.append(cand.provenance(
            outcome.prediction,
            sanitizers.get(cand.vuln_class, frozenset())))
    return out


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)

    registry, weapon_flags, rest = resolve_weapons(argv)
    args = build_arg_parser().parse_args(rest)

    try:
        tool = build_tool(args, weapon_flags, registry)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    from repro.analysis.options import ScanOptions
    provenances = []
    for target in args.targets:
        if os.path.isdir(target):
            report = tool.analyze_tree(target, ScanOptions(jobs=1))
        else:
            report = tool.analyze_file(target)
        provenances.extend(explain_report(report, tool,
                                          args.vuln_class, args.line))

    if args.json:
        print(json.dumps([p.to_dict() for p in provenances], indent=2))
    else:
        if not provenances:
            print("no matching candidates")
        for i, prov in enumerate(provenances):
            if i:
                print()
            print(prov.render())
    return 0 if provenances or args.json else 1


if __name__ == "__main__":  # pragma: no cover
    print("note: `python -m repro.tool.explain` is deprecated; "
          "use `wape explain`", file=sys.stderr)
    sys.exit(main())
