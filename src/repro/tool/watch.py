"""``wape watch``: continuous scanning at the edit loop.

The warm incremental path (:class:`repro.api.Scanner`) re-scans a dirty
include-closure in tens of milliseconds — this command finally points a
consumer at it.  A stdlib-only polling watcher stats the tree on an
interval, debounces bursts of writes (editors save twice, ``git
checkout`` touches hundreds of files), feeds the settled tree to one
warm scanner, and reports the *findings delta* — what an edit broke or
fixed — instead of re-printing the whole report every cycle.

The polling design is deliberate: inotify/kqueue need platform code or
third-party packages, while one ``os.stat`` per file per interval is
exactly the check the scanner's own snapshot does and costs microseconds
per file.  The watcher's stat pass is only a *trigger*; the scanner
re-verifies by content hash, so a spurious mtime change costs one no-op
warm scan, never a wrong delta.

Every cycle appends a ``mode: "watch"`` record to the run ledger (so
``wape history`` can trend the edit loop separately from batch scans)
and, with ``--log``, emits ``watch_started``/``watch_cycle`` JSONL
events correlated by run id.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from dataclasses import dataclass

from repro.api import FindingsDelta, Scanner, ScanResult
from repro.obs.log import NULL_LOG


@dataclass(frozen=True)
class WatchCycle:
    """One completed watch cycle: the filesystem changed, we rescanned.

    Attributes:
        cycle: 1-based cycle counter.
        delta: findings delta against the previous cycle's report (empty
            when the edit changed no finding — a comment, whitespace).
        result: the underlying :class:`~repro.api.ScanResult`, for the
            incremental facts (files re-analyzed, seconds).
    """

    cycle: int
    delta: FindingsDelta
    result: ScanResult


class Watcher:
    """Polls one root and turns settled edits into findings deltas.

    Drivable two ways: :meth:`run` is the CLI loop; :meth:`start` +
    :meth:`poll` are the steppable surface tests and embedders use (no
    sleeps hidden from the caller beyond debounce settling).

    Args:
        scanner: a warm :class:`~repro.api.Scanner` (its options decide
            jobs/caching for the cold first scan).
        root: directory to watch.
        interval: seconds between stat passes in :meth:`run`.
        debounce: after a change is first seen, the tree must hold still
            this long before the rescan fires (edit bursts coalesce
            into one cycle).
        logger: a :class:`repro.obs.JsonlLogger` for structured events.
        ledger: a :class:`repro.obs.RunLedger` receiving one ``watch``
            record per cycle; ``None`` disables ledger writes.
        fingerprint: the tool's config fingerprint for ledger records
            (computed lazily from the scanner's tool when omitted).
    """

    def __init__(self, scanner: Scanner, root: str, *,
                 interval: float = 0.5, debounce: float = 0.2,
                 logger=NULL_LOG, ledger=None,
                 fingerprint: str | None = None) -> None:
        import os

        self.scanner = scanner
        self.root = os.path.abspath(root)
        self.interval = interval
        self.debounce = debounce
        self.logger = logger
        self.ledger = ledger
        if fingerprint is None:
            from repro.analysis.pipeline import config_fingerprint
            fingerprint = config_fingerprint(
                scanner.tool._config_groups(), scanner.tool.version)
        self.fingerprint = fingerprint
        self.cycles = 0
        self._baseline: dict | None = None
        self._signature: dict | None = None

    # ------------------------------------------------------------------
    def _stat_signature(self) -> dict:
        """(mtime_ns, size) per discovered file — the change trigger."""
        import os

        from repro.analysis.pipeline import ScanScheduler

        signature = {}
        for path in ScanScheduler.discover(self.root):
            try:
                st = os.stat(path)
            except OSError:
                signature[path] = None
                continue
            signature[path] = (st.st_mtime_ns, st.st_size)
        return signature

    # ------------------------------------------------------------------
    def start(self) -> ScanResult:
        """The initial (usually cold) scan establishing the baseline."""
        result = self.scanner.scan(self.root)
        self._baseline = result.to_dict()
        self._signature = self._stat_signature()
        summary = self._baseline["summary"]
        self.logger.info(
            "watch_started", root=self.root, files=summary["files"],
            candidates=summary["candidates"],
            real=summary["real_vulnerabilities"],
            incremental=result.incremental,
            seconds=round(result.seconds, 6))
        return result

    def poll(self, sleep=time.sleep) -> WatchCycle | None:
        """One watch step: detect, debounce, rescan, diff.

        Returns ``None`` when the tree is unchanged; otherwise waits for
        the tree to settle (two identical stat passes *debounce* apart),
        rescans against warm state, and returns the cycle.  *sleep* is
        injectable so tests drive debouncing without wall-clock waits.
        """
        if self._baseline is None:
            raise RuntimeError("Watcher.poll() before Watcher.start()")
        signature = self._stat_signature()
        if signature == self._signature:
            return None
        while True:  # debounce: wait out the write burst
            sleep(self.debounce)
            settled = self._stat_signature()
            if settled == signature:
                break
            signature = settled
        self._signature = signature

        result = self.scanner.scan(self.root)
        data = result.to_dict()
        delta = result.diff(self._baseline)
        self._baseline = data
        self.cycles += 1
        cycle = WatchCycle(self.cycles, delta, result)
        self.logger.info(
            "watch_cycle", cycle=cycle.cycle, root=self.root,
            new=len(delta.new), fixed=len(delta.fixed),
            unchanged=len(delta.unchanged),
            analyzed=result.analyzed_files, reused=result.reused_files,
            incremental=result.incremental,
            seconds=round(result.seconds, 6))
        self._record(cycle)
        return cycle

    def run(self, stop: threading.Event | None = None,
            max_cycles: int | None = None, on_cycle=None) -> int:
        """The watch loop: poll every ``interval`` until stopped.

        Stops when *stop* is set or after *max_cycles* completed cycles
        (``None`` runs forever); *on_cycle* is called with each
        :class:`WatchCycle`.  Returns the number of cycles run.
        """
        stop = stop if stop is not None else threading.Event()
        while not stop.is_set():
            cycle = self.poll()
            if cycle is not None:
                if on_cycle is not None:
                    on_cycle(cycle)
                if max_cycles is not None and self.cycles >= max_cycles:
                    break
            stop.wait(self.interval)
        return self.cycles

    # ------------------------------------------------------------------
    def _record(self, cycle: WatchCycle) -> None:
        if self.ledger is None:
            return
        from repro.obs import build_record, new_run_id

        record = build_record(
            cycle.result.report, run_id=new_run_id(),
            fingerprint=self.fingerprint,
            jobs=1,  # warm re-scans always run in-process
            seconds=cycle.result.seconds, target=self.root,
            mode="watch")
        record["watch"] = {
            "cycle": cycle.cycle,
            "new": len(cycle.delta.new),
            "fixed": len(cycle.delta.fixed),
            "unchanged": len(cycle.delta.unchanged),
            "analyzed_files": cycle.result.analyzed_files,
            "reused_files": cycle.result.reused_files,
        }
        self.ledger.append(record)
        self.logger.debug("ledger_appended", path=self.ledger.path,
                          cycle=cycle.cycle)


# ---------------------------------------------------------------------------
# the CLI command
# ---------------------------------------------------------------------------

def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wape watch",
        description="continuously scan ROOT: poll for edits, re-analyze "
                    "only the dirty include-closure against warm state, "
                    "and print findings deltas (new/fixed) per edit",
    )
    parser.add_argument("root", help="PHP project directory to watch")
    parser.add_argument("--interval", type=float, default=0.5,
                        metavar="SECONDS",
                        help="seconds between filesystem polls "
                             "(default: 0.5)")
    parser.add_argument("--debounce", type=float, default=0.2,
                        metavar="SECONDS",
                        help="quiet time required after a change before "
                             "rescanning (default: 0.2)")
    parser.add_argument("--max-cycles", type=int, default=None,
                        metavar="N",
                        help="exit after N change cycles (default: run "
                             "until interrupted)")
    parser.add_argument("--original", action="store_true",
                        help="watch with the original WAP v2.1")
    parser.add_argument("--weapon-dir", action="append", default=[],
                        metavar="DIR",
                        help="load a weapon bundle directory "
                             "(may be repeated)")
    parser.add_argument("--sanitizer", action="append", default=[],
                        metavar="CLASS:FUNC",
                        help="treat FUNC as a sanitization function for "
                             "CLASS")
    parser.add_argument("--symptom", action="append", default=[],
                        metavar="FUNC:STATIC",
                        help="dynamic symptom: FUNC behaves like STATIC")
    parser.add_argument("--kb", metavar="DIR",
                        help="load the vulnerability-class knowledge "
                             "base from DIR")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for the cold first scan "
                             "(warm cycles always run in-process; "
                             "default: 1)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="share the on-disk result cache with batch "
                             "scans (default: ~/.cache/wape)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk caches entirely")
    parser.add_argument("--no-includes", action="store_true",
                        help="disable static include/require resolution")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON line per event "
                             "(watch_started, watch_cycle with the full "
                             "delta) instead of text")
    parser.add_argument("--log", metavar="FILE", default=None,
                        help="append structured JSONL events (run id, "
                             "cycle records) to FILE")
    parser.add_argument("--log-level", default="info",
                        choices=("debug", "info", "warning", "error"),
                        help="minimum level recorded by --log "
                             "(default: info)")
    parser.add_argument("--ledger", metavar="FILE", default=None,
                        help="append one record per watch cycle to FILE "
                             "(default: ledger.jsonl under the cache "
                             "dir)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="do not record watch cycles in the ledger")
    return parser


def main(argv: list[str] | None = None) -> int:
    import os

    from repro.exceptions import ReproError
    from repro.tool.cli import build_tool, resolve_weapons

    argv = list(sys.argv[1:] if argv is None else argv)
    registry, weapon_flags, rest = resolve_weapons(argv)
    args = build_arg_parser().parse_args(rest)
    if not os.path.isdir(args.root):
        print(f"error: not a directory: {args.root}", file=sys.stderr)
        return 2
    try:
        tool = build_tool(args, weapon_flags, registry)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.no_cache:
        cache_dir = None
    elif args.cache_dir:
        cache_dir = args.cache_dir
    else:
        cache_dir = os.path.join(
            os.environ.get("XDG_CACHE_HOME")
            or os.path.join(os.path.expanduser("~"), ".cache"),
            "wape")

    from repro.analysis.options import ScanOptions
    from repro.obs import JsonlLogger, RunLedger, default_ledger_path, \
        new_run_id

    run_id = new_run_id().replace("run-", "watch-", 1)
    logger = JsonlLogger(path=args.log, level=args.log_level,
                         run_id=run_id) if args.log else NULL_LOG
    ledger = None
    if not args.no_ledger:
        if args.ledger:
            ledger = RunLedger(args.ledger)
        elif cache_dir:
            ledger = RunLedger(default_ledger_path(cache_dir))

    scanner = Scanner(tool, ScanOptions(
        jobs=args.jobs, cache_dir=cache_dir,
        includes=not args.no_includes, log=logger, run_id=run_id))
    watcher = Watcher(scanner, args.root, interval=args.interval,
                      debounce=args.debounce, logger=logger,
                      ledger=ledger)

    first = watcher.start()
    summary = first.report
    if args.json:
        print(json.dumps({
            "event": "watch_started", "root": watcher.root,
            "run_id": run_id, "files": summary.total_files,
            "candidates": len(summary.outcomes),
            "real": len(summary.real_vulnerabilities),
            "seconds": round(first.seconds, 6)}, sort_keys=True),
            flush=True)
    else:
        print(f"wape watch: {summary.total_files} files, "
              f"{len(summary.outcomes)} findings "
              f"({len(summary.real_vulnerabilities)} real) under "
              f"{watcher.root}", flush=True)
        print(f"wape watch: polling every {args.interval:g}s "
              f"(debounce {args.debounce:g}s); Ctrl-C to stop",
              flush=True)

    def on_cycle(cycle: WatchCycle) -> None:
        if args.json:
            print(json.dumps({
                "event": "watch_cycle", "cycle": cycle.cycle,
                "run_id": run_id,
                "analyzed_files": cycle.result.analyzed_files,
                "reused_files": cycle.result.reused_files,
                "seconds": round(cycle.result.seconds, 6),
                "delta": cycle.delta.to_dict()}, sort_keys=True),
                flush=True)
            return
        print(f"[cycle {cycle.cycle}] {cycle.delta.summary_line()} "
              f"({cycle.result.analyzed_files} files re-analyzed in "
              f"{cycle.result.seconds:.3f}s)", flush=True)
        if cycle.delta.changed:
            print(cycle.delta.render_text(), flush=True)

    try:
        watcher.run(max_cycles=args.max_cycles, on_cycle=on_cycle)
    except KeyboardInterrupt:
        if not args.json:
            print(f"wape watch: stopped after {watcher.cycles} "
                  f"cycle(s)", flush=True)
    finally:
        logger.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
