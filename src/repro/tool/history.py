"""``wape history``: trend tables and regression gates over the ledger.

Every ``wape scan`` of a directory appends one record to the run ledger
(:mod:`repro.obs.ledger`); this command reads it back:

    wape history                      # trend table, newest 20 runs
    wape history --limit 50           # more history
    wape history --check              # rolling-baseline regression gate
    wape history --check --tolerance 0.25
    wape history --json               # raw records for scripting

``--check`` compares the newest record against the median of its own
same-configuration predecessors and exits 1 when a phase time or cache
hit rate regressed beyond the tolerance — the same gate ``make
bench-check`` runs in CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.obs import (
    RunLedger,
    default_ledger_path,
    detect_regressions,
    render_history,
)


def _default_path() -> str:
    cache_dir = os.path.join(
        os.environ.get("XDG_CACHE_HOME")
        or os.path.join(os.path.expanduser("~"), ".cache"),
        "wape")
    return default_ledger_path(cache_dir)


def build_history_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wape history",
        description="render scan-ledger trends and check for regressions")
    parser.add_argument("--ledger", metavar="FILE", default=None,
                        help="ledger file to read (default: ledger.jsonl "
                             "under the cache dir)")
    parser.add_argument("--limit", type=int, default=20, metavar="N",
                        help="newest N records to show (default: 20)")
    parser.add_argument("--check", action="store_true",
                        help="run the rolling-baseline regression "
                             "detector on the newest record; exit 1 when "
                             "it regressed")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        metavar="FRAC",
                        help="relative phase-time slack before --check "
                             "flags (default: 0.5 = +50%%)")
    parser.add_argument("--rate-tolerance", type=float, default=0.15,
                        metavar="FRAC",
                        help="absolute cache hit-rate drop before "
                             "--check flags (default: 0.15)")
    parser.add_argument("--json", action="store_true",
                        help="emit the raw records as JSON")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_history_parser().parse_args(
        list(sys.argv[1:] if argv is None else argv))
    path = args.ledger or _default_path()
    records = RunLedger(path).load()
    if args.json:
        print(json.dumps(records[-args.limit:], indent=2))
    else:
        print(f"ledger: {path} ({len(records)} records)")
        print(render_history(records, limit=args.limit))
    if not args.check:
        return 0
    regressions = detect_regressions(records,
                                     tolerance=args.tolerance,
                                     rate_tolerance=args.rate_tolerance)
    if not regressions:
        print("check: no regressions against the rolling baseline")
        return 0
    print(f"check: {len(regressions)} regression(s) in "
          f"{regressions[0].run_id}:")
    for regression in regressions:
        print(f"  {regression.describe()}")
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
