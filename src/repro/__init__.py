"""repro — reproduction of *Equipping WAP with WEAPONS to Detect
Vulnerabilities* (Medeiros, Neves, Correia — DSN 2016).

A modular, extensible static-analysis tool for PHP web applications:

* :mod:`repro.php` — PHP lexer/parser/AST (the ANTLR substrate of the paper);
* :mod:`repro.analysis` — taint analysis producing candidate vulnerabilities;
* :mod:`repro.vulnerabilities` — the 15 vulnerability classes and the three
  detector sub-modules of Fig. 2;
* :mod:`repro.mining` — the data-mining false positive predictor (Tables I-III);
* :mod:`repro.corrector` — fix templates and source-code correction;
* :mod:`repro.weapons` — the weapon generator and builtin weapons (§III-D);
* :mod:`repro.tool` — the WAP v2.1 and WAPe tool facades and CLI;
* :mod:`repro.corpus` — synthetic evaluation corpus (web apps + WP plugins).

Quickstart::

    from repro import Wape
    tool = Wape()
    report = tool.analyze_source(
        '<?php $id = $_GET["id"]; '
        'mysql_query("SELECT * FROM t WHERE id=$id");')
    for vuln in report.real_vulnerabilities:
        print(vuln.vuln_class, vuln.sink_line)
"""

from repro.exceptions import (  # noqa: F401
    ClassifierError,
    CorpusError,
    CorrectionError,
    DatasetError,
    FixTemplateError,
    KnowledgeBaseError,
    PhpSyntaxError,
    ReproError,
    WeaponConfigError,
)

__version__ = "1.0.0"


def __getattr__(name: str):  # lazy re-exports to avoid import cycles
    if name in ("Wape", "Wap21", "AnalysisReport"):
        from repro.tool import AnalysisReport, Wap21, Wape
        return {"Wape": Wape, "Wap21": Wap21,
                "AnalysisReport": AnalysisReport}[name]
    if name == "WeaponSpec":
        from repro.weapons import WeaponSpec
        return WeaponSpec
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
