"""Findings deltas: what changed between two scans.

The continuous-scanning surfaces — ``wape watch``, ``wape scan
--baseline`` and the daemon's ``baseline`` field — all answer the same
question: *which findings are new, which are fixed, which just moved?*
The v3 report schema's stable fingerprints make that a set difference:
two findings are the same finding iff their fingerprints match, no
matter how many lines shifted, which checkout produced the report or
which order the files were scanned in.

:func:`diff_reports` is the one implementation; everything else
(:meth:`repro.api.Scanner` results, the CLI gate, the service, the
watcher) goes through it.  Both inputs are passed through
:func:`~repro.tool.report.upgrade_report_dict` first, so a committed
v2 baseline diffs cleanly against a fresh v3 report — the upgrade
computes the baseline's fingerprints from its own material.

Delta lists are sorted by fingerprint: repeated diffs of byte-identical
reports render byte-identically, which is what lets CI logs and the run
ledger treat a delta as a stable artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tool.report import normalize_finding_path, upgrade_report_dict


def _index(data: dict) -> dict[str, dict]:
    """fingerprint → finding (augmented with its target-relative file)."""
    target = str(data.get("target", ""))
    out: dict[str, dict] = {}
    for entry in data.get("files") or ():
        rel = normalize_finding_path(str(entry.get("path", "")), target)
        for finding in entry.get("findings") or ():
            fingerprint = finding.get("fingerprint")
            if isinstance(fingerprint, str) and fingerprint:
                out[fingerprint] = {**finding, "file": rel}
    return out


@dataclass(frozen=True)
class FindingsDelta:
    """The difference between a scan and a baseline, by fingerprint.

    Attributes:
        new: findings in the current report whose fingerprint the
            baseline does not know — the only thing a CI gate should
            fail on.
        fixed: baseline findings whose fingerprint vanished.
        unchanged: findings present on both sides (the current report's
            copy — its lines are the fresh ones).
        report: the current report dict the delta was computed from,
            when the producer had it (``ServiceClient.scan(baseline=…)``
            keeps it here); ignored by equality.

    Every element is a v3 ``findings[]`` dict plus a ``file`` key: the
    finding's target-relative POSIX path.  All three tuples are sorted
    by fingerprint.
    """

    new: tuple[dict, ...] = ()
    fixed: tuple[dict, ...] = ()
    unchanged: tuple[dict, ...] = ()
    report: dict | None = field(default=None, compare=False, repr=False)

    # ------------------------------------------------------------------
    @property
    def changed(self) -> bool:
        return bool(self.new or self.fixed)

    @property
    def new_real(self) -> tuple[dict, ...]:
        """New findings the predictor did not wave off — the CI gate."""
        return tuple(f for f in self.new if f.get("verdict") == "real")

    def summary_line(self) -> str:
        return (f"+{len(self.new)} new, -{len(self.fixed)} fixed, "
                f"{len(self.unchanged)} unchanged")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable delta (the report's ``delta`` block)."""
        return {
            "new": list(self.new),
            "fixed": list(self.fixed),
            "unchanged": list(self.unchanged),
            "counts": {"new": len(self.new), "fixed": len(self.fixed),
                       "unchanged": len(self.unchanged)},
        }

    @classmethod
    def from_dict(cls, data: dict,
                  report: dict | None = None) -> "FindingsDelta":
        """Rebuild a delta from its :meth:`to_dict` form."""
        if not isinstance(data, dict):
            return cls(report=report)
        return cls(new=tuple(data.get("new") or ()),
                   fixed=tuple(data.get("fixed") or ()),
                   unchanged=tuple(data.get("unchanged") or ()),
                   report=report)

    # ------------------------------------------------------------------
    def render_text(self) -> str:
        """Human-readable delta (what ``--baseline`` and watch print)."""
        lines = [f"== findings delta: {self.summary_line()}"]

        def describe(sign: str, finding: dict) -> str:
            verdict = ("real" if finding.get("verdict") == "real"
                       else "predicted FP")
            return (f"  {sign} [{finding.get('group', '?'):>6}] "
                    f"{finding.get('file', '?')}:"
                    f"{finding.get('sink_line', '?')} "
                    f"{finding.get('sink', '?')}"
                    f" <- {finding.get('entry_point', '?')}"
                    f" ({verdict})  fp={finding.get('fingerprint', '?')}")

        for finding in self.new:
            lines.append(describe("+", finding))
        for finding in self.fixed:
            lines.append(describe("-", finding))
        return "\n".join(lines)


def diff_reports(current: dict, baseline: dict) -> FindingsDelta:
    """Diff two report dicts into a :class:`FindingsDelta`.

    Both sides are upgraded to the current schema first (so the
    baseline may be any version this tool can read); the current report
    rides along on the returned delta.  Raises
    :class:`~repro.exceptions.ReportSchemaError` on a malformed side —
    callers turn that into their surface's "bad baseline" error.
    """
    current = upgrade_report_dict(current)
    baseline = upgrade_report_dict(baseline)
    now, base = _index(current), _index(baseline)
    return FindingsDelta(
        new=tuple(now[fp] for fp in sorted(set(now) - set(base))),
        fixed=tuple(base[fp] for fp in sorted(set(base) - set(now))),
        unchanged=tuple(now[fp] for fp in sorted(set(now) & set(base))),
        report=current,
    )
