"""Warm, incremental project scanning for embedders and the daemon.

A cold ``wape scan`` pays three big fixed costs on every invocation:
interpreter + import time, predictor training (the dominant term — the
classifiers of §III-B are fit when the tool is constructed), and a full
tree analysis.  :class:`Scanner` amortizes all three: it holds one
configured tool and, per scanned root, the *warm state* of the last scan —
the file snapshot, the resolved include graph and every per-file result.
A repeat scan then

1. re-stats the tree and re-hashes only files whose ``(mtime, size)``
   changed,
2. patches the include graph incrementally
   (:func:`~repro.analysis.includes.update_include_graph`) when the file
   set is unchanged, rebuilding it only when files appeared/disappeared,
3. re-analyzes exactly the files whose
   :func:`~repro.analysis.pipeline.closure_key` changed — the edited
   files plus everything whose include closure reaches them — and reuses
   every other result verbatim,
4. re-runs the false-positive predictor over all candidates (memoized, so
   unchanged candidates cost a dict lookup) and builds the report through
   the same code path as the batch pipeline.

Sharing :func:`closure_key` with :class:`~repro.analysis.pipeline
.ScanScheduler` is what makes the warm path trustworthy: the scheduler
and the scanner agree byte-for-byte on what invalidates a file, so a warm
scan can never reuse a result the batch pipeline would have recomputed.

Scans themselves are not thread-safe — the daemon serializes them
through a single worker thread per :class:`Scanner` — but the *warm
state* is guarded by a lock so read-only observers (:meth:`roots`,
:meth:`root_info`, the daemon's ``/v1/health`` and ``/v1/status``
handlers) may run concurrently with a scan: state is only ever published
as a whole fresh :class:`_RootState` under the lock, and observers copy
references under the same lock before touching them.  A concurrent edit
*during* a scan is safe in the conservative direction: the snapshot is
taken before analysis, so the file hashes as dirty again on the next
scan.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from repro.analysis.detector import FileResult
from repro.analysis.includes import (
    IncludeGraph,
    build_include_graph,
    update_include_graph,
)
from repro.analysis.options import ScanOptions
from repro.analysis.pipeline import (
    CRASH_ERROR,
    FusedDetector,
    ResultCache,
    ScanScheduler,
    closure_key,
    config_fingerprint,
)
from repro.analysis.prefilter import (
    TIER_SINK_BEARING,
    RelevancePrefilter,
    matcher_for,
)
from repro.analysis.summaries import SummaryCache
from repro.php.ast_store import AstCache, AstStore
from repro.telemetry import CacheStats, build_scan_stats
from repro.tool.report import AnalysisReport


@dataclass(frozen=True)
class ScanResult:
    """One :meth:`Scanner.scan` answer: the report plus what was done.

    Attributes:
        report: the full :class:`~repro.tool.report.AnalysisReport`, the
            same object a batch ``wape scan`` of the tree would produce.
        incremental: whether warm state was reused (``False`` for the
            first scan of a root or after the tool's knowledge changed).
        analyzed_files: files actually (re-)analyzed this scan.
        reused_files: files served from warm state untouched.
        dirty: project-relative paths of the re-analyzed files — the
            edited files plus their include-closure dependents.
        seconds: wall time of the whole scan call.
    """

    report: AnalysisReport
    incremental: bool
    analyzed_files: int
    reused_files: int
    dirty: tuple[str, ...]
    seconds: float

    def service_info(self) -> dict:
        """The ``service`` block of the report schema (request fields
        — ``request_id``, ``queue_seconds`` — are filled by the daemon).
        """
        return {
            "request_id": None,
            "incremental": self.incremental,
            "analyzed_files": self.analyzed_files,
            "reused_files": self.reused_files,
            "dirty": list(self.dirty),
            "seconds": round(self.seconds, 6),
            "queue_seconds": 0.0,
        }

    def to_dict(self) -> dict:
        """Schema-versioned report dict with the ``service`` block set."""
        data = self.report.to_dict()
        data["service"] = self.service_info()
        return data

    def diff(self, baseline: dict) -> "FindingsDelta":
        """This scan's findings delta against a *baseline* report dict.

        The baseline may be any schema version the tool can read (it is
        upgraded — and fingerprinted — on the way in).  See
        :func:`repro.api.delta.diff_reports`.
        """
        from repro.api.delta import diff_reports
        return diff_reports(self.to_dict(), baseline)


#: snapshot entry for a file that vanished or cannot be read: always
#: hashes unequal to any real content, so the file stays dirty.
_MISSING = (0, -1, "missing")


def _line_count(path: str) -> int:
    """Raw line count for a prefilter-skipped file (batch-pipeline rule:
    newline count + 1, so reports agree byte-for-byte across paths)."""
    try:
        with open(path, "rb") as f:
            return f.read().count(b"\n") + 1
    except OSError:
        return 0


@dataclass
class _RootState:
    """Everything remembered about one scanned root between scans."""

    fingerprint: str
    snapshot: dict[str, tuple[int, int, str]]
    graph: IncludeGraph | None
    keys: dict[str, str]
    results: dict[str, FileResult] = field(default_factory=dict)
    cache: ResultCache | None = None


class Scanner:
    """A warm scanning session over one configured tool.

    Args:
        tool: the tool facade to scan with (:class:`~repro.tool.wap.Wape`
            or :class:`~repro.tool.wap.Wap21`); built fresh — predictor
            training included — when omitted.
        options: the :class:`ScanOptions` applied to every scan.  ``jobs``
            affects only cold scans (warm re-scans run in-process — the
            dirty set is almost always far too small to win from worker
            startup); a ``cache_dir`` is shared with the batch pipeline,
            so a daemon and CLI runs feed each other's caches.
    """

    def __init__(self, tool=None, options: ScanOptions | None = None
                 ) -> None:
        if tool is None:
            from repro.tool.wap import Wape
            tool = Wape()
        self.tool = tool
        self.options = options if options is not None else ScanOptions()
        self._states: dict[str, _RootState] = {}
        #: guards ``_states`` against HTTP handler threads reading warm
        #: state while the scan thread publishes a fresh one — without it
        #: ``roots()``/``root_info()`` raced scan completion ("dictionary
        #: changed size during iteration", torn multi-field reads).
        self._lock = threading.Lock()
        #: relevance verdicts carried across scan cycles, keyed by
        #: content hash (verdicts are pure functions of file bytes +
        #: knowledge fingerprint; a fingerprint change cold-scans and
        #: the stale hashes simply stop being looked up)
        self._prefilter_memo: dict[str, tuple[bool, bool]] = {}
        #: cumulative prefilter tier counts across every scan served by
        #: this scanner (the ``/v1/status`` "prefilter" block); guarded
        #: by ``_lock``
        self.prefilter_totals = {"skipped": 0, "dep_only": 0,
                                 "sink_bearing": 0}
        #: optional ``callable(FileReport)`` fired per file as its
        #: verdicts are finalized, in report order — the streaming hook
        #: behind ``POST /v1/scan?stream=1``.  Called on the scanning
        #: thread; exceptions propagate and fail the scan.
        self.on_file = None

    # ------------------------------------------------------------------
    def roots(self) -> list[str]:
        """The roots currently holding warm state."""
        with self._lock:
            return sorted(self._states)

    def forget(self, root: str | None = None) -> None:
        """Drop warm state for *root* (or for every root)."""
        with self._lock:
            if root is None:
                self._states.clear()
            else:
                self._states.pop(os.path.abspath(root), None)

    def root_info(self, root: str) -> dict:
        """Facts about one warm root (the ``/v1/status`` per-root row).

        ``approx_bytes`` estimates the state's resident size via its
        pickled length — cheap, stable, and honest enough for a status
        panel; ``None`` when the state holds something unpicklable.

        Safe to call from any thread while a scan runs: the state's
        structures are copied by reference under the lock (a scan never
        mutates a published structure, it publishes fresh ones), so the
        counts and pickles below always describe one consistent scan.
        """
        root = os.path.abspath(root)
        with self._lock:
            state = self._states.get(root)
            if state is None:
                return {"root": root, "warm": False}
            snapshot, results = state.snapshot, state.results
            graph, keys = state.graph, state.keys
        approx = None
        try:
            import pickle
            approx = len(pickle.dumps(snapshot)) \
                + len(pickle.dumps(results)) \
                + len(pickle.dumps(graph)) \
                + len(pickle.dumps(keys))
        except Exception:
            pass
        return {
            "root": root,
            "warm": True,
            "files": len(snapshot),
            "results": len(results),
            "candidates": sum(len(r.candidates)
                              for r in results.values()),
            "approx_bytes": approx,
        }

    def prefilter_info(self) -> dict:
        """Cumulative prefilter tier counts across this scanner's scans."""
        with self._lock:
            totals = dict(self.prefilter_totals)
        total = sum(totals.values())
        totals["skip_rate"] = \
            round(totals["skipped"] / total, 4) if total else 0.0
        return totals

    def _note_prefilter(self, stats) -> None:
        if stats is None:
            return
        with self._lock:
            self.prefilter_totals["skipped"] += stats.skipped
            self.prefilter_totals["dep_only"] += stats.dep_only
            self.prefilter_totals["sink_bearing"] += stats.sink_bearing

    # ------------------------------------------------------------------
    def scan(self, root: str) -> ScanResult:
        """Scan *root*, incrementally when warm state allows it."""
        start = time.perf_counter()
        root = os.path.abspath(root)
        groups = self.tool._config_groups()
        fingerprint = config_fingerprint(groups, self.tool.version)
        with self._lock:
            state = self._states.get(root)
        if state is not None and state.fingerprint != fingerprint:
            state = None  # knowledge changed: every warm result is stale
        paths = ScanScheduler.discover(root)
        snapshot = self._snapshot(paths, state)
        if state is None:
            return self._cold_scan(root, groups, fingerprint, paths,
                                   snapshot, start)
        return self._warm_scan(root, groups, fingerprint, paths, snapshot,
                               state, start)

    # ------------------------------------------------------------------
    @staticmethod
    def _snapshot(paths: list[str], state: _RootState | None
                  ) -> dict[str, tuple[int, int, str]]:
        """(mtime_ns, size, content-hash) per file, hashing lazily.

        Files whose stat signature matches the previous snapshot keep
        their recorded hash without being re-read — the common case on a
        warm re-scan is one ``stat()`` per file and zero reads.
        """
        snap: dict[str, tuple[int, int, str]] = {}
        for path in paths:
            prev = state.snapshot.get(path) if state is not None else None
            try:
                st = os.stat(path)
            except OSError:
                snap[path] = _MISSING
                continue
            if prev is not None and prev[0] == st.st_mtime_ns \
                    and prev[1] == st.st_size:
                snap[path] = prev
                continue
            try:
                with open(path, "rb") as f:
                    digest = ResultCache.content_hash(f.read())
            except OSError:
                snap[path] = _MISSING
                continue
            snap[path] = (st.st_mtime_ns, st.st_size, digest)
        return snap

    # ------------------------------------------------------------------
    def _cold_scan(self, root: str, groups, fingerprint: str,
                   paths: list[str],
                   snapshot: dict[str, tuple[int, int, str]],
                   start: float) -> ScanResult:
        """First scan of a root: the batch pipeline, then seed the state."""
        scheduler = ScanScheduler(groups, tool_version=self.tool.version,
                                  options=self.options)
        results: list[FileResult] = []
        report = self.tool.run_scheduler(scheduler, root, paths=paths,
                                         collect=results,
                                         on_file=self.on_file)
        telem = scheduler.telemetry
        telem.metrics.counter("scans_cold").inc()
        if scheduler.prefilter is not None:
            # carry the batch run's verdicts into the warm path's memo:
            # the first warm re-scan then classifies without re-reading
            # unchanged files
            self._prefilter_memo.update(scheduler.prefilter.memo)
        self._note_prefilter(report.prefilter)
        raw_hashes = {p: snapshot[p][2] for p in paths}
        graph = scheduler.include_graph
        keys = {p: closure_key(p, snapshot[p][2], graph, raw_hashes)
                for p in paths}
        with self._lock:
            self._states[root] = _RootState(
                fingerprint, snapshot, graph, keys,
                dict(zip(paths, results)), scheduler.cache)
        hits = scheduler.cache.hits if scheduler.cache else 0
        # prefilter-skipped files (irrelevant + dep-only) were neither
        # analyzed nor served from cache: keep analyzed_files honest
        skipped = (report.prefilter.skipped + report.prefilter.dep_only) \
            if report.prefilter is not None else 0
        return ScanResult(report, incremental=False,
                          analyzed_files=len(paths) - hits - skipped,
                          reused_files=hits, dirty=(),
                          seconds=time.perf_counter() - start)

    # ------------------------------------------------------------------
    def _warm_scan(self, root: str, groups, fingerprint: str,
                   paths: list[str],
                   snapshot: dict[str, tuple[int, int, str]],
                   state: _RootState, start: float) -> ScanResult:
        """Repeat scan: re-analyze only the dirty include-closure."""
        opts = self.options
        telem = opts.resolve_telemetry()
        predictor = opts.predictor or self.tool.predictor
        assert predictor is not None

        report = AnalysisReport(self.tool.version, root,
                                groups=dict(self.tool.groups))
        cache = state.cache
        stats0 = (cache.hits, cache.misses, cache.evictions, cache.puts) \
            if cache is not None else None
        with telem.tracer.span("warm_scan", phase="run",
                               root=root) as root_span:
            prev_snapshot = state.snapshot
            dirty = [p for p in paths
                     if prev_snapshot.get(p, _MISSING)[2] != snapshot[p][2]]
            with telem.tracer.span("resolve_includes", phase="link",
                                   files=len(paths), dirty=len(dirty)):
                graph = self._updated_graph(state, paths, dirty,
                                            prev_snapshot)
            raw_hashes = {p: snapshot[p][2] for p in paths}
            keys = {p: closure_key(p, snapshot[p][2], graph, raw_hashes)
                    for p in paths}
            to_run = [p for p in paths
                      if keys[p] != state.keys.get(p)
                      or p not in state.results
                      or state.results[p].parse_error == CRASH_ERROR]
            results: dict[str, FileResult] = {
                p: state.results[p] for p in paths if p not in set(to_run)}

            tiers = None
            if opts.prefilter and groups:
                prefilter = RelevancePrefilter(
                    matcher_for(groups, fingerprint), cache=state.cache,
                    memo=self._prefilter_memo)
                with telem.tracer.span("prefilter", phase="prefilter",
                                       files=len(paths)):
                    tiers = prefilter.classify(paths, graph, {},
                                               raw_hashes)
                report.prefilter = RelevancePrefilter.stats_of(tiers)
                self._note_prefilter(report.prefilter)

            skipped_run = 0
            if to_run:
                # a fresh detector per scan with changes: IncludeContext
                # memoizes dependency state, which edited files invalidate
                # (the AST store persists across scans via its disk tier)
                opts_ = self.options
                disk = AstCache(opts_.cache_dir) \
                    if (opts_.cache_dir and opts_.ast_cache) else None
                store = AstStore(
                    disk=disk,
                    metrics=telem.metrics if telem.enabled else None)
                summary_cache = SummaryCache(opts_.cache_dir, fingerprint) \
                    if (opts_.cache_dir and opts_.ast_cache
                        and opts_.summary_cache) else None
                detector = FusedDetector(groups, telemetry=telem,
                                         include_graph=graph,
                                         ast_store=store,
                                         summary_cache=summary_cache)
                with telem.tracer.span("scan", phase="scan",
                                       files=len(to_run)):
                    for path in to_run:
                        if tiers is not None and tiers.get(
                                path, TIER_SINK_BEARING) \
                                != TIER_SINK_BEARING:
                            # provably candidate-free: synthesize the
                            # clean result before the cache probe, same
                            # as the batch pipeline
                            results[path] = FileResult(
                                filename=path,
                                lines_of_code=_line_count(path))
                            skipped_run += 1
                            continue
                        cached = cache.get(keys[path], path) \
                            if cache is not None else None
                        if cached is not None:
                            results[path] = cached
                            continue
                        results[path] = detector.detect_file(path)
                        if cache is not None:
                            cache.put(keys[path], results[path])
                store.flush()
                if summary_cache is not None:
                    summary_cache.flush()
                if cache is not None:
                    cache.flush()
            if graph is not None:
                for path, result in results.items():
                    result.resolved_includes = graph.resolved.get(path, 0)
                    result.unresolved_includes = \
                        graph.unresolved.get(path, 0)
            with telem.tracer.span("predict", phase="predict",
                                   files=len(paths)):
                for path in paths:
                    file_report = self.tool._predict_result(
                        results[path], telem, predictor)
                    report.files.append(file_report)
                    if self.on_file is not None:
                        self.on_file(file_report)
        if cache is not None and stats0 is not None:
            report.cache = CacheStats(
                cache.hits - stats0[0], cache.misses - stats0[1],
                cache.evictions - stats0[2], cache.puts - stats0[3])
        if telem.enabled:
            metrics = telem.metrics
            metrics.counter("scans_incremental").inc()
            metrics.counter("files_reanalyzed").inc(len(to_run))
            metrics.counter("files_reused").inc(len(paths) - len(to_run))
            if report.prefilter is not None:
                metrics.gauge("prefilter_skipped") \
                    .set(report.prefilter.skipped)
                metrics.gauge("prefilter_dep_only") \
                    .set(report.prefilter.dep_only)
                metrics.gauge("prefilter_sink_bearing") \
                    .set(report.prefilter.sink_bearing)
            report.stats = build_scan_stats(report, telem, root_span)

        # publish the new warm state as one fresh object under the lock:
        # observers never see a half-updated snapshot/results pair
        with self._lock:
            self._states[root] = _RootState(
                fingerprint, snapshot, graph, keys, results, state.cache)
        return ScanResult(
            report, incremental=True,
            analyzed_files=len(to_run) - skipped_run,
            reused_files=len(paths) - len(to_run),
            dirty=tuple(os.path.relpath(p, root) for p in to_run),
            seconds=time.perf_counter() - start)

    def _updated_graph(self, state: _RootState, paths: list[str],
                       dirty: list[str],
                       prev_snapshot: dict) -> IncludeGraph | None:
        """The include graph for this scan, patched incrementally.

        Content-only edits re-resolve just the dirty files; any change to
        the file *set* rebuilds from scratch (a new file can steal a
        unique-basename resolution from an untouched one).
        """
        if not self.options.includes:
            return None
        if set(paths) != set(prev_snapshot):
            return build_include_graph(paths)
        if not dirty:
            return state.graph
        return update_include_graph(state.graph or IncludeGraph(),
                                    paths, dirty)
