"""The embedding API: programmatic scanning without the CLI or daemon.

This package is the stable surface both front-ends are built on — the
``wape`` command line constructs a :class:`Scanner` per process, the scan
daemon (:mod:`repro.service`) keeps one alive across requests:

* :class:`~repro.analysis.options.ScanOptions` — every tunable of a scan
  (worker count, result cache, include resolution, telemetry, predictor
  override) in one frozen value;
* :class:`~repro.api.scanner.Scanner` — holds a configured tool plus
  per-root warm state and answers :meth:`~repro.api.scanner.Scanner.scan`
  requests, re-analyzing only the dirty include-closure on repeat scans;
* :class:`~repro.api.scanner.ScanResult` — the report plus what the scan
  actually did (incremental or not, files re-analyzed vs reused);
* :class:`~repro.api.delta.FindingsDelta` — what changed between a scan
  and a baseline report, keyed by the v3 schema's stable finding
  fingerprints (:meth:`ScanResult.diff <repro.api.scanner.ScanResult
  .diff>`, :func:`~repro.api.delta.diff_reports`).

Importing :mod:`repro.api` never imports the HTTP server; embedders that
just want in-process scanning pay nothing for the service layer.
"""

from repro.analysis.options import ScanOptions  # noqa: F401
from repro.api.delta import FindingsDelta, diff_reports  # noqa: F401
from repro.api.scanner import ScanResult, Scanner  # noqa: F401

__all__ = ["FindingsDelta", "ScanOptions", "ScanResult", "Scanner",
           "diff_reports"]
