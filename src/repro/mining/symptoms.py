"""The symptom catalog of Table I.

*Symptoms* are source-code features observed on a candidate vulnerable
data-flow path — mostly PHP functions that manipulate or validate the entry
point.  *Attributes* are what the classifiers see.

* Original WAP: 15 feature attributes + 1 class attribute = **16**; the
  feature attributes summarize **24** function symptoms (a whole attribute
  group collapses to one bit).
* New WAP (this paper): every symptom is its own attribute — **60** symptom
  attributes + 1 class attribute = **61**.

Categories follow the table: ``validation``, ``string`` (string
manipulation) and ``sql`` (SQL query manipulation).
"""

from __future__ import annotations

from dataclasses import dataclass

CATEGORY_VALIDATION = "validation"
CATEGORY_STRING = "string"
CATEGORY_SQL = "sql"


@dataclass(frozen=True, slots=True)
class Symptom:
    """One symptom of Table I.

    Attributes:
        name: symptom identifier — a PHP function name, or a structural
            marker (``concat_op``, ``ComplexSQL``, ``FROM`` ...).
        attribute: the original-WAP attribute group it belongs to.
        category: validation / string / sql.
        original: True if the symptom was already in WAP v2.1's set of 24.
    """

    name: str
    attribute: str
    category: str
    original: bool


def _mk(attribute: str, category: str, original: list[str],
        new: list[str]) -> list[Symptom]:
    out = [Symptom(n, attribute, category, True) for n in original]
    out += [Symptom(n, attribute, category, False) for n in new]
    return out


#: The full Table I, row by row.
SYMPTOMS: tuple[Symptom, ...] = tuple(
    # -------------------------- validation ---------------------------
    _mk("type_checking", CATEGORY_VALIDATION,
        ["is_string", "is_int", "is_float", "is_numeric", "ctype_digit",
         "ctype_alpha", "ctype_alnum", "intval"],
        ["is_double", "is_integer", "is_long", "is_real", "is_scalar"])
    + _mk("entry_point_is_set", CATEGORY_VALIDATION,
          ["isset"],
          ["is_null", "empty"])
    + _mk("pattern_control", CATEGORY_VALIDATION,
          ["preg_match", "ereg", "eregi", "strnatcmp", "strcmp",
           "strncmp", "strncasecmp", "strcasecmp"],
          ["preg_match_all"])
    + _mk("white_list", CATEGORY_VALIDATION, [], ["user_whitelist"])
    + _mk("black_list", CATEGORY_VALIDATION, [], ["user_blacklist"])
    + _mk("error_exit", CATEGORY_VALIDATION, [], ["error", "exit"])
    # ----------------------- string manipulation ---------------------
    + _mk("extract_substring", CATEGORY_STRING,
          ["substr"],
          ["preg_split", "str_split", "explode", "split", "spliti"])
    + _mk("string_concat", CATEGORY_STRING,
          ["concat_op"],
          ["implode", "join"])
    + _mk("add_char", CATEGORY_STRING,
          ["addchar"],
          ["str_pad"])
    + _mk("replace_string", CATEGORY_STRING,
          ["substr_replace", "str_replace", "preg_replace"],
          ["preg_filter", "ereg_replace", "eregi_replace", "str_ireplace",
           "str_shuffle", "chunk_split"])
    + _mk("remove_whitespace", CATEGORY_STRING,
          ["trim"],
          ["rtrim", "ltrim"])
    # ---------------------- SQL query manipulation -------------------
    # ComplexSQL and IsNum were structural *attributes* of the original
    # WAP (not function symptoms, hence not part of the 24); in the new
    # version they are symptoms like everything else.
    + _mk("complex_query", CATEGORY_SQL, [], ["ComplexSQL"])
    + _mk("numeric_entry_point", CATEGORY_SQL, [], ["IsNum"])
    + _mk("from_clause", CATEGORY_SQL, [], ["FROM"])
    + _mk("aggregated_function", CATEGORY_SQL,
          [], ["AVG", "COUNT", "SUM", "MAX", "MIN"])
)

#: class attribute name (the 16th / 61st attribute).
CLASS_ATTRIBUTE = "class"

#: ordered original-WAP attribute groups (15 feature attributes).
ORIGINAL_ATTRIBUTE_GROUPS: tuple[str, ...] = (
    "type_checking", "entry_point_is_set", "pattern_control",
    "white_list", "black_list", "error_exit",
    "extract_substring", "string_concat", "add_char", "replace_string",
    "remove_whitespace",
    "complex_query", "numeric_entry_point", "from_clause",
    "aggregated_function",
)

_BY_NAME: dict[str, Symptom] = {s.name: s for s in SYMPTOMS}

#: PHP alias functions mapped onto their canonical symptom name.
SYMPTOM_ALIASES: dict[str, str] = {
    "sizeof": "",            # explicitly NOT a symptom (see §V-A)
    "md5": "",               # idem
    "die": "exit",
    "trigger_error": "error",
    "user_error": "error",
}


def get_symptom(name: str) -> Symptom | None:
    """Look up a symptom by (alias-resolved) name; None if not a symptom."""
    name = SYMPTOM_ALIASES.get(name, name)
    if not name:
        return None
    return _BY_NAME.get(name)


def all_symptoms() -> tuple[Symptom, ...]:
    return SYMPTOMS


def original_symptoms() -> tuple[Symptom, ...]:
    """The 24 function symptoms WAP v2.1 recognized."""
    return tuple(s for s in SYMPTOMS if s.original)


def new_symptoms() -> tuple[Symptom, ...]:
    return tuple(s for s in SYMPTOMS if not s.original)


def symptoms_by_category(category: str) -> tuple[Symptom, ...]:
    return tuple(s for s in SYMPTOMS if s.category == category)


def attribute_groups() -> dict[str, list[Symptom]]:
    """Symptoms grouped by their original attribute."""
    out: dict[str, list[Symptom]] = {g: [] for g in
                                     ORIGINAL_ATTRIBUTE_GROUPS}
    for s in SYMPTOMS:
        out[s.attribute].append(s)
    return out


def new_attribute_names() -> list[str]:
    """The 60 symptom attributes of the new WAP, in stable order."""
    return [s.name for s in SYMPTOMS]


def original_attribute_names() -> list[str]:
    """The 15 feature attributes of the original WAP, in stable order."""
    return list(ORIGINAL_ATTRIBUTE_GROUPS)
