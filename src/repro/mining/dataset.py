"""Training-set construction (§III-B1).

The paper built its 256-instance data set by running WAP in
candidate-output mode over 29 open-source applications and annotating each
candidate by hand.  Those annotations are not published, so this module
regenerates the data set the same way end-to-end (DESIGN.md substitution
#4): a battery of parameterized PHP snippets with *known* ground truth is
pushed through the real pipeline — parser → taint engine → symptom
extraction — and the resulting attribute vectors are labelled from the
snippet templates, de-noised (ambiguous vectors removed, as in the paper)
and balanced to 128 false positives + 128 real vulnerabilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DatasetError
from repro.mining.attributes import AttributeScheme, scheme_for
from repro.mining.extraction import DynamicSymptoms, extract_symptoms

LABEL_FP = 1   # "Yes" class of Table III: a false positive
LABEL_RV = 0   # real vulnerability

#: dynamic symptoms used by the snippet battery (a white-list helper, a
#: black-list helper and a user validation function).
DATASET_DYNAMIC = DynamicSymptoms(
    mapping={"val_int": "is_int"},
    whitelists=frozenset({"allowed_value"}),
    blacklists=frozenset({"blocked_value"}),
)

_TYPE_CHECKS = ["is_numeric", "is_int", "is_float", "is_string",
                "ctype_digit", "ctype_alpha", "ctype_alnum", "intval",
                "is_double", "is_integer", "is_long", "is_real",
                "is_scalar"]
_PATTERNS = ["preg_match", "ereg", "eregi", "strcmp", "strncmp",
             "strcasecmp", "strncasecmp", "strnatcmp", "preg_match_all"]
_REPLACERS = ["str_replace", "preg_replace", "substr_replace",
              "str_ireplace", "ereg_replace", "eregi_replace",
              "preg_filter"]
_SPLITTERS = ["explode", "preg_split", "str_split", "split", "spliti"]
_TRIMMERS = ["trim", "rtrim", "ltrim"]
_PADDERS = ["str_pad", "chunk_split", "str_shuffle"]
_JOINERS = ["implode", "join"]
_AGGREGATES = ["AVG", "COUNT", "SUM", "MAX", "MIN"]


@dataclass(frozen=True)
class Snippet:
    """One data-set generation unit: PHP body + ground-truth label."""

    source: str
    label: int
    template: str


@dataclass
class Dataset:
    """A vectorized training set.

    Attributes:
        X: (n, d) 0/1 attribute matrix.
        y: (n,) labels — 1 = false positive, 0 = real vulnerability.
        scheme: the attribute scheme used for vectorization.
        templates: per-instance template ids (provenance, for debugging).
    """

    X: np.ndarray
    y: np.ndarray
    scheme: AttributeScheme
    templates: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.X.shape[0] != self.y.shape[0]:
            raise DatasetError("X and y row counts differ")

    @property
    def size(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_false_positives(self) -> int:
        return int(np.sum(self.y == LABEL_FP))

    @property
    def n_real_vulnerabilities(self) -> int:
        return int(np.sum(self.y == LABEL_RV))

    def is_balanced(self) -> bool:
        return self.n_false_positives == self.n_real_vulnerabilities


# ---------------------------------------------------------------------------
# snippet battery
# ---------------------------------------------------------------------------

def generate_snippets() -> list[Snippet]:  # noqa: C901 - a data catalog
    """The deterministic snippet battery (labels known by construction)."""
    out: list[Snippet] = []

    def fp(source: str, template: str) -> None:
        out.append(Snippet(source, LABEL_FP, template))

    def rv(source: str, template: str) -> None:
        out.append(Snippet(source, LABEL_RV, template))

    # ---- FP: type-check guard around the sink ------------------------
    for i, check in enumerate(_TYPE_CHECKS):
        fp(f"if ({check}($_GET['id'])) {{\n"
           f"  mysql_query(\"SELECT name FROM users WHERE id = \""
           f" . $_GET['id']);\n}}", f"fp_typecheck_{check}")
        # variant: guard + echo (XSS flow, numeric output)
        fp(f"if ({check}($_GET['n'])) {{ echo $_GET['n']; }}",
           f"fp_typecheck_echo_{check}")

    # ---- FP: pattern guard wrapping a quoted-string query --------------
    for pat in _PATTERNS:
        fp(f"if ({pat}('/^[a-z0-9]+$/', $_GET['v'])) {{\n"
           f"  mysql_query(\"SELECT c FROM t WHERE c = '\""
           f" . $_GET['v'] . \"'\");\n}}", f"fp_pattern_if_{pat}")

    # ---- FP: pattern guard with early exit ---------------------------
    for pat in _PATTERNS:
        fp(f"if (!{pat}('/^[0-9a-z]+$/', $_GET['q'])) {{ exit('bad'); }}\n"
           f"mysql_query(\"SELECT v FROM t WHERE q = '\""
           f" . $_GET['q'] . \"'\");", f"fp_pattern_{pat}")
        fp(f"if ({pat}('/^[a-z]+$/', $_POST['u'])) {{\n"
           f"  echo \"<b>\" . $_POST['u'] . \"</b>\";\n}}",
           f"fp_pattern_echo_{pat}")

    # ---- FP: quote-stripping replacement ------------------------------
    for rep in _REPLACERS:
        fp(f"$v = {rep}(\"'\", \"\", $_GET['n']);\n"
           f"mysql_query(\"SELECT a FROM t WHERE n = '\" . $v . \"'\");",
           f"fp_replace_{rep}")

    # ---- FP: split + per-part numeric validation ----------------------
    for split in _SPLITTERS:
        fp(f"$parts = {split}(',', $_GET['ids']);\n"
           f"if (ctype_digit($parts[0])) {{\n"
           f"  mysql_query(\"SELECT x FROM t WHERE id = \" . $parts[0]);\n"
           f"}}", f"fp_split_{split}")

    # ---- FP: trimmed + validated -------------------------------------
    for trim_fn in _TRIMMERS:
        fp(f"$v = {trim_fn}($_GET['s']);\n"
           f"if (is_numeric($v)) {{\n"
           f"  mysql_query(\"SELECT b FROM t WHERE v = \" . $v);\n}}",
           f"fp_trim_{trim_fn}")
    for pad in _PADDERS:
        fp(f"$v = {pad}($_GET['s'], 8);\n"
           f"if (ctype_alnum($v)) {{ echo $v; }}", f"fp_pad_{pad}")
    for joiner in _JOINERS:
        fp(f"$parts = explode(',', $_GET['ids']);\n"
           f"$v = {joiner}('-', $parts);\n"
           f"if (ctype_digit($v)) {{\n"
           f"  mysql_query(\"SELECT c FROM t WHERE v = '\" . $v . \"'\");\n"
           f"}}", f"fp_join_{joiner}")

    # ---- FP: user white/black lists (dynamic symptoms) ----------------
    fp("if (allowed_value($_GET['cat'])) {\n"
       "  mysql_query(\"SELECT p FROM prods WHERE cat = '\""
       " . $_GET['cat'] . \"'\");\n}", "fp_whitelist")
    fp("if (!blocked_value($_GET['tag'])) {\n"
       "  echo \"<span>\" . $_GET['tag'] . \"</span>\";\n}",
       "fp_blacklist")
    fp("if (allowed_value($_POST['mode'])) { echo $_POST['mode']; }",
       "fp_whitelist_echo")
    fp("$v = val_int($_GET['page']);\n"
       "mysql_query(\"SELECT t FROM posts LIMIT \" . $v);",
       "fp_dynamic_val_int")

    # ---- FP: aggregate queries over validated numerics -----------------
    for agg in _AGGREGATES:
        fp(f"if (is_numeric($_GET['y'])) {{\n"
           f"  mysql_query(\"SELECT {agg}(v) FROM m WHERE y = \""
           f" . $_GET['y']);\n}}", f"fp_aggregate_{agg}")

    # ---- FP: combined validation, richer vectors ----------------------
    for check in _TYPE_CHECKS[:8]:
        fp(f"if (isset($_GET['k']) && {check}($_GET['k'])) {{\n"
           f"  mysql_query(\"SELECT z FROM t WHERE k = \" . $_GET['k']);\n"
           f"}}", f"fp_isset_and_{check}")
    for pat in _PATTERNS[:6]:
        fp(f"$v = trim($_GET['w']);\n"
           f"if (!{pat}('/^[0-9]+$/', $v)) {{ exit; }}\n"
           f"mysql_query(\"SELECT q FROM logs WHERE w = \" . $v);",
           f"fp_trim_then_{pat}")
    for check in ("is_numeric", "ctype_digit", "is_int", "intval"):
        fp(f"$v = substr($_GET['p'], 0, 4);\n"
           f"if ({check}($v)) {{\n"
           f"  mysql_query(\"SELECT s FROM t ORDER BY \" . $v);\n}}",
           f"fp_substr_{check}")

    # ---- RV: direct flows, no symptoms --------------------------------
    for i, (sg, key) in enumerate([("_GET", "n"), ("_POST", "u"),
                                   ("_COOKIE", "c"), ("_REQUEST", "r")]):
        rv(f"mysql_query(\"SELECT a FROM t WHERE x = '\""
           f" . ${sg}['{key}'] . \"'\");", f"rv_direct_{sg}")
        rv(f"echo ${sg}['{key}'];", f"rv_echo_{sg}")
        rv(f"$v = ${sg}['{key}'];\n"
           f"mysql_query(\"UPDATE t SET c = '\" . $v . \"' WHERE id = 1\");",
           f"rv_update_{sg}")

    # ---- RV: numeric-looking but unvalidated ---------------------------
    for key in ("id", "uid", "page", "cat"):
        rv(f"mysql_query(\"SELECT b FROM t WHERE id = \""
           f" . $_GET['{key}']);", f"rv_isnum_{key}")

    # ---- RV: string-manipulated but still injectable -------------------
    for rep in _REPLACERS[:5]:
        rv(f"$v = {rep}(\"x\", \"y\", $_GET['s']);\n"
           f"mysql_query(\"SELECT d FROM t WHERE s = '\" . $v . \"'\");",
           f"rv_replace_{rep}")
    for trim_fn in _TRIMMERS:
        rv(f"$v = {trim_fn}($_POST['s']);\n"
           f"echo \"<p>\" . $v . \"</p>\";", f"rv_trim_{trim_fn}")
    for split in _SPLITTERS[:3]:
        rv(f"$parts = {split}(',', $_GET['list']);\n"
           f"mysql_query(\"SELECT e FROM t WHERE v IN ('\""
           f" . $parts[0] . \"')\");", f"rv_split_{split}")
    rv("$v = substr($_GET['long'], 0, 64);\n"
       "mysql_query(\"SELECT f FROM t WHERE v = '\" . $v . \"'\");",
       "rv_substr")
    rv("$v = str_pad($_GET['s'], 10);\n"
       "echo $v;", "rv_pad")

    # ---- RV: complex queries -------------------------------------------
    rv("mysql_query(\"SELECT a.x FROM a JOIN b ON a.i = b.i "
       "WHERE a.n = '\" . $_GET['n'] . \"'\");", "rv_complex_join")
    rv("mysql_query(\"SELECT x FROM t WHERE u = '\" . $_POST['u'] . \"' "
       "ORDER BY ts LIMIT 5\");", "rv_complex_order")
    rv("mysql_query(\"SELECT COUNT(*) FROM hits WHERE ref = '\""
       " . $_SERVER['HTTP_REFERER'] . \"'\");", "rv_complex_count")
    rv("mysql_query(\"SELECT x FROM t WHERE id IN "
       "(SELECT id FROM u WHERE g = '\" . $_GET['g'] . \"')\");",
       "rv_complex_subselect")

    # ---- RV: hard cases — validation-looking but unsafe ----------------
    rv("if (isset($_GET['id'])) {\n"
       "  mysql_query(\"SELECT g FROM t WHERE id = \" . $_GET['id']);\n}",
       "rv_isset_only")
    rv("if (isset($_POST['q'])) { echo $_POST['q']; }",
       "rv_isset_only_echo")
    rv("if (!empty($_GET['s'])) {\n"
       "  mysql_query(\"SELECT h FROM t WHERE s = '\" . $_GET['s'] . \"'\");"
       "\n}", "rv_empty_only")
    rv("$v = trim($_GET['x']);\n"
       "if (isset($_GET['x'])) {\n"
       "  mysql_query(\"SELECT i FROM t WHERE x = '\" . $v . \"'\");\n}",
       "rv_trim_isset")
    rv("if (is_numeric($_GET['a'])) {\n"
       "  mysql_query(\"SELECT j FROM t WHERE b = '\" . $_GET['b'] . \"'\");"
       "\n}", "rv_guard_wrong_var")
    # interpolated variants
    rv("$n = $_GET['n'];\nmysql_query(\"SELECT k FROM t WHERE n = '$n'\");",
       "rv_interp")
    rv("$u = $_POST['u'];\necho \"Hello $u\";", "rv_interp_echo")
    rv("$c = $_COOKIE['sess'];\n"
       "mysql_query(\"SELECT l FROM s WHERE tok = '$c' LIMIT 1\");",
       "rv_interp_cookie")

    # ---- RV: validation-*looking* code that validates nothing ----------
    # (these produce the classifier errors of Tables II/III: a pattern /
    # comparison function is present, but used as a presence or search
    # check, so the instance is a real vulnerability that *smells* FP)
    for cmp_fn in ("strcmp", "strcasecmp", "strncmp"):
        rv(f"if ({cmp_fn}($_GET['t'], '') != 0) {{\n"
           f"  mysql_query(\"SELECT m FROM t WHERE t = '\""
           f" . $_GET['t'] . \"'\");\n}}", f"rv_cmp_presence_{cmp_fn}")
    for pat in ("preg_match", "eregi"):
        rv(f"if ({pat}('/admin/', $_GET['s'])) {{ echo $_GET['s']; }}",
           f"rv_pattern_search_{pat}")
    rv("if (!is_null($_GET['v'])) {\n"
       "  mysql_query(\"SELECT n FROM t WHERE v = '\" . $_GET['v'] . \"'\");"
       "\n}", "rv_is_null_presence")
    rv("if (is_string($_POST['bio'])) { echo $_POST['bio']; }",
       "rv_is_string_useless")
    rv("if (is_array($_GET['f'])) { exit; }\n"
       "echo $_GET['f'];", "rv_is_array_exit")
    for key in ("q", "term", "kw"):
        rv(f"$v = trim($_GET['{key}']);\n"
           f"if (!empty($v)) {{\n"
           f"  mysql_query(\"SELECT o FROM t WHERE v LIKE '%\""
           f" . $v . \"%'\");\n}}", f"rv_trim_empty_{key}")
    # more direct variety so the RV pool is not dominated by duplicates
    for i, key in enumerate(("a", "b", "c", "d", "e", "f")):
        rv(f"mysql_query(\"SELECT s{i} FROM tab{i} WHERE c{i} = '\""
           f" . $_GET['{key}'] . \"' AND live = 1\");",
           f"rv_direct_var_{key}")
        rv(f"echo \"<li>\" . $_REQUEST['{key}'] . \"</li>\";",
           f"rv_echo_var_{key}")
    for agg in _AGGREGATES[:3]:
        rv(f"mysql_query(\"SELECT {agg}(x) FROM t WHERE g = '\""
           f" . $_POST['g'] . \"'\");", f"rv_aggregate_{agg}")
    rv("$page = $_GET['page'];\n"
       "mysql_query(\"SELECT p FROM posts LIMIT \" . $page);",
       "rv_limit")
    rv("$sort = $_GET['sort'];\n"
       "mysql_query(\"SELECT r FROM rows ORDER BY \" . $sort);",
       "rv_orderby")
    rv("$v = str_replace(' ', '_', $_GET['name']);\n"
       "echo \"<img src='\" . $v . \"'>\";", "rv_replace_space_echo")
    rv("$v = substr($_POST['comment'], 0, 200);\n"
       "echo \"<div>\" . $v . \"</div>\";", "rv_substr_echo")
    rv("$parts = explode('.', $_GET['host']);\n"
       "echo $parts[0];", "rv_explode_echo")
    rv("$v = implode(',', explode(';', $_GET['csv']));\n"
       "mysql_query(\"SELECT t FROM t WHERE v IN (\" . $v . \")\");",
       "rv_implode")

    return out


# ---------------------------------------------------------------------------
# pipeline: snippets -> labelled symptom sets -> vectors
# ---------------------------------------------------------------------------

def _dataset_detector():
    from repro.analysis.detector import Detector
    from repro.vulnerabilities.catalog import sqli_info, xss_info
    return Detector([sqli_info().config, xss_info().config])


def collect_instances(snippets: list[Snippet] | None = None
                      ) -> list[tuple[frozenset[str], int, str]]:
    """Run the real pipeline over the battery.

    Returns one (symptom set, label, template) triple per snippet whose
    candidate flow the taint analyzer actually flags.
    """
    detector = _dataset_detector()
    out: list[tuple[frozenset[str], int, str]] = []
    for snippet in snippets or generate_snippets():
        candidates = detector.detect_source("<?php " + snippet.source,
                                            snippet.template)
        if not candidates:
            continue
        symptoms = extract_symptoms(candidates[0], DATASET_DYNAMIC)
        out.append((symptoms, snippet.label, snippet.template))
    return out


def build_dataset(version: str = "new", size: int = 256,
                  seed: int = 13, fp_count: int | None = None,
                  rv_count: int | None = None) -> Dataset:
    """Assemble the training set.

    Args:
        version: ``"new"`` (61 attributes) or ``"original"`` (16).
        size: total instances, split evenly unless counts are given.
        seed: selection/shuffle seed (the battery itself is deterministic).
        fp_count, rv_count: explicit per-class counts (used to rebuild the
            original WAP's 32 FP / 44 RV set).

    Raises:
        DatasetError: if the battery cannot supply any instance of a class.
    """
    scheme = scheme_for(version)
    instances = collect_instances()

    # noise elimination (§III-B1): drop vectors that appear with both
    # labels (ambiguous), keep the rest including same-label duplicates
    by_vec: dict[tuple, set[int]] = {}
    vectors: list[tuple[tuple, int, str]] = []
    for symptoms, label, template in instances:
        key = tuple(scheme.vectorize(symptoms).astype(int).tolist())
        by_vec.setdefault(key, set()).add(label)
        vectors.append((key, label, template))
    clean = [(k, label, template) for k, label, template in vectors
             if len(by_vec[k]) == 1]

    counts = {LABEL_FP: fp_count if fp_count is not None else size // 2,
              LABEL_RV: rv_count if rv_count is not None else size // 2}
    rng = np.random.default_rng(seed)
    rows: list[np.ndarray] = []
    labels: list[int] = []
    templates: list[str] = []
    for wanted in (LABEL_FP, LABEL_RV):
        pool = [(k, template) for k, label, template in clean
                if label == wanted]
        if not pool:
            raise DatasetError(f"no instances of class {wanted}")
        order = rng.permutation(len(pool))
        chosen = [pool[i] for i in order]
        # cycle deterministically if the battery is smaller than needed
        while len(chosen) < counts[wanted]:
            chosen.extend(pool)
        for key, template in chosen[:counts[wanted]]:
            rows.append(np.array(key, dtype=np.float64))
            labels.append(wanted)
            templates.append(template)

    X = np.stack(rows)
    y = np.array(labels, dtype=np.int64)
    order = rng.permutation(len(labels))
    return Dataset(X[order], y[order], scheme,
                   [templates[i] for i in order])


def build_original_dataset(seed: int = 13) -> Dataset:
    """The original WAP training set: 76 instances (32 FP, 44 RV) over the
    16-attribute scheme (§III-B1)."""
    return Dataset(*_strip(build_dataset("original", seed=seed,
                                         fp_count=32, rv_count=44)))


def _strip(ds: Dataset) -> tuple:
    return (ds.X, ds.y, ds.scheme, ds.templates)
