"""Logistic Regression trained by full-batch gradient descent with L2."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClassifierError
from repro.mining.classifiers.base import Classifier


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # numerically stable logistic
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression(Classifier):
    """Binary logistic regression.

    Args:
        lr: gradient-descent step size.
        epochs: number of full-batch passes.
        l2: L2 regularization strength (applied to weights, not bias).
        threshold: decision threshold on the positive-class probability.
    """

    name = "Logistic Regression"

    def __init__(self, lr: float = 1.0, epochs: int = 800,
                 l2: float = 2e-4, threshold: float = 0.5) -> None:
        self.lr = lr
        self.epochs = epochs
        self.l2 = l2
        self.threshold = threshold
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X, y = self._check_fit_inputs(X, y)
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        yf = y.astype(np.float64)
        for _ in range(self.epochs):
            p = _sigmoid(X @ w + b)
            err = p - yf
            grad_w = X.T @ err / n + self.l2 * w
            grad_b = float(err.mean())
            w -= self.lr * grad_w
            b -= self.lr * grad_b
        self.weights = w
        self.bias = b
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(label = 1) for each row of X."""
        if self.weights is None:
            raise ClassifierError("predict before fit")
        X = self._check_predict_inputs(X, self.weights.shape[0])
        return _sigmoid(X @ self.weights + self.bias)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= self.threshold).astype(np.int64)
