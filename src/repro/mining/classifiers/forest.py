"""Random Forest: bagged random trees with majority vote.

Random Forest replaces Random Tree in the *new* WAP's top 3 (§III-B1:
"These classifiers are the same as those used in the original WAP, except
RF that substitutes Random Tree").
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClassifierError
from repro.mining.classifiers.base import Classifier
from repro.mining.classifiers.tree import DecisionTree


class RandomForest(Classifier):
    """Bootstrap-aggregated random trees.

    Args:
        n_trees: ensemble size.
        max_depth: per-tree depth cap.
        max_features: features per split; None = int(log2(d)) + 1.
        seed: RNG seed controlling bootstraps and per-tree feature sampling.
    """

    name = "Random Forest"

    def __init__(self, n_trees: int = 100, max_depth: int | None = None,
                 max_features: int | None = 30, seed: int = 7) -> None:
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.max_features = max_features
        self.seed = seed
        self.trees: list[DecisionTree] = []
        self._width = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForest":
        X, y = self._check_fit_inputs(X, y)
        self._width = X.shape[1]
        n, d = X.shape
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, int(np.log2(max(d, 2))) + 1)
        rng = np.random.default_rng(self.seed)
        self.trees = []
        for i in range(self.n_trees):
            idx = rng.integers(0, n, size=n)  # bootstrap sample
            tree = DecisionTree(max_depth=self.max_depth,
                                max_features=max_features,
                                seed=int(rng.integers(0, 2**31)))
            tree.fit(X[idx], y[idx])
            self.trees.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Fraction of trees voting for class 1."""
        if not self.trees:
            raise ClassifierError("predict before fit")
        X = self._check_predict_inputs(X, self._width)
        votes = np.stack([tree.predict(X) for tree in self.trees])
        return votes.mean(axis=0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(np.int64)
