"""Bernoulli Naive Bayes — one of the classifiers re-evaluated when
selecting the top 3 (the paper evaluated several and kept SVM/LR/RF)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClassifierError
from repro.mining.classifiers.base import Classifier


class BernoulliNaiveBayes(Classifier):
    """Naive Bayes over binary attributes with Laplace smoothing."""

    name = "Naive Bayes"

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = alpha
        self._log_prior: np.ndarray | None = None
        self._log_p: np.ndarray | None = None      # log P(x=1 | class)
        self._log_q: np.ndarray | None = None      # log P(x=0 | class)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BernoulliNaiveBayes":
        X, y = self._check_fit_inputs(X, y)
        Xb = (X > 0.5).astype(np.float64)
        counts = np.array([(y == c).sum() for c in (0, 1)],
                          dtype=np.float64)
        self._log_prior = np.log((counts + self.alpha)
                                 / (counts.sum() + 2 * self.alpha))
        p = np.empty((2, X.shape[1]))
        for c in (0, 1):
            rows = Xb[y == c]
            ones = rows.sum(axis=0) if rows.size else np.zeros(X.shape[1])
            p[c] = (ones + self.alpha) / (counts[c] + 2 * self.alpha)
        self._log_p = np.log(p)
        self._log_q = np.log1p(-p)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._log_p is None:
            raise ClassifierError("predict before fit")
        X = self._check_predict_inputs(X, self._log_p.shape[1])
        Xb = (X > 0.5).astype(np.float64)
        scores = np.stack([
            self._log_prior[c]
            + Xb @ self._log_p[c] + (1.0 - Xb) @ self._log_q[c]
            for c in (0, 1)
        ], axis=1)
        return np.argmax(scores, axis=1).astype(np.int64)
