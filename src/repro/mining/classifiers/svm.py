"""Linear Support Vector Machine trained with the Pegasos subgradient
method (Shalev-Shwartz et al.), deterministic given the seed."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClassifierError
from repro.mining.classifiers.base import Classifier


class LinearSVM(Classifier):
    """Soft-margin linear SVM.

    Args:
        lam: regularization parameter λ of the Pegasos objective.
        epochs: passes over the shuffled training set.
        seed: RNG seed for the shuffling (determinism matters for tests).
    """

    name = "SVM"

    def __init__(self, lam: float = 1e-3, epochs: int = 60,
                 seed: int = 7) -> None:
        self.lam = lam
        self.epochs = epochs
        self.seed = seed
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        X, y = self._check_fit_inputs(X, y)
        n, d = X.shape
        ypm = np.where(y == 1, 1.0, -1.0)  # {0,1} -> {-1,+1}
        rng = np.random.default_rng(self.seed)
        w = np.zeros(d)
        b = 0.0
        t = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for i in order:
                t += 1
                eta = 1.0 / (self.lam * t)
                margin = ypm[i] * (X[i] @ w + b)
                w *= (1.0 - eta * self.lam)
                if margin < 1.0:
                    w += eta * ypm[i] * X[i]
                    b += eta * ypm[i]
        self.weights = w
        self.bias = b
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise ClassifierError("predict before fit")
        X = self._check_predict_inputs(X, self.weights.shape[0])
        return X @ self.weights + self.bias

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(np.int64)
