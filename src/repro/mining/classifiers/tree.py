"""CART decision trees (Gini impurity) and the Random Tree variant.

``DecisionTree`` considers all features at every split; ``RandomTree``
(the classifier used by the original WAP) samples a random feature subset
at each node, like a single tree of a random forest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ClassifierError
from repro.mining.classifiers.base import Classifier


@dataclass
class _Node:
    """Internal tree node; a leaf when ``feature`` is None."""

    feature: int | None = None
    threshold: float = 0.5
    left: "_Node | None" = None
    right: "_Node | None" = None
    label: int = 0


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


class DecisionTree(Classifier):
    """Binary CART tree on (possibly continuous) features.

    Args:
        max_depth: depth cap; None means grow until pure.
        min_samples_split: do not split nodes smaller than this.
        max_features: features sampled per split (None = all).
        seed: RNG seed for feature sampling.
    """

    name = "Decision Tree"

    def __init__(self, max_depth: int | None = None,
                 min_samples_split: int = 2,
                 max_features: int | None = None,
                 seed: int = 7) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None
        self._width = 0

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTree":
        X, y = self._check_fit_inputs(X, y)
        self._width = X.shape[1]
        rng = np.random.default_rng(self.seed)
        self._root = self._grow(X, y, depth=0, rng=rng)
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int,
              rng: np.random.Generator) -> _Node:
        counts = np.bincount(y, minlength=2)
        majority = int(np.argmax(counts))
        if (counts.min() == 0
                or (self.max_depth is not None and depth >= self.max_depth)
                or y.shape[0] < self.min_samples_split):
            return _Node(label=majority)

        n_features = X.shape[1]
        if self.max_features is not None and \
                self.max_features < n_features:
            feats = rng.choice(n_features, size=self.max_features,
                               replace=False)
        else:
            feats = np.arange(n_features)

        best = None  # (impurity, feature, threshold, mask)
        for f in feats:
            values = np.unique(X[:, f])
            if values.shape[0] < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            for thr in thresholds:
                mask = X[:, f] <= thr
                n_left = int(mask.sum())
                if n_left == 0 or n_left == y.shape[0]:
                    continue
                g = (n_left * _gini(np.bincount(y[mask], minlength=2))
                     + (y.shape[0] - n_left)
                     * _gini(np.bincount(y[~mask], minlength=2)))
                if best is None or g < best[0]:
                    best = (g, int(f), float(thr), mask)
        if best is None:
            return _Node(label=majority)

        _, feature, threshold, mask = best
        left = self._grow(X[mask], y[mask], depth + 1, rng)
        right = self._grow(X[~mask], y[~mask], depth + 1, rng)
        return _Node(feature=feature, threshold=threshold,
                     left=left, right=right, label=majority)

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise ClassifierError("predict before fit")
        X = self._check_predict_inputs(X, self._width)
        return np.array([self._walk(row) for row in X], dtype=np.int64)

    def _walk(self, row: np.ndarray) -> int:
        node = self._root
        assert node is not None
        while node.feature is not None:
            node = node.left if row[node.feature] <= node.threshold \
                else node.right
            assert node is not None
        return node.label

    def depth(self) -> int:
        """Actual depth of the grown tree (diagnostics)."""
        def d(node: _Node | None) -> int:
            if node is None or node.feature is None:
                return 0
            return 1 + max(d(node.left), d(node.right))
        return d(self._root)


class RandomTree(DecisionTree):
    """Single tree with random feature subsets at each split — the third
    classifier of the *original* WAP's top 3."""

    name = "Random Tree"

    def __init__(self, max_depth: int | None = None, seed: int = 7) -> None:
        super().__init__(max_depth=max_depth, min_samples_split=2,
                         max_features=None, seed=seed)
        self._auto_features = True

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomTree":
        # WEKA's RandomTree default: int(log2(#features)) + 1
        n_features = np.asarray(X).shape[1]
        self.max_features = max(1, int(np.log2(max(n_features, 2))) + 1)
        super().fit(X, y)
        return self
