"""k-nearest neighbours — another candidate in the classifier
re-evaluation pool."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClassifierError
from repro.mining.classifiers.base import Classifier


class KNearestNeighbors(Classifier):
    """Majority vote over the k nearest training points (L2 distance).

    Ties on distance are broken by training order (deterministic); ties on
    the vote fall to class 1 only when strictly more than half vote 1.
    """

    name = "K-NN"

    def __init__(self, k: int = 5) -> None:
        if k < 1:
            raise ClassifierError("k must be >= 1")
        self.k = k
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNearestNeighbors":
        X, y = self._check_fit_inputs(X, y)
        self._X = X
        self._y = y
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None or self._y is None:
            raise ClassifierError("predict before fit")
        X = self._check_predict_inputs(X, self._X.shape[1])
        k = min(self.k, self._X.shape[0])
        out = np.empty(X.shape[0], dtype=np.int64)
        for i, row in enumerate(X):
            d2 = np.sum((self._X - row) ** 2, axis=1)
            nearest = np.argsort(d2, kind="stable")[:k]
            out[i] = 1 if self._y[nearest].mean() > 0.5 else 0
        return out
