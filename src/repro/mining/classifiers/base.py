"""Classifier interface.

All classifiers are binary: label ``1`` means *false positive* (the "Yes"
class of Table III), label ``0`` means *real vulnerability*.  They are
implemented from scratch on numpy — the paper used WEKA, which is not
available offline (see DESIGN.md substitution #3).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClassifierError


class Classifier:
    """Base class for binary classifiers."""

    #: short name used in tables and reports.
    name: str = "classifier"

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":
        """Train on (n, d) features and (n,) 0/1 labels; returns self."""
        raise NotImplementedError

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict 0/1 labels for (n, d) features."""
        raise NotImplementedError

    def predict_one(self, x: np.ndarray) -> int:
        """Predict the label of a single instance."""
        return int(self.predict(np.asarray(x, dtype=np.float64)
                                .reshape(1, -1))[0])

    # ------------------------------------------------------------------
    @staticmethod
    def _check_fit_inputs(X: np.ndarray, y: np.ndarray
                          ) -> tuple[np.ndarray, np.ndarray]:
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ClassifierError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ClassifierError(
                f"y shape {y.shape} does not match X rows {X.shape[0]}")
        labels = set(np.unique(y).tolist())
        if not labels <= {0, 1}:
            raise ClassifierError(f"labels must be 0/1, got {labels}")
        return X, y.astype(np.int64)

    def _check_predict_inputs(self, X: np.ndarray,
                              width: int) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != width:
            raise ClassifierError(
                f"expected (n, {width}) features, got {X.shape}")
        return X
