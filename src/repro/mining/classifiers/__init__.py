"""From-scratch numpy classifiers (WEKA substitute; DESIGN.md subst. #3)."""

from repro.mining.classifiers.base import Classifier  # noqa: F401
from repro.mining.classifiers.forest import RandomForest  # noqa: F401
from repro.mining.classifiers.knn import KNearestNeighbors  # noqa: F401
from repro.mining.classifiers.logistic import LogisticRegression  # noqa: F401
from repro.mining.classifiers.naive_bayes import (  # noqa: F401
    BernoulliNaiveBayes,
)
from repro.mining.classifiers.svm import LinearSVM  # noqa: F401
from repro.mining.classifiers.tree import DecisionTree, RandomTree  # noqa: F401

__all__ = [
    "Classifier",
    "LogisticRegression",
    "LinearSVM",
    "DecisionTree",
    "RandomTree",
    "RandomForest",
    "BernoulliNaiveBayes",
    "KNearestNeighbors",
]
