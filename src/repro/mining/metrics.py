"""Evaluation metrics of Table II and the confusion matrix of Table III.

The paper's conventions (important and easy to get backwards):

* the positive class ("Yes") is **false positive** — the predictor's job is
  to spot false alarms;
* ``tp`` = false positives correctly predicted as such, ``fp`` = real
  vulnerabilities wrongly flagged as false positives (i.e. *missed
  vulnerabilities*), ``fn`` = false positives the predictor let through,
  ``tn`` = real vulnerabilities correctly kept.

Metric formulas are copied from Table II's last column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion matrix in the paper's notation."""

    tp: int
    fp: int
    fn: int
    tn: int

    @classmethod
    def from_predictions(cls, y_true: np.ndarray,
                         y_pred: np.ndarray) -> "ConfusionMatrix":
        y_true = np.asarray(y_true).astype(np.int64)
        y_pred = np.asarray(y_pred).astype(np.int64)
        return cls(
            tp=int(np.sum((y_true == 1) & (y_pred == 1))),
            fp=int(np.sum((y_true == 0) & (y_pred == 1))),
            fn=int(np.sum((y_true == 1) & (y_pred == 0))),
            tn=int(np.sum((y_true == 0) & (y_pred == 0))),
        )

    def __add__(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        return ConfusionMatrix(self.tp + other.tp, self.fp + other.fp,
                               self.fn + other.fn, self.tn + other.tn)

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    # ---- Table II metrics ------------------------------------------------
    @property
    def tpp(self) -> float:
        """True positive rate of prediction (recall): tp / (tp + fn)."""
        return _div(self.tp, self.tp + self.fn)

    @property
    def pfp(self) -> float:
        """Fallout — wrong classification of vulnerabilities as FPs:
        fp / (tn + fp)."""
        return _div(self.fp, self.tn + self.fp)

    @property
    def prfp(self) -> float:
        """Precision of the FP class: tp / (tp + fp)."""
        return _div(self.tp, self.tp + self.fp)

    @property
    def pd(self) -> float:
        """Specificity: tn / (tn + fp)."""
        return _div(self.tn, self.tn + self.fp)

    @property
    def ppd(self) -> float:
        """Inverse precision: tn / (tn + fn)."""
        return _div(self.tn, self.tn + self.fn)

    @property
    def acc(self) -> float:
        """Accuracy: (tp + tn) / N."""
        return _div(self.tp + self.tn, self.total)

    @property
    def pr(self) -> float:
        """Paper's 'precision': (prfp + ppd) / 2."""
        return (self.prfp + self.ppd) / 2.0

    @property
    def inform(self) -> float:
        """Informedness: tpp + pd − 1 = tpp − pfp."""
        return self.tpp + self.pd - 1.0

    @property
    def jacc(self) -> float:
        """Jaccard on the FP class: tp / (tp + fn + fp)."""
        return _div(self.tp, self.tp + self.fn + self.fp)

    # ----------------------------------------------------------------------
    METRIC_NAMES = ("tpp", "pfp", "prfp", "pd", "ppd", "acc", "pr",
                    "inform", "jacc")

    def metrics(self) -> dict[str, float]:
        """All nine Table II metrics as a dict."""
        return {name: getattr(self, name) for name in self.METRIC_NAMES}

    def as_row(self) -> tuple[int, int, int, int]:
        return (self.tp, self.fp, self.fn, self.tn)


def _div(num: float, den: float) -> float:
    return float(num) / float(den) if den else 0.0


def kfold_indices(n: int, k: int, seed: int = 11) -> list[np.ndarray]:
    """Deterministic shuffled k-fold index split."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    return [order[i::k] for i in range(k)]


def cross_validate(classifier_factory, X: np.ndarray, y: np.ndarray,
                   k: int = 10, seed: int = 11) -> ConfusionMatrix:
    """k-fold cross-validation, accumulating one confusion matrix.

    Args:
        classifier_factory: zero-arg callable returning a fresh classifier.
        X, y: full data set.
        k: number of folds.
        seed: fold-assignment seed.

    Returns:
        The summed :class:`ConfusionMatrix` over all held-out folds (this
        matches WEKA's cross-validation output used for Tables II/III).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).astype(np.int64)
    folds = kfold_indices(X.shape[0], k, seed)
    total = ConfusionMatrix(0, 0, 0, 0)
    for i in range(k):
        test_idx = folds[i]
        train_idx = np.concatenate([folds[j] for j in range(k) if j != i])
        clf = classifier_factory()
        clf.fit(X[train_idx], y[train_idx])
        pred = clf.predict(X[test_idx])
        total = total + ConfusionMatrix.from_predictions(y[test_idx], pred)
    return total
