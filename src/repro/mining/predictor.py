"""The false positive predictor (Fig. 1 box 2 / Fig. 3).

Pipeline per candidate vulnerability: collect static + dynamic symptoms →
build the attribute vector → classify with the top-3 ensemble (majority
vote) → route: predicted false positives are reported as such, predicted
real vulnerabilities go on to the code corrector.

Two factory functions mirror the two tool versions:

* :func:`original_predictor` — WAP v2.1: 16 attributes, top 3 = SVM,
  Logistic Regression, **Random Tree**, trained on the 76-instance set.
* :func:`new_predictor` — WAPe: 61 attributes, top 3 = SVM, Logistic
  Regression, **Random Forest** (§III-B1), trained on the 256-instance set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.model import CandidateVulnerability
from repro.mining.attributes import AttributeScheme
from repro.mining.classifiers import (
    Classifier,
    LinearSVM,
    LogisticRegression,
    RandomForest,
    RandomTree,
)
from repro.mining.dataset import (
    Dataset,
    build_dataset,
    build_original_dataset,
)
from repro.mining.extraction import (
    NO_DYNAMIC_SYMPTOMS,
    DynamicSymptoms,
    extract_symptoms,
)


@dataclass(frozen=True)
class Prediction:
    """Outcome of classifying one candidate.

    Attributes:
        is_false_positive: the ensemble's majority verdict.
        votes: per-classifier verdict (classifier name -> predicted label).
        symptoms: the extracted symptom set (the FP "justification" of
            Fig. 3 — why the candidate was considered a false alarm).
    """

    is_false_positive: bool
    votes: dict[str, int] = field(default_factory=dict)
    symptoms: frozenset[str] = frozenset()


class FalsePositivePredictor:
    """Top-3 ensemble over a trained data set."""

    def __init__(self, classifiers: list[Classifier], dataset: Dataset,
                 dynamic: DynamicSymptoms = NO_DYNAMIC_SYMPTOMS) -> None:
        if len(classifiers) % 2 == 0:
            raise ValueError("ensemble size must be odd for majority vote")
        self.classifiers = classifiers
        self.dataset = dataset
        self.dynamic = dynamic
        # symptom set -> Prediction; classifiers are frozen after fit, so
        # identical symptom sets always classify identically.  Hit/miss
        # counts make memoization effectiveness observable (--stats).
        self._memo: dict[frozenset[str], Prediction] = {}
        self.memo_hits = 0
        self.memo_misses = 0
        for clf in self.classifiers:
            clf.fit(dataset.X, dataset.y)

    @property
    def scheme(self) -> AttributeScheme:
        return self.dataset.scheme

    def with_dynamic(self, dynamic: DynamicSymptoms
                     ) -> "FalsePositivePredictor":
        """Shallow copy using extra dynamic symptoms (already-trained)."""
        clone = object.__new__(FalsePositivePredictor)
        clone.classifiers = self.classifiers
        clone.dataset = self.dataset
        clone.dynamic = self.dynamic.merged(dynamic)
        # vote caching only depends on the shared classifiers + scheme
        clone._memo = self._memo
        clone.memo_hits = 0
        clone.memo_misses = 0
        return clone

    # ------------------------------------------------------------------
    def predict(self, candidate: CandidateVulnerability) -> Prediction:
        """Classify one candidate vulnerability."""
        symptoms = extract_symptoms(candidate, self.dynamic)
        return self.predict_symptoms(symptoms)

    def predict_symptoms(self, symptoms: frozenset[str]) -> Prediction:
        """Classify from an already-extracted symptom set (memoized)."""
        cached = self._memo.get(symptoms)
        if cached is not None:
            self.memo_hits += 1
            return cached
        self.memo_misses += 1
        vector = self.scheme.vectorize(symptoms).reshape(1, -1)
        votes = {clf.name: int(clf.predict(vector)[0])
                 for clf in self.classifiers}
        is_fp = sum(votes.values()) * 2 > len(votes)
        prediction = Prediction(is_fp, votes, symptoms)
        if len(self._memo) < 65536:
            self._memo[symptoms] = prediction
        return prediction


# ---------------------------------------------------------------------------
# the two tool configurations
# ---------------------------------------------------------------------------

def top3_new() -> list[Classifier]:
    """WAPe's top 3 (Table II): SVM, Logistic Regression, Random Forest."""
    return [LinearSVM(), LogisticRegression(), RandomForest()]


def top3_original() -> list[Classifier]:
    """WAP v2.1's top 3: SVM, Logistic Regression, Random Tree."""
    return [LinearSVM(), LogisticRegression(), RandomTree()]


_CACHE: dict[str, FalsePositivePredictor] = {}


def new_predictor(dynamic: DynamicSymptoms = NO_DYNAMIC_SYMPTOMS,
                  use_cache: bool = True) -> FalsePositivePredictor:
    """WAPe's predictor (61 attributes, 256 instances, SVM/LR/RF)."""
    if use_cache and "new" in _CACHE:
        return _CACHE["new"].with_dynamic(dynamic)
    predictor = FalsePositivePredictor(top3_new(), build_dataset("new"))
    if use_cache:
        _CACHE["new"] = predictor
    return predictor.with_dynamic(dynamic)


def original_predictor(use_cache: bool = True) -> FalsePositivePredictor:
    """WAP v2.1's predictor (16 attributes, 76 instances, SVM/LR/RT)."""
    if use_cache and "original" in _CACHE:
        return _CACHE["original"]
    predictor = FalsePositivePredictor(top3_original(),
                                       build_original_dataset())
    if use_cache:
        _CACHE["original"] = predictor
    return predictor
