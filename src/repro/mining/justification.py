"""False-positive justification (Fig. 3, last box).

When the predictor classifies a candidate as a false positive, WAP
*justifies* the call to the user: which symptoms were observed, what kind
of evidence they are, and where on the data-flow path they appeared.  This
module renders that explanation from a candidate + prediction pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.model import STEP_GUARD, CandidateVulnerability
from repro.mining.predictor import Prediction
from repro.mining.symptoms import (
    CATEGORY_SQL,
    CATEGORY_STRING,
    CATEGORY_VALIDATION,
    get_symptom,
)

_CATEGORY_PHRASES = {
    CATEGORY_VALIDATION: "the input is validated",
    CATEGORY_STRING: "the input is transformed",
    CATEGORY_SQL: "the query shape limits exploitation",
}

_ATTRIBUTE_PHRASES = {
    "type_checking": "type checking",
    "entry_point_is_set": "presence checking",
    "pattern_control": "pattern matching",
    "white_list": "a white list",
    "black_list": "a black list",
    "error_exit": "an error/exit path",
    "extract_substring": "substring extraction",
    "string_concat": "string concatenation",
    "add_char": "character padding",
    "replace_string": "string replacement",
    "remove_whitespace": "whitespace trimming",
    "complex_query": "a complex query",
    "numeric_entry_point": "a numeric entry point",
    "from_clause": "a FROM clause",
    "aggregated_function": "an aggregate function",
}


@dataclass(frozen=True)
class Justification:
    """Structured explanation of a false-positive verdict."""

    candidate: CandidateVulnerability
    prediction: Prediction
    evidence: tuple[tuple[str, str, str], ...]  # (symptom, attr, category)

    @property
    def is_false_positive(self) -> bool:
        return self.prediction.is_false_positive

    def render(self) -> str:
        """Human-readable justification text."""
        cand = self.candidate
        head = (f"{cand.vuln_class} candidate at "
                f"{cand.filename}:{cand.sink_line} "
                f"({cand.entry_point} -> {cand.sink_name})")
        if not self.prediction.is_false_positive:
            return (f"{head}: reported as a REAL vulnerability — "
                    f"no convincing symptoms "
                    f"({', '.join(sorted(self.prediction.symptoms)) or 'none'})")
        lines = [f"{head}: predicted FALSE POSITIVE because:"]
        guard_lines = {s.detail: s.line for s in cand.path
                       if s.kind == STEP_GUARD}
        for symptom, attribute, category in self.evidence:
            where = (f" (line {guard_lines[symptom]})"
                     if symptom in guard_lines else "")
            lines.append(
                f"  - {_CATEGORY_PHRASES[category]} via "
                f"{_ATTRIBUTE_PHRASES.get(attribute, attribute)}: "
                f"{symptom}{where}")
        votes = ", ".join(f"{name}={'FP' if v else 'RV'}"
                          for name, v in self.prediction.votes.items())
        lines.append(f"  classifier votes: {votes}")
        return "\n".join(lines)


def justify(candidate: CandidateVulnerability,
            prediction: Prediction) -> Justification:
    """Build the justification for one predicted candidate."""
    evidence = []
    for name in sorted(prediction.symptoms):
        symptom = get_symptom(name)
        if symptom is not None:
            evidence.append((symptom.name, symptom.attribute,
                             symptom.category))
    return Justification(candidate, prediction, tuple(evidence))
