"""Symptom extraction from candidate vulnerabilities (Fig. 3, first box).

Given a :class:`~repro.analysis.model.CandidateVulnerability`, collect the
set of Table I symptoms present on its data-flow path:

* every function the tainted data passed through or was guarded by, mapped
  to a symptom (static catalog first, then the user-supplied *dynamic
  symptom* map of §III-B2);
* the concatenation-operator symptom when the path built strings;
* the SQL-query symptoms (FROM clause, aggregates, ComplexSQL, IsNum) mined
  from the sink's literal context.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.analysis.model import STEP_CONCAT, CandidateVulnerability
from repro.mining.symptoms import get_symptom

#: placeholder the engine inserts for tainted fragments in sink context.
TAINT_MARK = "§"

_FROM_RE = re.compile(r"\bFROM\b", re.IGNORECASE)
_AGGREGATES = ("AVG", "COUNT", "SUM", "MAX", "MIN")
_COMPLEX_RE = re.compile(
    r"\b(JOIN|UNION|GROUP\s+BY|HAVING|LIMIT|ORDER\s+BY)\b"
    r"|SELECT[^§]*\(\s*SELECT",
    re.IGNORECASE)
_ISNUM_RE = re.compile(r"[=<>]\s*" + TAINT_MARK)

#: classes whose sink context is SQL-like (enables the sql category).
QUERY_CLASSES = frozenset({"sqli", "wpsqli", "nosqli", "ldapi", "xpathi"})


@dataclass(frozen=True)
class DynamicSymptoms:
    """User-configured dynamic symptoms (§III-B2).

    ``mapping`` sends a user function name to the static symptom it behaves
    like (``val_int`` -> ``is_int``); ``whitelists``/``blacklists`` name
    user functions that validate input against white/black lists.
    """

    mapping: dict[str, str] = field(default_factory=dict)
    whitelists: frozenset[str] = frozenset()
    blacklists: frozenset[str] = frozenset()

    def resolve(self, func: str) -> str | None:
        """Symptom name for *func*, or None if it is not configured."""
        func = func.lower()
        if func in self.whitelists:
            return "user_whitelist"
        if func in self.blacklists:
            return "user_blacklist"
        mapped = self.mapping.get(func)
        if mapped is not None:
            target = get_symptom(mapped.lower()) or get_symptom(mapped)
            return target.name if target else None
        return None

    def merged(self, other: "DynamicSymptoms") -> "DynamicSymptoms":
        return DynamicSymptoms(
            mapping={**self.mapping, **other.mapping},
            whitelists=self.whitelists | other.whitelists,
            blacklists=self.blacklists | other.blacklists,
        )


NO_DYNAMIC_SYMPTOMS = DynamicSymptoms()


def extract_symptoms(candidate: CandidateVulnerability,
                     dynamic: DynamicSymptoms = NO_DYNAMIC_SYMPTOMS
                     ) -> frozenset[str]:
    """All Table I symptom names present on *candidate*'s path."""
    found: set[str] = set()

    for func in candidate.passed_functions:
        name = func.lower()
        dynamic_name = dynamic.resolve(name)
        if dynamic_name is not None:
            found.add(dynamic_name)
            continue
        symptom = get_symptom(name)
        if symptom is not None:
            found.add(symptom.name)

    if any(step.kind == STEP_CONCAT for step in candidate.path):
        found.add("concat_op")

    if candidate.vuln_class in QUERY_CLASSES and candidate.context:
        found |= _sql_symptoms(candidate.context)

    return frozenset(found)


def _sql_symptoms(context: str) -> set[str]:
    """SQL-query-manipulation symptoms mined from the sink context."""
    out: set[str] = set()
    if _FROM_RE.search(context):
        out.add("FROM")
    for agg in _AGGREGATES:
        if re.search(rf"\b{agg}\s*\(", context, re.IGNORECASE):
            out.add(agg)
    if _COMPLEX_RE.search(context):
        out.add("ComplexSQL")
    if _ISNUM_RE.search(context):
        out.add("IsNum")
    return out
