"""Evaluation utilities over the data-mining stage.

Helpers used by the benchmark harness and by users tuning their own
training sets: full classifier comparisons, learning curves over the
training-set size (the paper grew the set from 76 to 256 instances when
the attribute count grew from 16 to 61), and a compact text rendering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mining.classifiers import (
    BernoulliNaiveBayes,
    Classifier,
    KNearestNeighbors,
    LinearSVM,
    LogisticRegression,
    RandomForest,
    RandomTree,
)
from repro.mining.dataset import Dataset
from repro.mining.metrics import ConfusionMatrix, cross_validate

#: the full classifier pool of the re-evaluation (§III-B1).
CLASSIFIER_POOL: tuple[type[Classifier], ...] = (
    LinearSVM, LogisticRegression, RandomForest, RandomTree,
    BernoulliNaiveBayes, KNearestNeighbors,
)


@dataclass(frozen=True)
class EvaluationRow:
    """One classifier's cross-validated result."""

    name: str
    matrix: ConfusionMatrix

    @property
    def metrics(self) -> dict[str, float]:
        return self.matrix.metrics()


def compare_classifiers(dataset: Dataset,
                        pool: tuple[type[Classifier], ...] = CLASSIFIER_POOL,
                        k: int = 10, seed: int = 11) -> list[EvaluationRow]:
    """Cross-validate every classifier in *pool* on *dataset*."""
    rows = []
    for cls in pool:
        cm = cross_validate(cls, dataset.X, dataset.y, k, seed)
        rows.append(EvaluationRow(cls().name, cm))
    return rows


def select_top3(rows: list[EvaluationRow]) -> list[EvaluationRow]:
    """The paper's selection procedure: keep the most accurate three,
    breaking ties toward higher tpp (goal 1) then lower pfp (goal 2)."""
    return sorted(rows, key=lambda r: (-r.matrix.acc, -r.matrix.tpp,
                                       r.matrix.pfp))[:3]


def learning_curve(dataset: Dataset,
                   sizes: tuple[int, ...] = (48, 76, 128, 192, 256),
                   classifier: type[Classifier] = LinearSVM,
                   k: int = 8, seed: int = 11
                   ) -> list[tuple[int, ConfusionMatrix]]:
    """Cross-validated performance at increasing training-set sizes.

    Subsets are stratified (balanced label counts preserved) and nested
    (smaller subsets are prefixes of larger ones), so the curve isolates
    the effect of *size* alone.
    """
    rng = np.random.default_rng(seed)
    fp_idx = rng.permutation(np.flatnonzero(dataset.y == 1))
    rv_idx = rng.permutation(np.flatnonzero(dataset.y == 0))
    out: list[tuple[int, ConfusionMatrix]] = []
    for size in sizes:
        size = min(size, dataset.size)
        half = size // 2
        take = np.concatenate([fp_idx[:half], rv_idx[:size - half]])
        X, y = dataset.X[take], dataset.y[take]
        cm = cross_validate(classifier, X, y, min(k, size // 4), seed)
        out.append((size, cm))
    return out


def render_rows(rows: list[EvaluationRow]) -> str:
    """Fixed-width text table of an evaluation (for CLI/debug use)."""
    header = f"{'classifier':<22} {'acc':>6} {'tpp':>6} {'pfp':>6} " \
             f"{'prfp':>6}"
    lines = [header, "-" * len(header)]
    for row in rows:
        m = row.metrics
        lines.append(f"{row.name:<22} {m['acc'] * 100:>5.1f}% "
                     f"{m['tpp'] * 100:>5.1f}% {m['pfp'] * 100:>5.1f}% "
                     f"{m['prfp'] * 100:>5.1f}%")
    return "\n".join(lines)
