"""Attribute vectors for the classifiers (Fig. 3, second box).

Two vectorization modes exist, matching the two versions of the tool:

* :class:`OriginalAttributeScheme` — WAP v2.1's 15 feature attributes.
  Only the original 24 symptoms are *recognized*; each sets the bit of its
  attribute group.  Symptoms added in the new WAP are invisible here, which
  is precisely why the old predictor misses false positives whose only
  evidence is a new symptom (Table VI: 60 unpredicted FPs vs 18).
* :class:`NewAttributeScheme` — WAPe's 60 symptom attributes, one bit per
  symptom (all symptoms are attributes, §III-B1).

The class attribute (FP / RV) is carried separately as the label ``y``.
"""

from __future__ import annotations

import numpy as np

from repro.mining.symptoms import (
    Symptom,
    all_symptoms,
    new_attribute_names,
    original_attribute_names,
    original_symptoms,
)


class AttributeScheme:
    """Maps a set of symptom names to a fixed-width 0/1 vector."""

    #: ordered attribute names; populated by subclasses.
    names: list[str]

    def vectorize(self, symptoms: frozenset[str] | set[str]) -> np.ndarray:
        """Return the 0/1 attribute vector for a symptom set."""
        raise NotImplementedError

    def vectorize_many(self, symptom_sets: list[frozenset[str]]
                       ) -> np.ndarray:
        """Stack vectors for many instances into an (n, d) matrix."""
        if not symptom_sets:
            return np.zeros((0, len(self.names)), dtype=np.float64)
        return np.stack([self.vectorize(s) for s in symptom_sets])

    @property
    def width(self) -> int:
        return len(self.names)


class NewAttributeScheme(AttributeScheme):
    """WAPe: one attribute per symptom (60 features)."""

    def __init__(self) -> None:
        self.names = new_attribute_names()
        self._index = {name: i for i, name in enumerate(self.names)}

    def vectorize(self, symptoms: frozenset[str] | set[str]) -> np.ndarray:
        vec = np.zeros(len(self.names), dtype=np.float64)
        for name in symptoms:
            idx = self._index.get(name)
            if idx is not None:
                vec[idx] = 1.0
        return vec


class OriginalAttributeScheme(AttributeScheme):
    """WAP v2.1: 15 attribute groups over the original 24 symptoms.

    A couple of structural attributes (complex_query, numeric_entry_point)
    are also recognized since the original tool computed them directly.
    """

    #: structural symptoms the original tool computed despite not being
    #: function symptoms.
    _STRUCTURAL = {"ComplexSQL": "complex_query",
                   "IsNum": "numeric_entry_point",
                   "concat_op": "string_concat"}

    def __init__(self) -> None:
        self.names = original_attribute_names()
        self._index = {name: i for i, name in enumerate(self.names)}
        self._symptom_to_group: dict[str, str] = {
            s.name: s.attribute for s in original_symptoms()}
        self._symptom_to_group.update(self._STRUCTURAL)

    def recognizes(self, symptom_name: str) -> bool:
        return symptom_name in self._symptom_to_group

    def vectorize(self, symptoms: frozenset[str] | set[str]) -> np.ndarray:
        vec = np.zeros(len(self.names), dtype=np.float64)
        for name in symptoms:
            group = self._symptom_to_group.get(name)
            if group is not None:
                vec[self._index[group]] = 1.0
        return vec


def scheme_for(version: str) -> AttributeScheme:
    """Factory: ``"original"`` -> 15 attributes, ``"new"`` -> 60."""
    if version == "original":
        return OriginalAttributeScheme()
    if version == "new":
        return NewAttributeScheme()
    raise ValueError(f"unknown attribute scheme {version!r}")


def describe_scheme(scheme: AttributeScheme) -> dict[str, object]:
    """Human-readable summary (used by the Table I bench)."""
    symptoms: list[Symptom] = list(all_symptoms())
    return {
        "attributes": scheme.width,
        "attributes_with_class": scheme.width + 1,
        "total_symptoms": len(symptoms),
        "original_symptoms": sum(1 for s in symptoms if s.original),
        "new_symptoms": sum(1 for s in symptoms if not s.original),
    }
