"""Data mining for false positive prediction (Tables I-III, Fig. 3)."""

from repro.mining.attributes import (  # noqa: F401
    AttributeScheme,
    NewAttributeScheme,
    OriginalAttributeScheme,
    describe_scheme,
    scheme_for,
)
from repro.mining.dataset import (  # noqa: F401
    DATASET_DYNAMIC,
    LABEL_FP,
    LABEL_RV,
    Dataset,
    build_dataset,
    build_original_dataset,
    collect_instances,
    generate_snippets,
)
from repro.mining.extraction import (  # noqa: F401
    NO_DYNAMIC_SYMPTOMS,
    DynamicSymptoms,
    extract_symptoms,
)
from repro.mining.evaluation import (  # noqa: F401
    CLASSIFIER_POOL,
    compare_classifiers,
    learning_curve,
    select_top3,
)
from repro.mining.justification import Justification, justify  # noqa: F401
from repro.mining.metrics import (  # noqa: F401
    ConfusionMatrix,
    cross_validate,
    kfold_indices,
)
from repro.mining.predictor import (  # noqa: F401
    FalsePositivePredictor,
    Prediction,
    new_predictor,
    original_predictor,
    top3_new,
    top3_original,
)
from repro.mining.symptoms import (  # noqa: F401
    CATEGORY_SQL,
    CATEGORY_STRING,
    CATEGORY_VALIDATION,
    Symptom,
    all_symptoms,
    attribute_groups,
    get_symptom,
    new_symptoms,
    original_symptoms,
    symptoms_by_category,
)

__all__ = [
    "Symptom",
    "all_symptoms",
    "original_symptoms",
    "new_symptoms",
    "symptoms_by_category",
    "attribute_groups",
    "get_symptom",
    "CATEGORY_VALIDATION",
    "CATEGORY_STRING",
    "CATEGORY_SQL",
    "AttributeScheme",
    "NewAttributeScheme",
    "OriginalAttributeScheme",
    "scheme_for",
    "describe_scheme",
    "DynamicSymptoms",
    "NO_DYNAMIC_SYMPTOMS",
    "extract_symptoms",
    "Dataset",
    "build_dataset",
    "build_original_dataset",
    "collect_instances",
    "generate_snippets",
    "DATASET_DYNAMIC",
    "LABEL_FP",
    "LABEL_RV",
    "Justification",
    "justify",
    "CLASSIFIER_POOL",
    "compare_classifiers",
    "learning_curve",
    "select_top3",
    "ConfusionMatrix",
    "cross_validate",
    "kfold_indices",
    "FalsePositivePredictor",
    "Prediction",
    "new_predictor",
    "original_predictor",
    "top3_new",
    "top3_original",
]
