"""Thin stdlib HTTP client for the scan daemon.

Used by the service tests and by anything that wants daemon-backed scans
without hand-rolling :mod:`http.client` calls.  Every scan response is
passed through :func:`repro.tool.report.upgrade_report_dict`, so callers
always see the current report schema no matter which daemon version
answered.
"""

from __future__ import annotations

import http.client
import json
import time

from repro.exceptions import ServiceError
from repro.tool.report import upgrade_report_dict


class ServiceClient:
    """Talks to one :class:`~repro.service.server.ScanService`.

    Args:
        host/port: where the daemon listens.
        timeout: socket timeout per request; scan calls add the scan's
            own timeout on top so the daemon, not the socket, decides.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8711,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, payload: dict | None = None,
                 timeout: float | None = None) -> tuple[int, bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout if timeout is not None else self.timeout)
        try:
            body = json.dumps(payload).encode("utf-8") \
                if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                return response.status, response.read()
            except OSError as exc:
                raise ServiceError(
                    f"cannot reach scan service at "
                    f"{self.host}:{self.port}: {exc}")
        finally:
            conn.close()

    def _json(self, method: str, path: str, payload: dict | None = None,
              timeout: float | None = None) -> dict:
        status, raw = self._request(method, path, payload, timeout)
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ServiceError(
                f"non-JSON response ({status}) from {path}")
        if status != 200:
            # error bodies are normally {"error": ...} dicts, but a proxy
            # (or a buggy server) may answer with any JSON value — never
            # crash with AttributeError on a list or string body
            message = data.get("error") if isinstance(data, dict) else None
            raise ServiceError(
                message if isinstance(message, str) and message
                else f"HTTP {status} from {path}")
        return data

    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._json("GET", "/v1/health")

    def status(self) -> dict:
        """The daemon's live ``/v1/status`` view (see ``wape top``)."""
        return self._json("GET", "/v1/status")

    def metrics_text(self) -> str:
        status, raw = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"HTTP {status} from /metrics")
        return raw.decode("utf-8")

    def _scan_payload(self, root: str, timeout: float | None,
                      forget: bool) -> tuple[dict, float]:
        payload: dict = {"root": root}
        if timeout is not None:
            payload["timeout"] = timeout
        if forget:
            payload["forget"] = True
        socket_timeout = (timeout if timeout is not None
                          else self.timeout) + self.timeout
        return payload, socket_timeout

    @staticmethod
    def _load_baseline(baseline) -> dict:
        """Accept a report dict or a path to a report JSON file."""
        if isinstance(baseline, dict):
            return baseline
        with open(baseline, encoding="utf-8") as f:
            data = json.load(f)
        if not isinstance(data, dict):
            raise ServiceError(f"baseline is not a report: {baseline}")
        return data

    def scan(self, root: str, timeout: float | None = None,
             forget: bool = False, baseline=None):
        """Scan *root* on the daemon.

        Returns the upgraded report dict — unless *baseline* (a report
        dict, or a path to a report JSON file) is given, in which case
        the daemon diffs the scan against it and this returns the
        resulting :class:`~repro.api.FindingsDelta`, whose ``report``
        attribute holds the full report.
        """
        payload, socket_timeout = self._scan_payload(root, timeout, forget)
        if baseline is not None:
            payload["baseline"] = self._load_baseline(baseline)
        data = upgrade_report_dict(
            self._json("POST", "/v1/scan", payload,
                       timeout=socket_timeout))
        if baseline is None:
            return data
        delta = data.get("delta")
        if not isinstance(delta, dict):
            raise ServiceError("daemon did not return a delta block "
                               "(upgrade the server?)")
        from repro.api.delta import FindingsDelta
        return FindingsDelta.from_dict(delta, report=data)

    def scan_sarif(self, root: str, timeout: float | None = None,
                   forget: bool = False) -> dict:
        """Scan *root* with ``?format=sarif``; returns the SARIF log."""
        payload, socket_timeout = self._scan_payload(root, timeout, forget)
        return self._json("POST", "/v1/scan?format=sarif", payload,
                          timeout=socket_timeout)

    def scan_stream(self, root: str, timeout: float | None = None,
                    forget: bool = False):
        """Scan *root* with ``?stream=1``; yields NDJSON event dicts.

        Events arrive as the daemon emits them: ``scan_started``, one
        ``file`` per finalized file, then ``scan_done`` (or ``error``).
        A terminal ``error`` event — or a non-200 response — raises
        :class:`ServiceError` instead of being yielded.
        """
        payload: dict = {"root": root}
        if timeout is not None:
            payload["timeout"] = timeout
        if forget:
            payload["forget"] = True
        socket_timeout = (timeout if timeout is not None
                          else self.timeout) + self.timeout
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=socket_timeout)
        try:
            body = json.dumps(payload).encode("utf-8")
            try:
                conn.request("POST", "/v1/scan?stream=1", body=body,
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
            except OSError as exc:
                raise ServiceError(
                    f"cannot reach scan service at "
                    f"{self.host}:{self.port}: {exc}")
            if response.status != 200:
                raw = response.read()
                try:
                    data = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    data = None
                message = data.get("error") if isinstance(data, dict) \
                    else None
                raise ServiceError(
                    message if isinstance(message, str) and message
                    else f"HTTP {response.status} from /v1/scan?stream=1")
            while True:
                # http.client undoes the chunked framing; each readline
                # returns one NDJSON event (or b"" at end of stream)
                try:
                    line = response.readline()
                except OSError as exc:
                    raise ServiceError(f"stream interrupted: {exc}")
                if not line:
                    return
                try:
                    event = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    raise ServiceError("malformed stream event from "
                                       "/v1/scan?stream=1")
                if isinstance(event, dict) and event.get("event") == "error":
                    raise ServiceError(event.get("error")
                                       or "scan stream failed")
                yield event
        finally:
            conn.close()

    def shutdown(self) -> dict:
        return self._json("POST", "/v1/shutdown")

    def wait_ready(self, deadline: float = 15.0) -> dict:
        """Poll ``/v1/health`` until the daemon answers (startup races)."""
        end = time.monotonic() + deadline
        while True:
            try:
                return self.health()
            except ServiceError:
                if time.monotonic() >= end:
                    raise
                time.sleep(0.05)
