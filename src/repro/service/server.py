"""The scan daemon: a warm :class:`~repro.api.Scanner` behind local HTTP.

Protocol (all JSON unless noted):

==========================  =============================================
``GET /v1/health``          liveness + uptime, warm roots, request count
``GET /v1/status``          live operations view: queue depth, in-flight
                            requests (including timed-out scans still
                            running on the worker), request outcome
                            totals, per-root warm state with approximate
                            resident bytes (what ``wape top`` renders);
                            fleet mode adds a per-worker section
``GET /metrics``            Prometheus text exposition of the service's
                            metrics registry (scan counters, queue and
                            latency histograms — including per-endpoint
                            labeled request counts/latencies — plus
                            everything the analysis pipeline records)
``POST /v1/scan``           body ``{"root": path, "timeout": seconds?,
                            "forget": bool?, "baseline": report?}`` → a
                            schema-versioned report whose ``service``
                            block says what the scan did (incremental?,
                            files re-analyzed, queue time, request id);
                            with ``baseline`` the response also carries
                            a ``delta`` block (new/fixed/unchanged
                            findings by fingerprint); with
                            ``?format=sarif`` the response is a SARIF
                            2.1.0 log (``application/sarif+json``)
                            instead of a report
``POST /v1/scan?stream=1``  same body → ``application/x-ndjson``: one
                            ``scan_started`` event, one ``file`` event
                            per file as its verdicts are finalized (in
                            report order), and a terminal ``scan_done``
                            event carrying the report *without* the
                            ``files`` array (already streamed) — or a
                            terminal ``error`` event
``POST /v1/shutdown``       graceful stop: finish in-flight work, stop
                            accepting connections
==========================  =============================================

Endpoint dispatch ignores the query string (``GET /v1/health?probe=1``
is the health endpoint, and is labeled as such in the metrics).

Concurrency model: HTTP connections are handled on their own threads
(:class:`~http.server.ThreadingHTTPServer`), but every scan is executed
on ONE dedicated worker thread — :class:`~repro.api.Scanner` serializes
its scans (only its warm-state *reads* are thread-safe), and serializing
scans is what makes the warm-state bookkeeping trivially correct.
Requests therefore queue in FIFO order; a bounded queue (``max_queue``)
turns overload into an immediate ``503`` instead of unbounded memory
growth, and a per-request timeout turns a stuck scan into a ``504``
*without* killing the scan — it keeps running on the worker and warms
the state for the retry.  A timed-out request stays visible in
``/v1/status`` (flagged ``timed_out``) until its scan actually finishes.

For a multi-process fleet of warm scanners behind the same protocol, see
:class:`repro.service.fleet.FleetService` (``wape serve --workers N``).

Every response carries an ``X-Request-Id`` header (also in the JSON
body for scans); the id is stamped on the service's trace spans so a
slow request can be found in the telemetry afterwards.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.api import Scanner, ScanOptions
from repro.exceptions import ServiceError
from repro.obs.log import NULL_LOG, new_run_id
from repro.telemetry import Telemetry, metrics_to_text
from repro.tool.report import SCHEMA_VERSION, file_report_dict

#: request bodies above this are rejected outright (a scan request is a
#: couple hundred bytes; anything larger is a mistake or abuse).
MAX_BODY_BYTES = 1 << 20

#: default per-request timeout when neither the server nor the request
#: says otherwise.
DEFAULT_TIMEOUT = 300.0


class _HttpError(ServiceError):
    """A request failure with a definite HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def validate_scan_payload(payload, default_timeout: float
                          ) -> tuple[str, float, bool]:
    """Validate a ``/v1/scan`` request body → ``(root, timeout, forget)``.

    Shared by the single-scanner daemon and the fleet front door so both
    reject the same garbage the same way.  Note the explicit ``bool``
    exclusion: ``isinstance(True, int)`` holds in Python, so without it
    ``{"timeout": true}`` silently became a 1-second timeout.
    """
    if not isinstance(payload, dict):
        raise _HttpError(400, "request body must be a JSON object")
    root = payload.get("root")
    if not isinstance(root, str) or not root:
        raise _HttpError(400, "missing required field: root")
    root = os.path.abspath(root)
    if not os.path.isdir(root):
        raise _HttpError(404, f"not a directory: {root}")
    timeout = payload.get("timeout", default_timeout)
    if isinstance(timeout, bool) \
            or not isinstance(timeout, (int, float)) or timeout <= 0:
        raise _HttpError(400, "timeout must be a positive number")
    forget = payload.get("forget", False)
    if not isinstance(forget, bool):
        raise _HttpError(400, "forget must be a boolean")
    return root, float(timeout), forget


class ServiceBase:
    """Plumbing shared by :class:`ScanService` and the fleet front door:
    the HTTP server, request ids, the one-line log and graceful stop.

    Subclasses must set ``telemetry`` and ``_log`` before calling
    :meth:`_bind`, and implement the endpoint methods the handler calls
    (``health``/``status``/``scan``/``scan_stream``/``close``).
    """

    telemetry: Telemetry

    def _bind(self, host: str, port: int) -> None:
        self._lock = threading.Lock()
        self._started = time.time()
        self._seq = itertools.count(1)
        self._shutting_down = False
        self.server = _ScanHTTPServer((host, port), _Handler, self)
        self.host, self.port = self.server.server_address[:2]

    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def new_request_id(self) -> str:
        return f"req-{next(self._seq):06d}-{os.urandom(4).hex()}"

    def log(self, message: str) -> None:
        if self._log is not None:
            self._log(message)

    def metrics_text(self) -> str:
        return metrics_to_text(self.telemetry.metrics, prefix="wape")

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (or ``POST /v1/shutdown``)."""
        self.log(f"listening on {self.address}")
        try:
            self.server.serve_forever(poll_interval=0.1)
        finally:
            self.close()

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns it (tests, embedders)."""
        thread = threading.Thread(target=self.server.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  name="wape-serve", daemon=True)
        thread.start()
        return thread

    def shutdown(self) -> None:
        """Stop accepting requests and let in-flight work finish."""
        with self._lock:
            if self._shutting_down:
                return
            self._shutting_down = True
        # shutdown() blocks until serve_forever returns, so it must run
        # off the handler thread when triggered by POST /v1/shutdown
        threading.Thread(target=self.server.shutdown,
                         name="wape-shutdown", daemon=True).start()

    def close(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class ScanService(ServiceBase):
    """The daemon: owns the scanner, the queue and the HTTP server.

    Args:
        tool: tool facade to scan with; a fresh ``Wape()`` (predictor
            training included — the cost the daemon exists to amortize)
            when omitted.
        options: :class:`ScanOptions` for every scan.  The service needs
            live telemetry for ``/metrics``; when *options* does not
            already carry a :class:`Telemetry` instance, one is created
            and threaded in.
        host/port: bind address; ``port=0`` picks an ephemeral port
            (``self.port`` has the real one — how the tests run).
        max_queue: scans queued or running before new ones get ``503``.
        request_timeout: default seconds a request waits for its scan.
        log: ``callable(str)`` for one-line request logs; ``None`` keeps
            the daemon silent.
        logger: a :class:`repro.obs.JsonlLogger` for structured events
            (``wape serve --log``).  The daemon binds its own run id to
            it, stamps each scan's ``request_id``, and threads it into
            the scan options so pipeline events (worker segments
            included) land in the same file.
    """

    def __init__(self, tool=None, options: ScanOptions | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 max_queue: int = 8,
                 request_timeout: float = DEFAULT_TIMEOUT,
                 log=None, logger=None) -> None:
        base = options if options is not None else ScanOptions()
        if isinstance(base.telemetry, Telemetry):
            self.telemetry = base.telemetry
        else:
            self.telemetry = Telemetry(enabled=True)
            base = dataclasses.replace(base, telemetry=self.telemetry)
        self.run_id = new_run_id().replace("run-", "srv-", 1)
        logger = logger if logger is not None else NULL_LOG
        if logger.enabled and "run_id" not in logger.bound:
            logger = logger.bind(run_id=self.run_id)
        self.logger = logger
        if logger.enabled and base.log is None:
            base = dataclasses.replace(base, log=logger,
                                       run_id=self.run_id)
        self.scanner = Scanner(tool, base)
        self.max_queue = max_queue
        self.request_timeout = request_timeout
        self._log = log
        self._executor = ThreadPoolExecutor(max_workers=1,
                                            thread_name_prefix="wape-scan")
        self._pending = 0
        self._requests = 0
        #: request_id -> {root, started, timed_out} for requests between
        #: queueing and scan completion; the live rows of ``/v1/status``.
        #: A row outlives its HTTP response when the response was a 504:
        #: the scan keeps running on the worker (that is the documented
        #: warm-retry contract), so the row stays — flagged
        #: ``timed_out`` — until the task actually finishes.
        self._in_flight: dict[str, dict] = {}
        self._bind(host, port)
        self.telemetry.metrics.gauge("queue_depth").set(0)

    def close(self) -> None:
        """Release sockets and the worker (idempotent)."""
        self._shutting_down = True
        self.server.server_close()
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # endpoint implementations (called from handler threads)
    def health(self) -> dict:
        with self._lock:
            pending, requests = self._pending, self._requests
        return {
            "status": "ok",
            "version": self.scanner.tool.version,
            "schema_version": SCHEMA_VERSION,
            "uptime_seconds": round(time.time() - self._started, 3),
            "warm_roots": self.scanner.roots(),
            "requests": requests,
            "pending": pending,
        }

    def status(self) -> dict:
        """The live operations view behind ``GET /v1/status``.

        Everything ``health()`` says plus queue depth, each in-flight
        request with its elapsed time (timed-out-but-still-running scans
        included, flagged ``timed_out``), request outcome totals,
        cumulative prefilter tier counts, and the warm per-root state
        (file/result/finding counts and an approximate resident size) —
        what ``wape top`` renders.
        """
        now = time.time()
        with self._lock:
            pending = self._pending
            requests = self._requests
            in_flight = [
                {"request_id": request_id,
                 "root": info["root"],
                 "elapsed_seconds": round(now - info["started"], 3),
                 "timed_out": info.get("timed_out", False)}
                for request_id, info in self._in_flight.items()]
        metrics = self.telemetry.metrics
        return {
            "status": "ok",
            "version": self.scanner.tool.version,
            "schema_version": SCHEMA_VERSION,
            "run_id": self.run_id,
            "uptime_seconds": round(now - self._started, 3),
            "queue_depth": pending,
            "max_queue": self.max_queue,
            "in_flight": in_flight,
            "requests": {
                "total": requests,
                "served": metrics.counter("scan_requests").value,
                "errors": metrics.counter("scan_errors").value,
                "timeouts": metrics.counter("scan_timeouts").value,
                "rejections": metrics.counter("queue_rejections").value,
            },
            "prefilter": self.scanner.prefilter_info(),
            "roots": [self.scanner.root_info(root)
                      for root in self.scanner.roots()],
        }

    # ------------------------------------------------------------------
    def _admit(self, request_id: str, root: str, logger) -> None:
        """Admission control: count the request in or raise 503."""
        metrics = self.telemetry.metrics
        with self._lock:
            if self._shutting_down:
                raise _HttpError(503, "service is shutting down")
            if self._pending >= self.max_queue:
                metrics.counter("queue_rejections").inc()
                logger.warning("queue_rejected", root=root,
                               pending=self._pending)
                raise _HttpError(
                    503, f"scan queue full ({self.max_queue} pending)")
            self._pending += 1
            self._requests += 1
            self._in_flight[request_id] = {"root": root,
                                           "started": time.time(),
                                           "timed_out": False}
            metrics.gauge("queue_depth").set(self._pending)

    def _submit(self, request_id: str, root: str, forget: bool,
                on_file=None):
        """Queue the scan task; returns ``(future, queued, started)``.

        The task — not the request handler — retires the request's
        ``_in_flight`` row, so a scan that outlives its 504 response
        stays visible in ``/v1/status`` until it actually finishes.
        """
        metrics = self.telemetry.metrics
        queued = time.perf_counter()
        started: list[float] = []

        def task():
            started.append(time.perf_counter())
            try:
                with self.telemetry.tracer.span("request", phase="service",
                                                request=request_id,
                                                root=root):
                    if forget:
                        self.scanner.forget(root)
                    self.scanner.on_file = on_file
                    try:
                        return self.scanner.scan(root)
                    finally:
                        self.scanner.on_file = None
            finally:
                with self._lock:
                    self._pending -= 1
                    self._in_flight.pop(request_id, None)
                    metrics.gauge("queue_depth").set(self._pending)

        return self._executor.submit(task), queued, started

    def _mark_timed_out(self, request_id: str, root: str, timeout: float,
                        logger) -> None:
        metrics = self.telemetry.metrics
        metrics.counter("scan_timeouts").inc()
        logger.warning("scan_timeout", root=root, timeout=timeout)
        with self._lock:
            row = self._in_flight.get(request_id)
            if row is not None:  # scan still running on the worker
                row["timed_out"] = True

    def _record_served(self, result, request_id: str, root: str,
                       queue_seconds: float, logger) -> dict:
        """Metrics + service block + logs for one completed scan."""
        metrics = self.telemetry.metrics
        metrics.counter("scan_requests").inc()
        metrics.counter(
            "scans_served_incremental" if result.incremental
            else "scans_served_cold").inc()
        metrics.histogram("scan_seconds").observe(result.seconds)
        metrics.histogram("queue_seconds").observe(queue_seconds)
        data = result.to_dict()
        data["service"]["request_id"] = request_id
        data["service"]["queue_seconds"] = round(queue_seconds, 6)
        logger.info("scan_served", root=root,
                    incremental=result.incremental,
                    analyzed=data["service"]["analyzed_files"],
                    reused=data["service"]["reused_files"],
                    seconds=round(result.seconds, 6),
                    queue_seconds=round(queue_seconds, 6))
        self.log(f"{request_id} scanned {root}: "
                 f"{data['service']['analyzed_files']} analyzed, "
                 f"{data['service']['reused_files']} reused "
                 f"in {result.seconds:.3f}s")
        return data

    def _request_logger(self, request_id: str):
        return self.logger.bind(request_id=request_id) \
            if self.logger.enabled else self.logger

    # ------------------------------------------------------------------
    def scan(self, payload: dict, request_id: str) -> dict:
        """Queue one scan and wait for it; returns the report dict."""
        root, timeout, forget = validate_scan_payload(
            payload, self.request_timeout)
        metrics = self.telemetry.metrics
        logger = self._request_logger(request_id)
        self._admit(request_id, root, logger)
        logger.info("scan_queued", root=root, forget=forget)
        future, queued, started = self._submit(request_id, root, forget)
        try:
            result = future.result(timeout=timeout)
        except FutureTimeoutError:
            # the scan keeps running on the worker and warms the state,
            # so the retry after a timeout is typically fast
            self._mark_timed_out(request_id, root, timeout, logger)
            raise _HttpError(
                504, f"scan of {root} exceeded {timeout:g}s "
                     "(still running; retry to reuse its warm state)")
        except ServiceError:
            raise
        except Exception as exc:  # scanner bug: contain, report, survive
            metrics.counter("scan_errors").inc()
            logger.error("scan_error", root=root,
                         error=f"{type(exc).__name__}: {exc}")
            raise _HttpError(500, f"scan failed: "
                                  f"{type(exc).__name__}: {exc}")
        queue_seconds = (started[0] if started else queued) - queued
        return self._record_served(result, request_id, root,
                                   queue_seconds, logger)

    def scan_stream(self, payload: dict, request_id: str):
        """Queue one scan for streaming; returns an event generator.

        Validation and admission happen eagerly — a bad payload or a
        full queue raises :class:`_HttpError` *before* any response
        bytes are written, so those still surface as plain JSON errors.
        The returned generator then yields NDJSON-able event dicts:
        ``scan_started``, one ``file`` per finalized file (the same
        shape as a report's ``files[]`` entries), and a terminal
        ``scan_done`` (report sans ``files``) or ``error``.
        """
        root, timeout, forget = validate_scan_payload(
            payload, self.request_timeout)
        metrics = self.telemetry.metrics
        logger = self._request_logger(request_id)
        self._admit(request_id, root, logger)
        logger.info("scan_queued", root=root, forget=forget, stream=True)
        groups = dict(self.scanner.tool.groups)
        events: queue.Queue = queue.Queue()

        def on_file(file_report):
            events.put(("file", file_report_dict(file_report, groups,
                                                 root)))

        future, queued, started = self._submit(request_id, root, forget,
                                               on_file=on_file)

        def relay(fut):
            try:
                events.put(("done", fut.result()))
            except Exception as exc:
                events.put(("error", exc))

        future.add_done_callback(relay)

        def generate():
            yield {"event": "scan_started", "request_id": request_id,
                   "root": root, "schema_version": SCHEMA_VERSION}
            deadline = time.monotonic() + timeout
            streamed = 0
            while True:
                try:
                    kind, value = events.get(
                        timeout=max(0.0, deadline - time.monotonic()))
                except queue.Empty:
                    self._mark_timed_out(request_id, root, timeout,
                                         logger)
                    yield {"event": "error", "status": 504,
                           "request_id": request_id,
                           "error": f"scan of {root} exceeded "
                                    f"{timeout:g}s (still running; retry "
                                    f"to reuse its warm state)"}
                    return
                if kind == "file":
                    streamed += 1
                    yield {"event": "file", **value}
                elif kind == "done":
                    queue_seconds = (started[0] if started else queued) \
                        - queued
                    data = self._record_served(value, request_id, root,
                                               queue_seconds, logger)
                    data.pop("files", None)  # already streamed
                    data["service"]["files_streamed"] = streamed
                    yield {"event": "scan_done", "report": data}
                    return
                else:
                    metrics.counter("scan_errors").inc()
                    logger.error("scan_error", root=root,
                                 error=f"{type(value).__name__}: {value}")
                    yield {"event": "error", "status": 500,
                           "request_id": request_id,
                           "error": f"scan failed: "
                                    f"{type(value).__name__}: {value}"}
                    return

        return generate()


class _ScanHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, addr, handler, service) -> None:
        self.service = service
        super().__init__(addr, handler)


#: label cardinality guard: unknown paths all collapse into one bucket.
_KNOWN_ENDPOINTS = ("/v1/health", "/v1/status", "/v1/scan",
                    "/v1/shutdown", "/metrics")


class _Handler(BaseHTTPRequestHandler):
    server_version = "wape-serve"
    protocol_version = "HTTP/1.1"

    @property
    def service(self):
        return self.server.service

    def log_message(self, fmt, *args):  # route through the service log
        self.service.log("http " + (fmt % args))

    # ------------------------------------------------------------------
    def _split_path(self) -> tuple[str, dict[str, str]]:
        """Endpoint path and query parameters of this request.

        The query string must NOT take part in endpoint dispatch or in
        the metrics endpoint label: ``GET /v1/health?probe=1`` is the
        health endpoint, not a 404, and not an ``other`` metrics bucket.
        """
        path, _, query = self.path.partition("?")
        params: dict[str, str] = {}
        for pair in query.split("&"):
            if not pair:
                continue
            key, _, value = pair.partition("=")
            params[key] = value
        return path, params

    def _count_request(self, status: int) -> None:
        path, _params = self._split_path()
        endpoint = path if path in _KNOWN_ENDPOINTS else "other"
        labels = (f"endpoint={endpoint},method={self.command},"
                  f"status={status}")
        metrics = self.service.telemetry.metrics
        metrics.counter(f"http_requests_total|{labels}").inc()
        started_at = getattr(self, "_started_at", None)
        if started_at is not None:
            metrics.histogram(f"http_request_seconds|{labels}").observe(
                time.perf_counter() - started_at)

    def _respond(self, status: int, body: bytes, content_type: str,
                 request_id: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-Id", request_id)
        self.end_headers()
        self.wfile.write(body)
        # per-endpoint request metrics: every response goes through here
        # (or _respond_stream), so count + latency live in one place
        self._count_request(status)

    def _respond_json(self, status: int, payload: dict,
                      request_id: str) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._respond(status, body, "application/json", request_id)

    def _respond_error(self, status: int, message: str,
                       request_id: str) -> None:
        self._respond_json(status, {"error": message,
                                    "request_id": request_id}, request_id)

    def _respond_stream(self, events, request_id: str) -> None:
        """Write an NDJSON event stream as a chunked 200 response.

        Headers go out before the first event, so failures after that
        point can only be reported in-band (a terminal ``error`` event).
        A client that disconnects mid-stream just stops the writes; the
        scan itself keeps running on the worker.
        """
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("X-Request-Id", request_id)
        self.end_headers()
        try:
            for event in events:
                line = json.dumps(event, sort_keys=True) \
                    .encode("utf-8") + b"\n"
                self.wfile.write(f"{len(line):X}\r\n".encode("ascii")
                                 + line + b"\r\n")
                self.wfile.flush()
            self.wfile.write(b"0\r\n\r\n")
        except OSError:
            self.close_connection = True  # client went away mid-stream
        finally:
            events.close()
        self._count_request(200)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}")

    @staticmethod
    def _extract_baseline(payload):
        """Pop and validate an optional ``baseline`` report from the body.

        Validated eagerly — a malformed baseline must 400 *before* the
        scan runs, not 500 after burning a worker slot on it.
        """
        if not isinstance(payload, dict) or "baseline" not in payload:
            return None
        baseline = payload.pop("baseline")
        if not isinstance(baseline, dict):
            raise _HttpError(400, "baseline must be a report object")
        from repro.exceptions import ReportSchemaError
        from repro.tool.report import upgrade_report_dict
        try:
            return upgrade_report_dict(baseline)
        except ReportSchemaError as exc:
            raise _HttpError(400, f"invalid baseline report: {exc}")

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        self._started_at = time.perf_counter()
        request_id = self.service.new_request_id()
        path, _params = self._split_path()
        try:
            if path == "/v1/health":
                self._respond_json(200, self.service.health(), request_id)
            elif path == "/v1/status":
                self._respond_json(200, self.service.status(), request_id)
            elif path == "/metrics":
                body = self.service.metrics_text().encode("utf-8")
                self._respond(200, body,
                              "text/plain; version=0.0.4", request_id)
            else:
                self._respond_error(404, f"no such endpoint: {path}",
                                    request_id)
        except Exception as exc:
            self._respond_error(500, f"{type(exc).__name__}: {exc}",
                                request_id)

    def do_POST(self) -> None:
        self._started_at = time.perf_counter()
        request_id = self.service.new_request_id()
        path, params = self._split_path()
        try:
            if path == "/v1/scan":
                payload = self._read_json()
                baseline = self._extract_baseline(payload)
                fmt = params.get("format") or "json"
                if fmt not in ("json", "sarif"):
                    raise _HttpError(400, f"unknown format: {fmt}")
                if baseline is not None and fmt == "sarif":
                    raise _HttpError(
                        400, "baseline and format=sarif are mutually "
                             "exclusive (SARIF has no delta block)")
                if params.get("stream") not in (None, "", "0", "false"):
                    if baseline is not None or fmt != "json":
                        raise _HttpError(
                            400, "stream=1 supports neither baseline "
                                 "nor format=sarif")
                    events = self.service.scan_stream(payload, request_id)
                    self._respond_stream(events, request_id)
                else:
                    data = self.service.scan(payload, request_id)
                    if baseline is not None:
                        from repro.api.delta import diff_reports
                        data["delta"] = diff_reports(
                            data, baseline).to_dict()
                    if fmt == "sarif":
                        from repro.tool.sarif import report_to_sarif
                        body = json.dumps(report_to_sarif(data),
                                          sort_keys=True).encode("utf-8")
                        self._respond(200, body, "application/sarif+json",
                                      request_id)
                    else:
                        self._respond_json(200, data, request_id)
            elif path == "/v1/shutdown":
                self._respond_json(200, {"status": "shutting down"},
                                   request_id)
                self.service.shutdown()
            else:
                self._respond_error(404, f"no such endpoint: {path}",
                                    request_id)
        except _HttpError as exc:
            self._respond_error(exc.status, str(exc), request_id)
        except Exception as exc:
            self._respond_error(500, f"{type(exc).__name__}: {exc}",
                                request_id)
