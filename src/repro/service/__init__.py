"""The scan daemon: ``wape serve`` and its HTTP client.

A long-running process built on :class:`repro.api.Scanner`: the tool is
constructed (and its predictor trained) once, parsed state stays warm
between requests, and repeat scans of an edited project re-analyze only
the dirty include-closure.  Everything speaks JSON over local HTTP:

* :class:`~repro.service.server.ScanService` — the single-scanner
  daemon (request queue, per-request timeouts, trace ids, ``/metrics``,
  NDJSON streaming);
* :class:`~repro.service.fleet.FleetService` — the same protocol in
  front of N warm worker processes (``wape serve --workers N``):
  consistent-hash sticky routing, per-worker backpressure, crash
  supervision with cold retry, per-worker memory budgets;
* :class:`~repro.service.client.ServiceClient` — a thin stdlib client
  used by tests and by ``wape scan --server``-style embedders.

:mod:`repro.api` never imports this package; only front-ends that
actually serve or call HTTP pay for it.
"""

from repro.service.client import ServiceClient  # noqa: F401
from repro.service.fleet import FleetService  # noqa: F401
from repro.service.server import ScanService  # noqa: F401

__all__ = ["FleetService", "ScanService", "ServiceClient"]
