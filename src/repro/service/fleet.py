"""The scan fleet: N warm worker processes behind one front door.

``wape serve --workers N`` puts this in front of the same HTTP protocol
:class:`~repro.service.server.ScanService` speaks (health/status/
metrics/scan/stream/shutdown — one handler serves both), but instead of
one scanner on one thread, the front door shards ``/v1/scan`` across N
forked worker processes, each hosting its own warm
:class:`~repro.api.Scanner`:

* **Sticky routing.** A consistent-hash ring (:class:`HashRing`,
  virtual nodes over the project root path) maps each root to one
  worker, so repeat scans of a root always land on the scanner holding
  its warm state.  The ring is keyed by worker *index*, not pid — a
  respawned worker takes over its predecessor's slot (cold, but with
  identical routing), so one crash never reshuffles other roots.
* **Admission control.** Each worker has a bounded queue
  (``max_queue``); a request routed to a full worker is rejected with
  ``503`` immediately — backpressure per shard, so one hot root cannot
  absorb the whole fleet's capacity.
* **Supervision.** Each worker is driven by a dispatcher thread in the
  front door.  A dead pipe (crash, SIGKILL, OOM-kill) is detected on
  the next send/recv; the dispatcher respawns the worker (fork: the
  trained tool is inherited, no re-training) and retries the in-flight
  request once on the fresh — cold — worker before giving up.
* **Memory budgeting.** With ``--memory-budget-mb`` each worker evicts
  least-recently-scanned roots (by ``Scanner.root_info``'s
  ``approx_bytes``) after every scan until its resident warm state fits
  the budget; the root just scanned is never evicted.

Workers are forked, so they inherit the already-trained tool from the
front door for free; on platforms without ``fork`` each worker trains
its own tool at spawn (slower startup, same behavior).  Worker-side
pipeline metrics stay in the worker; the front door's ``/metrics``
exports the fleet's own counters, including per-worker labeled series
(``wape_worker_scans_total{worker="0"}``, ``..._restarts_total``,
``..._evictions_total``).

Crash-injection hook for the tests: when ``WAPE_FLEET_CRASH_MARKER``
names an existing file, the worker receiving the next scan request
unlinks it and dies with ``os._exit(3)`` — a deterministic
crash-exactly-once mid-request.
"""

from __future__ import annotations

import bisect
import hashlib
import multiprocessing
import os
import queue
import threading
import time

from repro.api import Scanner, ScanOptions
from repro.obs.log import NULL_LOG, new_run_id
from repro.telemetry import Telemetry
from repro.tool.report import SCHEMA_VERSION
from repro.service.server import (
    DEFAULT_TIMEOUT,
    ServiceBase,
    _HttpError,
    validate_scan_payload,
)

#: env var naming a marker file; a worker that sees it on a scan request
#: unlinks the file and exits hard — the deterministic crash injector.
CRASH_MARKER_ENV = "WAPE_FLEET_CRASH_MARKER"

_FORK = "fork" in multiprocessing.get_all_start_methods()
_MP = multiprocessing.get_context("fork" if _FORK else None)

_STOP = object()


class HashRing:
    """Consistent hashing of root paths onto worker indices.

    Virtual nodes (``replicas`` per worker) smooth the distribution; the
    ring is built once and never rebalanced — worker slots are stable
    identities that survive respawns, which is exactly what sticky warm
    state wants.
    """

    def __init__(self, workers: int, replicas: int = 64) -> None:
        points = []
        for index in range(workers):
            for replica in range(replicas):
                points.append((self._hash(f"worker-{index}:{replica}"),
                               index))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._indices = [i for _, i in points]

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(
            hashlib.md5(key.encode("utf-8")).digest()[:8], "big")

    def route(self, root: str) -> int:
        """The worker index owning *root*."""
        pos = bisect.bisect(self._hashes, self._hash(root)) \
            % len(self._indices)
        return self._indices[pos]


# ----------------------------------------------------------------------
# worker child process
def _worker_main(conn, tool, options: ScanOptions,
                 memory_budget_bytes: int | None) -> None:
    """Child process loop: one warm Scanner, a pipe, and nothing else.

    Message protocol (dicts over a :func:`multiprocessing.Pipe`):

    parent → worker: ``{"op": "scan", "req", "root", "forget",
    "stream"}`` or ``{"op": "stop"}``.

    worker → parent: per streamed file ``{"op": "file", "req", "data"}``;
    terminal ``{"op": "done", "req", "data": report-dict,
    "incremental", "seconds", "roots": [root_info...], "evicted"}`` or
    ``{"op": "error", "req", "error"}``; ``{"op": "bye"}`` on stop.
    """
    scanner = Scanner(tool, options)
    lru: list[str] = []  # least-recently-scanned first

    def evict(just_scanned: str) -> list[str]:
        if just_scanned in lru:
            lru.remove(just_scanned)
        lru.append(just_scanned)
        evicted: list[str] = []
        if not memory_budget_bytes:
            return evicted
        infos = {root: scanner.root_info(root)
                 for root in scanner.roots()}
        total = sum(info.get("approx_bytes") or 0
                    for info in infos.values())
        while total > memory_budget_bytes and len(lru) > 1:
            victim = lru.pop(0)
            total -= infos.get(victim, {}).get("approx_bytes") or 0
            scanner.forget(victim)
            evicted.append(victim)
        return evicted

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return  # front door went away: nothing left to serve
        op = msg.get("op")
        if op == "stop":
            try:
                conn.send({"op": "bye"})
            except (OSError, BrokenPipeError):
                pass
            return
        if op != "scan":
            continue
        marker = os.environ.get(CRASH_MARKER_ENV)
        if marker and os.path.exists(marker):
            try:
                os.unlink(marker)
            finally:
                os._exit(3)  # the deterministic mid-request crash
        req = msg["req"]
        root = msg["root"]
        try:
            if msg.get("forget"):
                scanner.forget(root)
            if msg.get("stream"):
                from repro.tool.report import file_report_dict
                groups = dict(scanner.tool.groups)
                scanner.on_file = lambda fr: conn.send(
                    {"op": "file", "req": req,
                     "data": file_report_dict(fr, groups, root)})
            try:
                result = scanner.scan(root)
            finally:
                scanner.on_file = None
            evicted = evict(root)
            conn.send({"op": "done", "req": req,
                       "data": result.to_dict(),
                       "incremental": result.incremental,
                       "seconds": result.seconds,
                       "roots": [scanner.root_info(r)
                                 for r in scanner.roots()],
                       "evicted": evicted})
        except Exception as exc:
            try:
                conn.send({"op": "error", "req": req,
                           "error": f"{type(exc).__name__}: {exc}"})
            except (OSError, BrokenPipeError):
                return


# ----------------------------------------------------------------------
class _Job:
    """One scan request in flight between front door and a worker."""

    __slots__ = ("request_id", "root", "forget", "stream", "queued",
                 "started", "retried", "events", "finish_cb")

    def __init__(self, request_id: str, root: str, forget: bool,
                 stream: bool, finish_cb) -> None:
        self.request_id = request_id
        self.root = root
        self.forget = forget
        self.stream = stream
        self.queued = time.perf_counter()
        self.started: float | None = None
        self.retried = False
        #: ("file", dict) events then one terminal ("done", msg) or
        #: ("error", str); the request handler thread consumes these.
        self.events: queue.Queue = queue.Queue()
        self.finish_cb = finish_cb

    def finish(self, kind: str, value) -> None:
        try:
            self.finish_cb(self)
        finally:
            self.events.put((kind, value))


class FleetWorker:
    """Front-door handle for one worker process: queue, pipe, stats.

    A dispatcher thread owns the pipe: it feeds queued jobs to the child
    one at a time, relays its events to the job, and — when the pipe
    dies mid-job — respawns the child and retries the job once.
    """

    def __init__(self, index: int, tool, options: ScanOptions,
                 max_queue: int, memory_budget_bytes: int | None,
                 metrics, log) -> None:
        self.index = index
        self._tool = tool
        self._options = options
        self.max_queue = max_queue
        self._budget = memory_budget_bytes
        self._metrics = metrics
        self._log = log
        self._lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue()
        self.pending = 0  # queued + running jobs (admission bound)
        self.scans = 0
        self.restarts = 0
        self.evictions = 0
        self.roots_info: list[dict] = []  # last report from the child
        self.current: str | None = None  # request id running right now
        self.process = None
        self._conn = None
        self._spawn()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name=f"wape-fleet-{index}",
            daemon=True)
        self._dispatcher.start()

    # ------------------------------------------------------------------
    def _spawn(self) -> None:
        parent_conn, child_conn = _MP.Pipe()
        # under fork the trained tool is inherited by memory; without
        # fork the child builds (and trains) its own
        tool = self._tool if _FORK else None
        self.process = _MP.Process(
            target=_worker_main,
            args=(child_conn, tool, self._options, self._budget),
            name=f"wape-worker-{self.index}", daemon=True)
        self.process.start()
        child_conn.close()
        self._conn = parent_conn

    def _respawn(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5)
        self._spawn()
        with self._lock:
            self.restarts += 1
            self.roots_info = []  # fresh child: all warm state is gone
        self._metrics.counter(
            f"worker_restarts_total|worker={self.index}").inc()
        self._log(f"worker {self.index} respawned "
                  f"(pid {self.process.pid})")

    # ------------------------------------------------------------------
    def submit(self, job: _Job) -> None:
        """Admit *job* or raise 503 (per-worker bounded queue)."""
        with self._lock:
            if self.pending >= self.max_queue:
                raise _HttpError(
                    503, f"worker {self.index} queue full "
                         f"({self.max_queue} pending)")
            self.pending += 1
        self._queue.put(job)

    def job_finished(self) -> None:
        with self._lock:
            self.pending -= 1
            self.current = None

    def stop(self) -> None:
        self._queue.put(_STOP)
        self._dispatcher.join(timeout=10)
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)
        try:
            self._conn.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                try:
                    self._conn.send({"op": "stop"})
                    if self._conn.poll(2):
                        self._conn.recv()  # the "bye"
                except (EOFError, OSError):
                    pass
                return
            self._run_job(job)

    def _run_job(self, job: _Job) -> None:
        with self._lock:
            self.current = job.request_id
        job.started = time.perf_counter()
        for attempt in (1, 2):
            try:
                self._conn.send({"op": "scan", "req": job.request_id,
                                 "root": job.root, "forget": job.forget,
                                 "stream": job.stream})
                while True:
                    msg = self._conn.recv()
                    op = msg.get("op")
                    if op == "file":
                        job.events.put(("file", msg["data"]))
                    elif op == "done":
                        with self._lock:
                            self.scans += 1
                            self.roots_info = msg.get("roots", [])
                            self.evictions += len(msg.get("evicted", []))
                        self._metrics.counter(
                            f"worker_scans_total|worker={self.index}"
                        ).inc()
                        if msg.get("evicted"):
                            self._metrics.counter(
                                f"worker_evictions_total"
                                f"|worker={self.index}"
                            ).inc(len(msg["evicted"]))
                        job.finish("done", msg)
                        return
                    elif op == "error":
                        job.finish("error", msg.get("error", "scan failed"))
                        return
            except (EOFError, OSError, BrokenPipeError):
                # the child died (crash, SIGKILL, OOM): bring up a fresh
                # one and retry the request once, cold
                self._log(f"worker {self.index} died serving "
                          f"{job.request_id}; respawning")
                self._respawn()
                if attempt == 1:
                    job.retried = True
                    continue
                job.finish("error",
                           f"worker {self.index} died twice serving "
                           f"this request")
                return


# ----------------------------------------------------------------------
class FleetService(ServiceBase):
    """The front door: routes, admits, supervises, and speaks HTTP.

    Args:
        tool: trained tool facade shared (via fork) by every worker;
            built fresh when omitted.
        options: :class:`ScanOptions` for every worker's scans.
        host/port: bind address (``port=0`` → ephemeral).
        workers: worker process count (≥ 1).
        max_queue: per-worker pending-scan bound before ``503``.
        request_timeout: default seconds a request waits for its scan.
        memory_budget_mb: per-worker warm-state budget; ``None`` keeps
            every root warm forever.
        log / logger: as for :class:`ScanService`.
    """

    def __init__(self, tool=None, options: ScanOptions | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 workers: int = 2, max_queue: int = 8,
                 request_timeout: float = DEFAULT_TIMEOUT,
                 memory_budget_mb: float | None = None,
                 log=None, logger=None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if tool is None:
            from repro.tool.wap import Wape
            tool = Wape()
        self.tool = tool
        self.options = options if options is not None else ScanOptions()
        self.telemetry = Telemetry(enabled=True)
        self.run_id = new_run_id().replace("run-", "srv-", 1)
        logger = logger if logger is not None else NULL_LOG
        if logger.enabled and "run_id" not in logger.bound:
            logger = logger.bind(run_id=self.run_id)
        self.logger = logger
        self.max_queue = max_queue
        self.request_timeout = request_timeout
        self._log = log
        self._requests = 0
        self._in_flight: dict[str, dict] = {}
        budget = int(memory_budget_mb * (1 << 20)) \
            if memory_budget_mb else None
        self.ring = HashRing(workers)
        self.workers = [
            FleetWorker(index, tool, self.options, max_queue, budget,
                        self.telemetry.metrics, self.log)
            for index in range(workers)]
        self._bind(host, port)
        self.telemetry.metrics.gauge("queue_depth").set(0)
        self.telemetry.metrics.gauge("workers").set(workers)

    def close(self) -> None:
        self._shutting_down = True
        self.server.server_close()
        for worker in self.workers:
            worker.stop()

    # ------------------------------------------------------------------
    def health(self) -> dict:
        with self._lock:
            requests = self._requests
        pending = sum(w.pending for w in self.workers)
        warm: list[str] = []
        for worker in self.workers:
            warm.extend(info["root"] for info in worker.roots_info)
        return {
            "status": "ok",
            "version": self.tool.version,
            "schema_version": SCHEMA_VERSION,
            "uptime_seconds": round(time.time() - self._started, 3),
            "warm_roots": sorted(warm),
            "requests": requests,
            "pending": pending,
            "workers": len(self.workers),
        }

    def status(self) -> dict:
        now = time.time()
        with self._lock:
            requests = self._requests
            in_flight = [
                {"request_id": request_id,
                 "root": info["root"],
                 "worker": info["worker"],
                 "elapsed_seconds": round(now - info["started"], 3),
                 "timed_out": info.get("timed_out", False)}
                for request_id, info in self._in_flight.items()]
        metrics = self.telemetry.metrics
        workers = []
        roots = []
        for worker in self.workers:
            with worker._lock:
                info = {
                    "worker": worker.index,
                    "pid": worker.process.pid,
                    "alive": worker.process.is_alive(),
                    "queue_depth": worker.pending,
                    "scans": worker.scans,
                    "restarts": worker.restarts,
                    "evictions": worker.evictions,
                    "current_request": worker.current,
                    "warm_roots": len(worker.roots_info),
                    "approx_bytes": sum(
                        r.get("approx_bytes") or 0
                        for r in worker.roots_info),
                }
                worker_roots = [dict(r, worker=worker.index)
                                for r in worker.roots_info]
            workers.append(info)
            roots.extend(worker_roots)
        return {
            "status": "ok",
            "version": self.tool.version,
            "schema_version": SCHEMA_VERSION,
            "run_id": self.run_id,
            "uptime_seconds": round(now - self._started, 3),
            "queue_depth": sum(w["queue_depth"] for w in workers),
            "max_queue": self.max_queue,
            "in_flight": in_flight,
            "requests": {
                "total": requests,
                "served": metrics.counter("scan_requests").value,
                "errors": metrics.counter("scan_errors").value,
                "timeouts": metrics.counter("scan_timeouts").value,
                "rejections": metrics.counter("queue_rejections").value,
            },
            "workers": workers,
            "roots": roots,
        }

    # ------------------------------------------------------------------
    def _request_logger(self, request_id: str):
        return self.logger.bind(request_id=request_id) \
            if self.logger.enabled else self.logger

    def _admit(self, request_id: str, root: str, forget: bool,
               stream: bool, logger) -> _Job:
        """Route + admit: returns the queued job or raises 503."""
        worker = self.workers[self.ring.route(root)]
        metrics = self.telemetry.metrics

        def finished(job: _Job) -> None:
            worker.job_finished()
            with self._lock:
                self._in_flight.pop(job.request_id, None)
            metrics.gauge("queue_depth").set(
                sum(w.pending for w in self.workers))

        job = _Job(request_id, root, forget=forget, stream=stream,
                   finish_cb=finished)
        with self._lock:
            if self._shutting_down:
                raise _HttpError(503, "service is shutting down")
            self._requests += 1
            self._in_flight[request_id] = {
                "root": root, "worker": worker.index,
                "started": time.time(), "timed_out": False}
        try:
            worker.submit(job)
        except _HttpError:
            with self._lock:
                self._in_flight.pop(request_id, None)
            metrics.counter("queue_rejections").inc()
            logger.warning("queue_rejected", root=root,
                           worker=worker.index)
            raise
        metrics.gauge("queue_depth").set(
            sum(w.pending for w in self.workers))
        logger.info("scan_queued", root=root, worker=worker.index,
                    stream=stream)
        return job

    def _mark_timed_out(self, request_id: str, root: str,
                        timeout: float, logger) -> None:
        self.telemetry.metrics.counter("scan_timeouts").inc()
        logger.warning("scan_timeout", root=root, timeout=timeout)
        with self._lock:
            row = self._in_flight.get(request_id)
            if row is not None:
                row["timed_out"] = True

    def _record_served(self, job: _Job, msg: dict, worker_index: int,
                       logger) -> dict:
        metrics = self.telemetry.metrics
        metrics.counter("scan_requests").inc()
        metrics.counter(
            "scans_served_incremental" if msg.get("incremental")
            else "scans_served_cold").inc()
        seconds = msg.get("seconds", 0.0)
        queue_seconds = (job.started or job.queued) - job.queued
        metrics.histogram("scan_seconds").observe(seconds)
        metrics.histogram("queue_seconds").observe(queue_seconds)
        data = msg["data"]
        service = data.setdefault("service", {})
        service["request_id"] = job.request_id
        service["queue_seconds"] = round(queue_seconds, 6)
        service["worker"] = worker_index
        service["retried"] = job.retried
        logger.info("scan_served", root=job.root, worker=worker_index,
                    incremental=msg.get("incremental"),
                    retried=job.retried,
                    seconds=round(seconds, 6),
                    queue_seconds=round(queue_seconds, 6))
        self.log(f"{job.request_id} scanned {job.root} on worker "
                 f"{worker_index}: "
                 f"{service.get('analyzed_files')} analyzed, "
                 f"{service.get('reused_files')} reused "
                 f"in {seconds:.3f}s"
                 + (" (retried after worker death)" if job.retried
                    else ""))
        return data

    def _scan_error(self, root: str, message: str, logger) -> _HttpError:
        self.telemetry.metrics.counter("scan_errors").inc()
        logger.error("scan_error", root=root, error=message)
        return _HttpError(500, f"scan failed: {message}")

    # ------------------------------------------------------------------
    def scan(self, payload: dict, request_id: str) -> dict:
        """Route one scan to its sticky worker and wait for the answer."""
        root, timeout, forget = validate_scan_payload(
            payload, self.request_timeout)
        logger = self._request_logger(request_id)
        job = self._admit(request_id, root, forget, stream=False,
                          logger=logger)
        deadline = time.monotonic() + timeout
        while True:
            try:
                kind, value = job.events.get(
                    timeout=max(0.0, deadline - time.monotonic()))
            except queue.Empty:
                self._mark_timed_out(request_id, root, timeout, logger)
                raise _HttpError(
                    504, f"scan of {root} exceeded {timeout:g}s "
                         "(still running; retry to reuse its warm "
                         "state)")
            if kind == "done":
                worker = self.ring.route(root)
                return self._record_served(job, value, worker, logger)
            if kind == "error":
                raise self._scan_error(root, value, logger)
            # stray "file" events cannot happen (stream=False) but are
            # harmless to skip

    def scan_stream(self, payload: dict, request_id: str):
        """Route one scan for streaming; returns an NDJSON event
        generator (same contract as ``ScanService.scan_stream``)."""
        root, timeout, forget = validate_scan_payload(
            payload, self.request_timeout)
        logger = self._request_logger(request_id)
        job = self._admit(request_id, root, forget, stream=True,
                          logger=logger)
        worker_index = self.ring.route(root)

        def generate():
            yield {"event": "scan_started", "request_id": request_id,
                   "root": root, "worker": worker_index,
                   "schema_version": SCHEMA_VERSION}
            deadline = time.monotonic() + timeout
            streamed = 0
            while True:
                try:
                    kind, value = job.events.get(
                        timeout=max(0.0, deadline - time.monotonic()))
                except queue.Empty:
                    self._mark_timed_out(request_id, root, timeout,
                                         logger)
                    yield {"event": "error", "status": 504,
                           "request_id": request_id,
                           "error": f"scan of {root} exceeded "
                                    f"{timeout:g}s (still running; "
                                    f"retry to reuse its warm state)"}
                    return
                if kind == "file":
                    streamed += 1
                    yield {"event": "file", **value}
                elif kind == "done":
                    data = self._record_served(job, value, worker_index,
                                               logger)
                    data.pop("files", None)  # already streamed
                    data["service"]["files_streamed"] = streamed
                    yield {"event": "scan_done", "report": data}
                    return
                else:
                    self.telemetry.metrics.counter("scan_errors").inc()
                    logger.error("scan_error", root=root, error=value)
                    yield {"event": "error", "status": 500,
                           "request_id": request_id,
                           "error": f"scan failed: {value}"}
                    return

        return generate()
