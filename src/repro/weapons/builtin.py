"""The three weapons created in §IV-C, built through the weapon generator.

These reproduce the exact configurations of the paper:

* **NoSQLI** (`-nosqli`): MongoDB collection-method sinks, the
  ``mysql_real_escape_string`` sanitization function, the PHP-sanitization
  fix template (→ ``san_nosqli``), no dynamic symptoms.
* **HI + EI** (`-hei`): ``header`` and ``mail`` sinks, no sanitization
  functions, the user-sanitization fix template replacing the
  ``\\r \\n %0a %0d`` characters with a space (→ ``san_hei``),
  no dynamic symptoms.
* **WordPress SQLI** (`-wpsqli`): the ``$wpdb`` sinks and sanitization
  functions, the PHP-sanitization fix template (→ ``san_wpsqli``), and
  dynamic symptoms mapping the WordPress validation helpers onto static
  symptoms.
"""

from __future__ import annotations

from repro.corrector.templates import (
    TEMPLATE_PHP_SANITIZATION,
    TEMPLATE_USER_SANITIZATION,
)
from repro.mining.extraction import DynamicSymptoms
from repro.vulnerabilities.catalog import (
    NOSQLI_SINKS,
    WPDB_SINKS,
    WP_DYNAMIC_SYMPTOMS,
    WP_SANITIZERS,
    WP_SOURCE_FUNCTIONS,
)
from repro.weapons.generator import Weapon, generate_weapon
from repro.weapons.spec import WeaponClassSpec, WeaponSpec


def nosqli_spec() -> WeaponSpec:
    """§IV-C1: the NoSQL injection weapon for MongoDB-backed PHP apps."""
    return WeaponSpec(
        name="nosqli",
        flag="-nosqli",
        classes=(WeaponClassSpec(
            class_id="nosqli",
            display_name="NoSQL injection",
            sinks=tuple("->" + s for s in NOSQLI_SINKS),
            report_group="NoSQLI",
        ),),
        sanitizers=("mysql_real_escape_string",),
        fix_template=TEMPLATE_PHP_SANITIZATION,
        fix_sanitization_function="mysql_real_escape_string",
    )


def hei_spec() -> WeaponSpec:
    """§IV-C2: the header-injection + email-injection weapon."""
    return WeaponSpec(
        name="hei",
        flag="-hei",
        classes=(
            WeaponClassSpec(class_id="hi",
                            display_name="Header injection",
                            sinks=("header:0",),
                            report_group="HI"),
            WeaponClassSpec(class_id="ei",
                            display_name="Email injection",
                            sinks=("mail",),
                            report_group="EI"),
        ),
        fix_template=TEMPLATE_USER_SANITIZATION,
        fix_malicious_chars=("\r", "\n", "%0a", "%0d"),
        fix_neutralizer=" ",
    )


def wpsqli_spec() -> WeaponSpec:
    """§IV-C3: SQLI detection in WordPress plugins via $wpdb."""
    return WeaponSpec(
        name="wpsqli",
        flag="-wpsqli",
        classes=(WeaponClassSpec(
            class_id="wpsqli",
            display_name="SQL injection (WordPress)",
            sinks=tuple(f"->{s}@wpdb" for s in WPDB_SINKS),
            report_group="SQLI",
        ),),
        sanitizers=tuple(WP_SANITIZERS),
        sanitizer_methods=("prepare",),
        source_functions=tuple(WP_SOURCE_FUNCTIONS),
        fix_template=TEMPLATE_PHP_SANITIZATION,
        fix_sanitization_function="esc_sql",
        dynamic_symptoms=DynamicSymptoms(mapping=dict(WP_DYNAMIC_SYMPTOMS)),
    )


def builtin_weapons() -> list[Weapon]:
    """Generate the three §IV-C weapons."""
    return [generate_weapon(nosqli_spec()),
            generate_weapon(hei_spec()),
            generate_weapon(wpsqli_spec())]
