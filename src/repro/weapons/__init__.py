"""Weapons: WAP extensions for new vulnerability classes (§III-D)."""

from repro.weapons.builtin import (  # noqa: F401
    builtin_weapons,
    hei_spec,
    nosqli_spec,
    wpsqli_spec,
)
from repro.weapons.generator import (  # noqa: F401
    Weapon,
    generate_weapon,
    load_weapon,
    save_weapon,
)
from repro.weapons.registry import WeaponRegistry  # noqa: F401
from repro.weapons.spec import WeaponClassSpec, WeaponSpec  # noqa: F401

__all__ = [
    "WeaponSpec",
    "WeaponClassSpec",
    "Weapon",
    "generate_weapon",
    "save_weapon",
    "load_weapon",
    "WeaponRegistry",
    "builtin_weapons",
    "nosqli_spec",
    "hei_spec",
    "wpsqli_spec",
]
