"""Weapon specifications (§III-D).

A *weapon* is a WAP extension composed of a detector, a fix and, optionally,
a set of dynamic symptoms.  The :class:`WeaponSpec` captures exactly the
data the paper's weapon generator asks the user for:

1. for the **detector** — the sensitive sinks and sanitization functions,
   plus additional entry points if they exist;
2. for the **fix** — data for one of the three fix templates (§III-C);
3. the **dynamic symptoms** — white/black-list functions or functions that
   map onto static symptoms.

One weapon may cover several vulnerability classes sharing a fix (the
paper's HI+EI weapon does), hence ``classes`` is a tuple.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.exceptions import WeaponConfigError
from repro.corrector.templates import (
    TEMPLATE_PHP_SANITIZATION,
    TEMPLATE_USER_SANITIZATION,
    TEMPLATE_USER_VALIDATION,
)
from repro.mining.extraction import NO_DYNAMIC_SYMPTOMS, DynamicSymptoms

_FLAG_RE = re.compile(r"^-[a-z][a-z0-9_]*$")
_ID_RE = re.compile(r"^[a-z][a-z0-9_]*$")


@dataclass(frozen=True)
class WeaponClassSpec:
    """One vulnerability class detected by a weapon.

    Attributes:
        class_id: machine id for the new class (``nosqli``).
        display_name: human name for reports.
        sinks: sensitive sinks in ``ss.txt`` line syntax (``find`` plain
            function, ``->find`` method, ``->query@wpdb:0`` with receiver
            hint and argument positions, ``<echo>`` pseudo-sink...).
        report_group: table column the class is counted under (defaults to
            the display name).
    """

    class_id: str
    display_name: str = ""
    sinks: tuple[str, ...] = ()
    report_group: str = ""


@dataclass(frozen=True)
class WeaponSpec:
    """Everything the weapon generator needs (the user's input)."""

    name: str
    flag: str
    classes: tuple[WeaponClassSpec, ...]
    # detector data shared across the weapon's classes
    sanitizers: tuple[str, ...] = ()
    sanitizer_methods: tuple[str, ...] = ()
    entry_points: tuple[str, ...] = ()
    source_functions: tuple[str, ...] = ()
    # fix data
    fix_template: str = TEMPLATE_USER_VALIDATION
    fix_sanitization_function: str | None = None
    fix_malicious_chars: tuple[str, ...] = ()
    fix_neutralizer: str = " "
    fix_message: str = "malicious characters detected"
    # dynamic symptoms
    dynamic_symptoms: DynamicSymptoms = field(
        default_factory=lambda: NO_DYNAMIC_SYMPTOMS)

    def validate(self) -> None:
        """Raise :class:`WeaponConfigError` on an unusable specification."""
        if not _ID_RE.match(self.name):
            raise WeaponConfigError(f"bad weapon name {self.name!r}")
        if not _FLAG_RE.match(self.flag):
            raise WeaponConfigError(
                f"bad activation flag {self.flag!r} (expected e.g. "
                f"'-nosqli')")
        if not self.classes:
            raise WeaponConfigError("a weapon needs at least one class")
        for cls in self.classes:
            if not _ID_RE.match(cls.class_id):
                raise WeaponConfigError(
                    f"bad class id {cls.class_id!r}")
            if not cls.sinks:
                raise WeaponConfigError(
                    f"class {cls.class_id}: a detector needs at least one "
                    f"sensitive sink")
        if self.fix_template == TEMPLATE_PHP_SANITIZATION \
                and not self.fix_sanitization_function:
            raise WeaponConfigError(
                "the PHP-sanitization fix template needs the sanitization "
                "function name")
        if self.fix_template in (TEMPLATE_USER_SANITIZATION,
                                 TEMPLATE_USER_VALIDATION) \
                and not self.fix_malicious_chars:
            raise WeaponConfigError(
                f"the {self.fix_template} fix template needs the malicious "
                f"characters")
        if self.fix_template not in (TEMPLATE_PHP_SANITIZATION,
                                     TEMPLATE_USER_SANITIZATION,
                                     TEMPLATE_USER_VALIDATION):
            raise WeaponConfigError(
                f"unknown fix template {self.fix_template!r}")

    @property
    def fix_id(self) -> str:
        return f"san_{self.name}"
