"""The weapon generator (§III-D).

``generate_weapon(spec)`` turns a :class:`~repro.weapons.spec.WeaponSpec`
into a working :class:`Weapon`:

1. it configures the *vulnerability detector generator* (§III-A) with the
   user's (ep, ss, san), producing one detector covering the weapon's
   classes;
2. it instantiates the selected fix template, producing a new fix;
3. it packages the dynamic symptoms;
4. it links the three parts so the tool can activate them with the
   weapon's command-line flag.

Weapons can also be saved to / loaded from a *weapon bundle* directory —
the stand-in for the jar the Java implementation compiled (§III-E) — so a
weapon built once is reusable without its generating script.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.exceptions import WeaponConfigError
from repro.analysis.detector import DEFAULT_ENTRY_POINTS, Detector
from repro.analysis.knowledge import parse_sink_line
from repro.analysis.model import DetectorConfig
from repro.corrector.templates import Fix, build_fix
from repro.mining.extraction import DynamicSymptoms
from repro.weapons.spec import WeaponClassSpec, WeaponSpec


@dataclass
class Weapon:
    """A generated weapon: detector + fix + dynamic symptoms (§III-D)."""

    spec: WeaponSpec
    configs: list[DetectorConfig]
    detector: Detector
    fix: Fix
    dynamic_symptoms: DynamicSymptoms

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def flag(self) -> str:
        return self.spec.flag

    @property
    def class_ids(self) -> list[str]:
        return [c.class_id for c in self.spec.classes]

    def report_group(self, class_id: str) -> str:
        for cls in self.spec.classes:
            if cls.class_id == class_id:
                return cls.report_group or cls.display_name or class_id
        return class_id


def generate_weapon(spec: WeaponSpec) -> Weapon:
    """Build a weapon from user-provided data alone (no code required)."""
    spec.validate()

    configs: list[DetectorConfig] = []
    for cls in spec.classes:
        sinks = tuple(parse_sink_line(line) for line in cls.sinks)
        configs.append(DetectorConfig(
            class_id=cls.class_id,
            display_name=cls.display_name or cls.class_id.upper(),
            entry_points=DEFAULT_ENTRY_POINTS | frozenset(
                e.lstrip("$") for e in spec.entry_points),
            source_functions=frozenset(
                f.lower().rstrip("()") for f in spec.source_functions),
            sinks=sinks,
            # the weapon's own fix sanitizes its classes: corrected code
            # must not be re-flagged
            sanitizers=frozenset(s.lower() for s in spec.sanitizers)
            | {spec.fix_id},
            sanitizer_methods=frozenset(
                s.lower() for s in spec.sanitizer_methods),
        ))

    fix = build_fix(
        spec.fix_id, spec.fix_template,
        sanitization_function=spec.fix_sanitization_function,
        malicious_chars=spec.fix_malicious_chars,
        neutralizer=spec.fix_neutralizer,
        message=spec.fix_message,
    )
    return Weapon(spec, configs, Detector(configs), fix,
                  spec.dynamic_symptoms)


# ---------------------------------------------------------------------------
# weapon bundles on disk
# ---------------------------------------------------------------------------

def save_weapon(weapon: Weapon, directory: str) -> None:
    """Write a weapon bundle: meta + per-class ep/ss/san + symptoms."""
    os.makedirs(directory, exist_ok=True)
    spec = weapon.spec
    lines = [
        f"name = {spec.name}",
        f"flag = {spec.flag}",
        f"fix_template = {spec.fix_template}",
        f"fix_neutralizer = {spec.fix_neutralizer!r}",
        f"fix_message = {spec.fix_message}",
    ]
    if spec.fix_sanitization_function:
        lines.append(
            f"fix_sanitization_function = {spec.fix_sanitization_function}")
    if spec.fix_malicious_chars:
        lines.append("fix_malicious_chars = "
                     + ",".join(repr(c) for c in spec.fix_malicious_chars))
    lines.append("classes = " + ",".join(c.class_id for c in spec.classes))
    for cls in spec.classes:
        lines.append(f"display_name.{cls.class_id} = {cls.display_name}")
        lines.append(f"report_group.{cls.class_id} = {cls.report_group}")
    if spec.sanitizers:
        lines.append("sanitizers = " + ",".join(spec.sanitizers))
    if spec.sanitizer_methods:
        lines.append("sanitizer_methods = "
                     + ",".join(spec.sanitizer_methods))
    if spec.entry_points:
        lines.append("entry_points = " + ",".join(spec.entry_points))
    if spec.source_functions:
        lines.append("source_functions = "
                     + ",".join(spec.source_functions))
    with open(os.path.join(directory, "weapon.txt"), "w",
              encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")

    for cls in spec.classes:
        cls_dir = os.path.join(directory, cls.class_id)
        os.makedirs(cls_dir, exist_ok=True)
        with open(os.path.join(cls_dir, "ss.txt"), "w",
                  encoding="utf-8") as f:
            for sink in cls.sinks:
                f.write(sink + "\n")

    dyn = spec.dynamic_symptoms
    with open(os.path.join(directory, "symptoms.txt"), "w",
              encoding="utf-8") as f:
        for func, static in sorted(dyn.mapping.items()):
            f.write(f"map {func} {static}\n")
        for func in sorted(dyn.whitelists):
            f.write(f"whitelist {func}\n")
        for func in sorted(dyn.blacklists):
            f.write(f"blacklist {func}\n")


def load_weapon(directory: str) -> Weapon:
    """Load a weapon bundle saved with :func:`save_weapon`."""
    meta_path = os.path.join(directory, "weapon.txt")
    if not os.path.exists(meta_path):
        raise WeaponConfigError(f"no weapon bundle at {directory}")
    meta: dict[str, str] = {}
    with open(meta_path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and "=" in line:
                key, _, value = line.partition("=")
                meta[key.strip()] = value.strip()

    def split(key: str) -> tuple[str, ...]:
        raw = meta.get(key, "")
        return tuple(x.strip() for x in raw.split(",") if x.strip())

    classes: list[WeaponClassSpec] = []
    for class_id in split("classes"):
        ss_path = os.path.join(directory, class_id, "ss.txt")
        sinks: list[str] = []
        if os.path.exists(ss_path):
            with open(ss_path, encoding="utf-8") as f:
                sinks = [line.strip() for line in f
                         if line.strip() and not line.startswith("#")]
        classes.append(WeaponClassSpec(
            class_id=class_id,
            display_name=meta.get(f"display_name.{class_id}", ""),
            sinks=tuple(sinks),
            report_group=meta.get(f"report_group.{class_id}", ""),
        ))

    chars: tuple[str, ...] = ()
    if meta.get("fix_malicious_chars"):
        import ast as python_ast
        chars = tuple(python_ast.literal_eval(c.strip()) for c in
                      meta["fix_malicious_chars"].split(","))
    neutralizer = " "
    if meta.get("fix_neutralizer"):
        import ast as python_ast
        neutralizer = python_ast.literal_eval(meta["fix_neutralizer"])

    mapping: dict[str, str] = {}
    whitelists: set[str] = set()
    blacklists: set[str] = set()
    symptoms_path = os.path.join(directory, "symptoms.txt")
    if os.path.exists(symptoms_path):
        with open(symptoms_path, encoding="utf-8") as f:
            for line in f:
                parts = line.split()
                if not parts:
                    continue
                if parts[0] == "map" and len(parts) == 3:
                    mapping[parts[1]] = parts[2]
                elif parts[0] == "whitelist" and len(parts) == 2:
                    whitelists.add(parts[1])
                elif parts[0] == "blacklist" and len(parts) == 2:
                    blacklists.add(parts[1])

    spec = WeaponSpec(
        name=meta.get("name", os.path.basename(directory.rstrip("/"))),
        flag=meta.get("flag", ""),
        classes=tuple(classes),
        sanitizers=split("sanitizers"),
        sanitizer_methods=split("sanitizer_methods"),
        entry_points=split("entry_points"),
        source_functions=split("source_functions"),
        fix_template=meta.get("fix_template", ""),
        fix_sanitization_function=meta.get("fix_sanitization_function"),
        fix_malicious_chars=chars,
        fix_neutralizer=neutralizer,
        fix_message=meta.get("fix_message",
                             "malicious characters detected"),
        dynamic_symptoms=DynamicSymptoms(mapping, frozenset(whitelists),
                                         frozenset(blacklists)),
    )
    return generate_weapon(spec)
