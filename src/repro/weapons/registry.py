"""Weapon registry: activation by command-line flag.

The paper: *"Detection is activated using a command line flag also provided
by the user (e.g. -nosqli)"*.  The registry maps flags to generated weapons
and is what the tool consults when assembling a run.
"""

from __future__ import annotations

from repro.exceptions import WeaponConfigError
from repro.weapons.builtin import builtin_weapons
from repro.weapons.generator import Weapon


class WeaponRegistry:
    """Holds generated weapons, addressable by name or activation flag."""

    def __init__(self, weapons: list[Weapon] | None = None) -> None:
        self._by_name: dict[str, Weapon] = {}
        self._by_flag: dict[str, Weapon] = {}
        for weapon in weapons or []:
            self.register(weapon)

    @classmethod
    def with_builtins(cls) -> "WeaponRegistry":
        return cls(builtin_weapons())

    def register(self, weapon: Weapon) -> None:
        if weapon.name in self._by_name:
            raise WeaponConfigError(
                f"weapon {weapon.name!r} already registered")
        if weapon.flag in self._by_flag:
            raise WeaponConfigError(
                f"flag {weapon.flag!r} already taken by "
                f"{self._by_flag[weapon.flag].name!r}")
        self._by_name[weapon.name] = weapon
        self._by_flag[weapon.flag] = weapon

    def by_flag(self, flag: str) -> Weapon:
        if flag not in self._by_flag:
            raise WeaponConfigError(f"no weapon answers to flag {flag!r}")
        return self._by_flag[flag]

    def by_name(self, name: str) -> Weapon:
        if name not in self._by_name:
            raise WeaponConfigError(f"no weapon named {name!r}")
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name or name in self._by_flag

    def __iter__(self):
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def flags(self) -> list[str]:
        return sorted(self._by_flag)
