"""The parallel scan pipeline: engine fusion, worker pool, result cache.

Whole-tree scanning (Tables V-VII of the paper run over thousands of PHP
files) used to pay three avoidable costs: every detector sub-module and
every armed weapon traversed each file's AST with its *own*
:class:`~repro.analysis.engine.TaintEngine`, files were analyzed strictly
one after another, and nothing was remembered between runs.  This module
removes all three:

* **Engine fusion** — :class:`FusedDetector` merges the
  :class:`~repro.analysis.model.DetectorConfig` sets of every sub-module
  and weapon into ONE engine, so each file is traversed once.  Group
  semantics are preserved via the engine's group scoping (a taint born at
  a source function only one group declares cannot reach another group's
  sinks), and the RFI/LFI shape refinement is applied exactly as the
  RCE/file-injection sub-module would.

* **Parallelism** — :class:`ScanScheduler` fans file analysis out over a
  ``concurrent.futures`` process pool with deterministic result ordering.
  A file that kills a worker outright is retried in an isolated
  single-worker pool and, if it kills that too, becomes a ``parse_error``
  :class:`~repro.analysis.detector.FileResult` instead of a dead scan.
  ``jobs=1`` keeps everything in-process (the debugging path).

* **Incremental cache** — :class:`ResultCache` stores per-file detection
  results keyed by (file content hash, knowledge fingerprint, tool
  version).  The fingerprint (:func:`config_fingerprint`) covers every
  config field of every group, so arming a weapon, feeding an extra
  sanitizer (``--sanitizer sqli:escape``) or editing the ep/ss/san
  knowledge base all invalidate cleanly.  Predictions are *not* cached:
  the false-positive predictor re-runs over cached candidates, so
  dynamic-symptom changes never serve stale verdicts.

Known over-approximation corners where fusion can differ from running the
groups separately (none occur in the shipped knowledge, and the test
suite pins equality on the synthesized corpora): a PHP variable shadowing
a group-specific extra entry point, and a single function name that is a
sanitizer for one group but a sink or source for another.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.exceptions import PhpSyntaxError
from repro.php import Parser, ast, parse_with_recovery, tokenize
from repro.php.ast_store import AstCache, AstStore, PackFile
from repro.analysis.detector import PHP_EXTENSIONS, FileResult
from repro.analysis.engine import TaintEngine
from repro.analysis.includes import (
    IncludeContext,
    IncludeGraph,
    build_include_graph,
)
from repro.analysis.summaries import SummaryCache
from repro.analysis.model import (
    STEP_CONCAT,
    CandidateVulnerability,
    DetectorConfig,
)
from repro.analysis.options import ScanOptions
from repro.analysis.prefilter import (
    TIER_SINK_BEARING,
    RelevancePrefilter,
    matcher_for,
)
from repro.ir.opcodes import OPNAMES
from repro.obs.log import NULL_LOG, JsonlLogger, new_run_id
from repro.telemetry import NULL_TELEMETRY, Telemetry

#: bump when the cached payload layout or engine semantics change.
#: 3: cache keys and stored paths are project-relative (a moved or
#: renamed checkout keeps hitting and reports correct file paths).
CACHE_FORMAT = 3

#: parse_error text for a file that repeatedly kills analysis workers.
CRASH_ERROR = "analysis worker crashed"

#: test-only seam: when this environment variable is set, a worker that
#: reads a file containing its value dies immediately, simulating a
#: hard crash (segfault-style) for the recovery tests.
_CRASH_ENV = "REPRO_PIPELINE_CRASH_MARKER"


@dataclass(frozen=True)
class ConfigGroup:
    """One detection unit of the unfused pipeline: a sub-module or weapon.

    Attributes:
        name: sub-module or weapon name (fingerprint + diagnostics).
        configs: the group's :class:`DetectorConfig` objects.
        split_rfi_lfi: whether the group applies the RFI/LFI shape
            refinement (the RCE/file-injection sub-module does).
    """

    name: str
    configs: tuple[DetectorConfig, ...]
    split_rfi_lfi: bool = False


def split_rfi_lfi(cand: CandidateVulnerability) -> CandidateVulnerability:
    """RFI/LFI split (§III-A): a concatenated include target is local.

    Both classes fire on tainted ``include``-family sinks; an include
    target concatenated with literal path fragments is a local-file
    inclusion, a fully attacker-controlled target a remote one.
    """
    if cand.vuln_class != "rfi":
        return cand
    if any(step.kind == STEP_CONCAT for step in cand.path):
        return dataclasses.replace(cand, vuln_class="lfi")
    return cand


class FusedDetector:
    """All sub-modules and weapons evaluated in a single AST traversal.

    Produces, per file, the same candidate set (by
    :meth:`~repro.analysis.model.CandidateVulnerability.key`) as running
    each group's own detector and concatenating, but walks the AST once.
    """

    def __init__(self, groups: tuple[ConfigGroup, ...] | list[ConfigGroup],
                 telemetry: Telemetry | None = None,
                 include_graph: IncludeGraph | None = None,
                 ast_store: AstStore | None = None,
                 summary_cache: SummaryCache | None = None,
                 profile: bool = False) -> None:
        self.groups = tuple(groups)
        self.telemetry = telemetry or NULL_TELEMETRY
        # --profile: the engine accumulates {opcode: [count, seconds]}
        # here; flush_opcode_profile() converts it to telemetry counters
        self.opcode_hist: dict | None = {} if profile else None
        configs = [cfg for g in self.groups for cfg in g.configs]
        self.engine = TaintEngine(
            configs, [list(g.configs) for g in self.groups],
            telemetry=self.telemetry, opcode_hist=self.opcode_hist) \
            if configs else None
        self._split = any(g.split_rfi_lfi for g in self.groups)
        self.include_graph = include_graph
        # one parse per unique content: the scan phase and the include
        # context draw from the same store (shared with the resolver when
        # the scheduler passes its own)
        if ast_store is None:
            ast_store = AstStore(
                metrics=self.telemetry.metrics
                if self.telemetry.enabled else None)
        self.ast_store = ast_store
        self._includes = IncludeContext(
            include_graph, ast_store=ast_store,
            summary_cache=summary_cache,
            metrics=self.telemetry.metrics
            if self.telemetry.enabled else None) \
            if include_graph else None

    @property
    def class_ids(self) -> list[str]:
        return [cfg.class_id for g in self.groups for cfg in g.configs]

    # ------------------------------------------------------------------
    def detect_program(self, program: ast.Program,
                       filename: str = "<source>",
                       module=None,
                       source_key: str | None = None
                       ) -> list[CandidateVulnerability]:
        """Analyze an already-parsed program with the fused engine.

        Args:
            program: the parsed file.
            filename: used in the reports and for include-closure lookup.
            module: the file's lowered IR, when the caller already has it
                (the parse-once path does); lowered on the fly otherwise.
            source_key: the file's content hash, when the caller already
                computed it — saves the summary tier one read + hash.
        """
        if self.engine is None:
            return []
        extra = summaries = init = preset = state_key = None
        includes = self._includes
        if includes is not None:
            extra, summaries, init = includes.context_for(filename,
                                                          self.engine)
            preset, state_key = includes.preset_for(filename, source_key)
        candidates, env, run_summaries = self.engine.analyze_with_state(
            program, filename,
            extra_functions=extra,
            initial_env=init,
            module=module,
            extra_summaries=summaries,
            preset_summaries=preset)
        if includes is not None and preset is None:
            # feed the fresh state back: includers of this file compose
            # it in-process, later processes via the summary cache
            includes.remember_state(filename, state_key, env,
                                    run_summaries, source_key=source_key)
        if self._split:
            if self.telemetry.enabled:
                with self.telemetry.tracer.span("split", phase="split",
                                                file=filename):
                    candidates = [split_rfi_lfi(c) for c in candidates]
            else:
                candidates = [split_rfi_lfi(c) for c in candidates]
        seen: set[tuple] = set()
        unique: list[CandidateVulnerability] = []
        for cand in candidates:
            if cand.key() not in seen:
                seen.add(cand.key())
                unique.append(cand)
        return unique

    def detect_source(self, source: str, filename: str = "<source>"
                      ) -> list[CandidateVulnerability]:
        candidates, _warnings = self.detect_source_recovering(source,
                                                             filename)
        return candidates

    def detect_source_recovering(
            self, source: str, filename: str = "<source>"
            ) -> tuple[list[CandidateVulnerability], list[PhpSyntaxError]]:
        """Analyze *source*, recovering from damaged statements.

        Returns the candidates plus the syntax errors that were skipped
        (empty for a clean file).  Still raises :class:`PhpSyntaxError`
        when nothing was salvageable: lexer errors, or a file recovery
        could not extract a single PHP statement from.
        """
        store = self.ast_store
        key = store.source_key(source)
        entry = store.lookup(key)
        if entry is not None:
            program, warnings = store.materialize(entry, filename)
        elif not self.telemetry.enabled:
            try:
                program, warnings = parse_with_recovery(source, filename)
            except PhpSyntaxError as exc:
                store.store_error(key, exc)
                raise
            store.store(key, program, warnings)  # lowers to IR inside
        else:
            # traced variant of AstStore.parse_recovering: lex, parse and
            # lower keep their own spans; a store hit skips all three
            tracer = self.telemetry.tracer
            try:
                with tracer.span("lex", phase="lex", file=filename):
                    tokens = tokenize(source, filename)
                with tracer.span("parse", phase="parse",
                                 file=filename):
                    parser = Parser(tokens, filename, recover=True)
                    program = parser.parse_program()
                    warnings = list(parser.warnings)
            except PhpSyntaxError as exc:
                store.store_error(key, exc)
                raise
            with tracer.span("lower", phase="lower", file=filename):
                module = store._lower(program)
            store.store(key, program, warnings, module=module)
        if warnings and not any(not isinstance(node, ast.InlineHTML)
                                for node in program.body):
            raise warnings[0]  # recovery salvaged no PHP at all
        return self.detect_program(program, filename,
                                   module=store.module_for(key),
                                   source_key=key), warnings

    def detect_file(self, path: str) -> FileResult:
        """Analyze one file; errors are captured, wall time recorded."""
        telemetry = self.telemetry
        if not telemetry.enabled:
            return self._detect_file(path)
        with telemetry.tracer.span("file", phase="file", file=path):
            result = self._detect_file(path)
        metrics = telemetry.metrics
        metrics.counter("files_scanned").inc()
        metrics.counter("lines_scanned").inc(result.lines_of_code)
        if result.parse_error:
            metrics.counter("parse_errors").inc()
        if result.parse_warning:
            metrics.counter("parse_warnings").inc()
            metrics.counter("statements_recovered").inc(
                result.recovered_statements)
        for cand in result.candidates:
            metrics.counter(f"candidates.{cand.vuln_class}").inc()
        return result

    def _detect_file(self, path: str) -> FileResult:
        start = time.perf_counter()
        result = FileResult(filename=path)
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                source = f.read()
        except OSError as exc:
            result.parse_error = str(exc)
            result.seconds = time.perf_counter() - start
            return result
        result.lines_of_code = source.count("\n") + 1
        try:
            result.candidates, warnings = \
                self.detect_source_recovering(source, path)
            if warnings:
                result.parse_warning = str(warnings[0]) if len(warnings) == 1 \
                    else f"{warnings[0]} (+{len(warnings) - 1} more)"
                result.recovered_statements = len(warnings)
        except PhpSyntaxError as exc:
            result.parse_error = str(exc)
        except RecursionError:
            result.parse_error = "recursion limit during analysis"
        result.seconds = time.perf_counter() - start
        return result

    def flush_opcode_profile(self) -> None:
        """Convert the opcode histogram into telemetry counters.

        ``ir_op_count.<OP>`` (dispatches) and ``ir_op_ns.<OP>``
        (cumulative integer nanoseconds) are plain counters, so the
        existing cross-process counter merge aggregates every worker's
        histogram into the parent for free.  No-op without ``--profile``
        or without enabled telemetry.
        """
        hist = self.opcode_hist
        if not hist or not self.telemetry.enabled:
            return
        metrics = self.telemetry.metrics
        for op, (count, seconds) in hist.items():
            name = OPNAMES.get(op, str(op))
            metrics.counter(f"ir_op_count.{name}").inc(count)
            metrics.counter(f"ir_op_ns.{name}").inc(int(seconds * 1e9))
        hist.clear()


# ---------------------------------------------------------------------------
# knowledge fingerprint + on-disk result cache
# ---------------------------------------------------------------------------

def _config_token(cfg: DetectorConfig) -> str:
    """Deterministic serialization of one config for fingerprinting."""
    sinks = ";".join(
        f"{s.name}|{s.kind}|{s.arg_positions}|{s.receiver_hint}"
        for s in cfg.sinks)
    return "|".join((
        cfg.class_id,
        cfg.display_name,
        ",".join(sorted(cfg.entry_points)),
        ",".join(sorted(cfg.source_functions)),
        sinks,
        ",".join(sorted(cfg.sanitizers)),
        ",".join(sorted(cfg.sanitizer_methods)),
        ",".join(sorted(cfg.untaint_casts)),
    ))


def config_fingerprint(groups: tuple[ConfigGroup, ...] | list[ConfigGroup],
                       tool_version: str = "") -> str:
    """Stable hash of everything that determines detection results.

    Any change to the knowledge (ep/ss/san edits, extra sanitizers, armed
    weapons), to the grouping, or to the cache format yields a new
    fingerprint, so stale cached results can never be served.
    """
    digest = hashlib.sha256(
        f"scan-cache-v{CACHE_FORMAT}|{tool_version}".encode())
    for group in groups:
        digest.update(f"\n[{group.name}|{group.split_rfi_lfi}]".encode())
        for cfg in group.configs:
            digest.update(("\n" + _config_token(cfg)).encode())
    return digest.hexdigest()


def closure_key(path: str, raw_hash: str,
                graph, raw_hashes: dict[str, str]) -> str:
    """Cache key for *path*: its content hash + its include closure.

    A file analyzed with cross-file context depends on the contents of
    every resolved include; mixing the (dep identity, dep content hash)
    pairs of the closure into the key makes an edit to any included file
    invalidate the includer's cached result.  Dependencies are identified
    by their path *relative to the including file*, never absolutely, so
    a project scanned from a moved or renamed checkout still hits the
    entries it populated at the old location.

    Missing hashes of closure members are computed on demand and written
    back into *raw_hashes*.  Used by both the :class:`ScanScheduler` and
    the warm incremental :class:`repro.api.Scanner`, which must agree
    byte-for-byte on what invalidates a file.
    """
    closure = graph.closure(path) if graph else ()
    if not closure:
        return raw_hash
    base = os.path.dirname(path)
    digest = hashlib.sha256(raw_hash.encode())
    for dep in closure:
        dep_hash = raw_hashes.get(dep)
        if dep_hash is None:
            try:
                with open(dep, "rb") as f:
                    dep_hash = ResultCache.content_hash(f.read())
            except OSError:
                dep_hash = "missing"
            raw_hashes[dep] = dep_hash
        rel = os.path.relpath(dep, base)
        digest.update(f"\n{rel}\x00{dep_hash}".encode())
    return digest.hexdigest()


def _relativize_candidates(candidates: list[CandidateVulnerability],
                           base: str) -> list[CandidateVulnerability]:
    """Strip checkout-specific prefixes before a result is cached.

    Cross-file hops carry the dependency's path in ``PathStep.file``;
    stored absolutely, a cache populated in one checkout would report the
    *old* checkout's paths when served to a moved or renamed project
    root.  Stored relative to the scanned file's directory, they can be
    re-joined against whatever path the file has at load time.
    """
    out = []
    for cand in candidates:
        steps = tuple(
            dataclasses.replace(step, file=os.path.relpath(step.file, base))
            if step.file else step
            for step in cand.path)
        out.append(dataclasses.replace(cand, filename="", path=steps))
    return out


#: placeholder substituted for the scanned file's own path inside cached
#: diagnostic strings (syntax/OS error messages quote the path verbatim).
_FILE_MARKER = "\x00file\x00"


def _strip_file_marker(text: str | None, filename: str) -> str | None:
    return text.replace(filename, _FILE_MARKER) if text else text


def _expand_file_marker(text: str | None, filename: str) -> str | None:
    return text.replace(_FILE_MARKER, filename) if text else text


def _absolutize_candidates(candidates: list[CandidateVulnerability],
                           filename: str) -> list[CandidateVulnerability]:
    """Rebase cached candidates onto the file's current path."""
    base = os.path.dirname(filename)
    out = []
    for cand in candidates:
        steps = tuple(
            dataclasses.replace(
                step, file=os.path.normpath(os.path.join(base, step.file)))
            if step.file else step
            for step in cand.path)
        out.append(dataclasses.replace(cand, filename=filename, path=steps))
    return out


class ResultCache:
    """Content-addressed per-file detection results on disk.

    Layout: ``<directory>/<fingerprint-prefix>/<content-hash>.pkl``.  The
    fingerprint directory isolates knowledge configurations from each
    other; the content hash makes results follow file *contents*, so an
    unchanged tree re-scans near-instantly and a renamed file still hits.

    Entries never embed the paths of the checkout that populated them:
    candidate filenames and cross-file hop attributions are stored
    relative to the scanned file and re-joined at load, so a cache can be
    shared across moved, renamed or duplicated project roots.

    Behaviour is always counted — ``hits``/``misses``/``evictions``/
    ``puts`` — so the report can surface cache effectiveness even when
    telemetry is off.  A corrupt entry is *evicted* (deleted) on the miss
    that discovers it, so it cannot keep costing a failed unpickle on
    every scan.

    Since the pack-file layout, entries are written into one
    :class:`~repro.php.ast_store.PackFile` (``pack.pkl`` inside the
    fingerprint directory): puts are buffered and persisted by the one
    :meth:`flush` the scheduler issues per scan, replacing thousands of
    per-entry temp-write + rename round trips with a single atomic
    rewrite.  Legacy per-entry ``<hash>.pkl`` files are still read (and
    evicted when corrupt) but no longer written.
    """

    def __init__(self, directory: str, fingerprint: str) -> None:
        self.directory = os.path.join(directory, fingerprint[:24])
        os.makedirs(self.directory, exist_ok=True)
        self.pack = PackFile(os.path.join(self.directory, "pack.pkl"))
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.puts = 0

    @staticmethod
    def content_hash(data: bytes) -> str:
        return hashlib.sha256(data).hexdigest()

    def _entry_path(self, content_hash: str) -> str:
        return os.path.join(self.directory, content_hash + ".pkl")

    def _load(self, key: str):
        """Raw payload for *key* from the pack or a legacy per-file
        entry; ``None`` on miss, with corrupt entries evicted."""
        blob = self.pack.get(key)
        if self.pack.corrupt:
            self.pack.corrupt = False
            self.evictions += 1
        if blob is not None:
            try:
                return pickle.loads(blob)
            except Exception:
                self.pack.discard(key)
                self.evictions += 1
                return None
        entry = self._entry_path(key)
        try:
            with open(entry, "rb") as f:
                return pickle.load(f)
        except FileNotFoundError:
            return None
        except Exception:  # corrupt entries raise anything: miss + evict
            try:
                os.unlink(entry)
                self.evictions += 1
            except OSError:
                pass
            return None

    def get(self, content_hash: str, filename: str) -> FileResult | None:
        """Cached result for *content_hash*, re-attributed to *filename*."""
        payload = self._load(content_hash)
        if not isinstance(payload, dict):
            self.misses += 1
            return None
        self.hits += 1
        return FileResult(
            filename=filename,
            candidates=_absolutize_candidates(payload["candidates"],
                                              filename),
            lines_of_code=payload["lines_of_code"],
            parse_error=_expand_file_marker(payload["parse_error"],
                                            filename),
            parse_warning=_expand_file_marker(payload.get("parse_warning"),
                                              filename),
            recovered_statements=payload.get("recovered_statements", 0),
        )

    def put(self, content_hash: str, result: FileResult) -> None:
        """Buffer one result for the next :meth:`flush`."""
        payload = {
            "candidates": _relativize_candidates(
                result.candidates, os.path.dirname(result.filename)),
            "lines_of_code": result.lines_of_code,
            "parse_error": _strip_file_marker(result.parse_error,
                                              result.filename),
            "parse_warning": _strip_file_marker(result.parse_warning,
                                                result.filename),
            "recovered_statements": result.recovered_statements,
        }
        try:
            blob = pickle.dumps(payload,
                                protocol=pickle.HIGHEST_PROTOCOL)
        except (RecursionError, pickle.PicklingError,
                AttributeError, TypeError):
            return
        self.pack.put(content_hash, blob)
        self.puts += 1

    def flush(self) -> None:
        """Persist buffered puts (one atomic pack rewrite)."""
        self.pack.flush()

    # ------------------------------------------------------------------
    # generic blobs (e.g. the resolved include graph) share the store but
    # deliberately do NOT count toward the per-file hit/miss statistics
    def get_blob(self, key: str):
        return self._load(key)

    def put_blob(self, key: str, value) -> None:
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (RecursionError, pickle.PicklingError,
                AttributeError, TypeError):
            return
        self.pack.put(key, blob)


# ---------------------------------------------------------------------------
# worker pool
# ---------------------------------------------------------------------------

_WORKER_DETECTOR: FusedDetector | None = None
_WORKER_TELEMETRY: Telemetry = NULL_TELEMETRY
_WORKER_LOG = NULL_LOG


def _init_worker(groups: tuple[ConfigGroup, ...],
                 telemetry_enabled: bool = False,
                 include_graph: IncludeGraph | None = None,
                 ast_cache_dir: str | None = None,
                 summary_cache_dir: str | None = None,
                 fingerprint: str = "",
                 profile: bool = False,
                 log_enabled: bool = False,
                 log_level: str = "info",
                 run_id: str = "") -> None:
    """Per-worker initializer: build the fused detector once.

    When the parent scan is traced, each worker records spans and counters
    into its own registry; every chunk result ships them back for merging
    (:meth:`~repro.telemetry.Tracer.merge`), stamped with the worker pid.
    The include graph (resolved once in the parent) rides along so each
    worker can supply cross-file context; per-dependency state is
    memoized inside the worker's :class:`IncludeContext`.  Each worker
    keeps a per-process :class:`AstStore` (scan phase + include context
    share one parse per content), backed by the on-disk AST cache when
    the scan has a cache directory.  When the parent logs structured
    events, each worker buffers its own segment-mode
    :class:`~repro.obs.log.JsonlLogger` (same run id, same level) whose
    records ship back with each chunk result, mirroring the span path.
    """
    global _WORKER_DETECTOR, _WORKER_TELEMETRY, _WORKER_LOG
    _WORKER_TELEMETRY = Telemetry(enabled=telemetry_enabled)
    _WORKER_LOG = JsonlLogger(level=log_level, run_id=run_id or None) \
        if log_enabled else NULL_LOG
    ast_store = AstStore(
        disk=AstCache(ast_cache_dir) if ast_cache_dir else None,
        metrics=_WORKER_TELEMETRY.metrics if telemetry_enabled else None)
    summary_cache = SummaryCache(summary_cache_dir, fingerprint) \
        if summary_cache_dir else None
    _WORKER_DETECTOR = FusedDetector(groups, telemetry=_WORKER_TELEMETRY,
                                     include_graph=include_graph,
                                     ast_store=ast_store,
                                     summary_cache=summary_cache,
                                     profile=profile)


def _scan_path(path: str) -> FileResult:
    """Worker task: analyze one file with the worker's fused detector."""
    marker = os.environ.get(_CRASH_ENV)
    if marker:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                if marker in f.read():
                    os._exit(3)  # simulated hard crash (tests only)
        except OSError:
            pass
    assert _WORKER_DETECTOR is not None
    return _WORKER_DETECTOR.detect_file(path)


def _scan_chunk(paths: list[str]
                ) -> tuple[list[FileResult], list[dict] | None,
                           dict[str, int] | None, list[dict] | None]:
    """Worker task: analyze a batch of files in one round-trip.

    Batching amortizes the per-task IPC cost (submit + result pickling)
    over many files; with ~1 ms of analysis per typical PHP file, per-file
    dispatch would otherwise dominate the wall clock.

    Returns the per-file results plus, when the scan is traced, the
    worker-side span records and counter snapshot for this chunk, plus,
    when the scan logs, this worker's drained log segment.
    """
    telemetry = _WORKER_TELEMETRY
    log = _WORKER_LOG
    if not telemetry.enabled:
        results = [_scan_path(path) for path in paths]
    else:
        with telemetry.tracer.span("chunk", phase="chunk",
                                   files=len(paths)):
            results = [_scan_path(path) for path in paths]
    if log.enabled:
        for result in results:
            if result.parse_error:
                log.warning("parse_error", file=result.filename,
                            error=result.parse_error)
            elif result.parse_warning:
                log.info("parse_warning", file=result.filename,
                         warning=result.parse_warning,
                         recovered=result.recovered_statements)
        log.info("chunk_scanned", files=len(paths),
                 candidates=sum(len(r.candidates) for r in results))
    _flush_worker_caches()
    log_records = log.drain(worker=os.getpid()) or None
    if not telemetry.enabled:
        return results, None, None, log_records
    return (results, telemetry.tracer.drain(worker=os.getpid()),
            telemetry.metrics.drain_counters(), log_records)


def _flush_worker_caches() -> None:
    """Persist the worker's buffered AST/summary pack writes.

    Under ``--profile`` this is also where the worker's opcode histogram
    becomes counters, so it rides home in the chunk's counter snapshot.
    """
    detector = _WORKER_DETECTOR
    if detector is None:
        return
    detector.flush_opcode_profile()
    detector.ast_store.flush()
    includes = detector._includes
    if includes is not None and includes.summary_cache is not None:
        includes.summary_cache.flush()


class ScanScheduler:
    """Fans whole-tree analysis out over a process pool, with caching.

    Args:
        groups: detection units (sub-modules + weapons), as built by the
            tool facades.
        options: the run's :class:`~repro.analysis.options.ScanOptions`
            (jobs, cache_dir, includes, prefilter, telemetry).
        tool_version: mixed into the cache fingerprint so different tool
            versions never share entries.
    """

    def __init__(self, groups: list[ConfigGroup] | tuple[ConfigGroup, ...],
                 tool_version: str = "",
                 options: ScanOptions | None = None) -> None:
        opts = options if options is not None else ScanOptions()
        self.options = opts
        self.groups = tuple(groups)
        self.jobs = opts.resolved_jobs()
        self.fingerprint = config_fingerprint(self.groups, tool_version)
        self.cache = ResultCache(opts.cache_dir, self.fingerprint) \
            if opts.cache_dir else None
        self.telemetry = opts.resolve_telemetry()
        self.includes = opts.includes
        self.profile = opts.profile
        #: correlates this scan's log records, worker segments and
        #: ledger entry; generated here when the caller did not pin one.
        self.run_id = opts.run_id or new_run_id()
        log = opts.log if opts.log is not None else NULL_LOG
        if log.enabled and "run_id" not in log.bound:
            log = log.bind(run_id=self.run_id)
        self.log = log
        #: on-disk AST tier (None without a cache dir or with
        #: ``--no-ast-cache``); workers open their own handle to the
        #: same directory.
        self.ast_cache_dir = opts.cache_dir \
            if (opts.cache_dir and opts.ast_cache) else None
        self.ast_cache = AstCache(self.ast_cache_dir) \
            if self.ast_cache_dir else None
        #: on-disk summary tier (None without a cache dir or with
        #: ``--no-summary-cache``); keyed by content + closure +
        #: knowledge fingerprint, so it needs no fingerprint directory.
        #: It lives inside the AST tier directory, so disabling the AST
        #: tier disables it too.
        self.summary_cache_dir = opts.cache_dir \
            if (opts.cache_dir and opts.ast_cache
                and opts.summary_cache) else None
        self.summary_cache = SummaryCache(self.summary_cache_dir,
                                          self.fingerprint) \
            if self.summary_cache_dir else None
        #: the scan's shared parse memo: include resolution and the
        #: ``jobs=1`` scan phase parse each unique content exactly once.
        self.ast_store = AstStore(
            disk=self.ast_cache,
            metrics=self.telemetry.metrics
            if self.telemetry.enabled else None)
        #: the knowledge-compiled relevance prefilter (None when
        #: disabled): classifies files from raw bytes before any parse
        #: and skips the pipeline for files that cannot contain a
        #: finding.  The compiled matcher is memoized per knowledge
        #: fingerprint, so arming a weapon rebuilds it.
        self.prefilter = RelevancePrefilter(
            matcher_for(self.groups, self.fingerprint),
            cache=self.cache) if (opts.prefilter and self.groups) else None
        #: tier counts of the last scan (None when the prefilter is off).
        self.prefilter_stats = None
        #: the resolved include graph of the last scan (telemetry + tests).
        self.include_graph: IncludeGraph | None = None
        #: (file, exception class) for files retried in isolation after a
        #: worker died mid-chunk — never silent (satellite of ISSUE 2).
        self.retries: list[tuple[str, str]] = []
        #: (file, exception class) for files whose isolated retry ALSO
        #: crashed; these become ``parse_error`` results.
        self.crashes: list[tuple[str, str]] = []
        self._detector: FusedDetector | None = None
        self._detector_graph: IncludeGraph | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def discover(root: str) -> list[str]:
        """Every PHP file under *root*, in deterministic walk order."""
        paths: list[str] = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for name in sorted(filenames):
                if name.lower().endswith(PHP_EXTENSIONS):
                    paths.append(os.path.join(dirpath, name))
        return paths

    def _local_detector(self) -> FusedDetector:
        graph = self._worker_graph()
        if self._detector is None or self._detector_graph is not graph:
            self._detector = FusedDetector(self.groups,
                                           telemetry=self.telemetry,
                                           include_graph=graph,
                                           ast_store=self.ast_store,
                                           summary_cache=self.summary_cache,
                                           profile=self.profile)
            self._detector_graph = graph
        return self._detector

    def _worker_graph(self) -> IncludeGraph | None:
        """The include graph to hand detectors; None when empty/disabled."""
        return self.include_graph if self.include_graph else None

    # ------------------------------------------------------------------
    def scan_tree(self, root: str) -> list[FileResult]:
        """Analyze every PHP file under *root* (ordered like the walk)."""
        with self.telemetry.tracer.span("discover", phase="discover",
                                        root=root):
            paths = self.discover(root)
        return self.scan_files(paths)

    def scan_files(self, paths: list[str]) -> list[FileResult]:
        """Analyze *paths*, returning results in the same order."""
        telemetry = self.telemetry
        log = self.log
        if log.enabled:
            log.info("scan_start", files=len(paths), jobs=self.jobs,
                     includes=self.includes,
                     fingerprint=self.fingerprint[:12])
        raw_hashes: dict[str, str] = {}
        sources: dict[str, str] = {}
        verdicts: dict[str, tuple[bool, bool]] = {}
        line_counts: dict[str, int] = {}
        if self.cache is not None or self.prefilter is not None:
            for path in paths:
                try:
                    with open(path, "rb") as f:
                        raw = f.read()
                except OSError:
                    continue  # surfaces as a per-file read error below
                raw_hashes[path] = ResultCache.content_hash(raw)
                if self.prefilter is not None:
                    # classify from the bytes we already hold: skipped
                    # files need their line count for the report (the
                    # replacement-decoding below never changes it)
                    verdicts[path] = self.prefilter.verdict(
                        raw, raw_hashes[path])
                    line_counts[path] = raw.count(b"\n") + 1
                # hand the bytes we already read on to the include
                # resolver — but only for files it could possibly parse
                # (keyword present), so a large tree is not held in
                # memory; the empty marker tells the resolver the file
                # has no includes without a second disk read
                if self.includes:
                    if b"include" in raw or b"require" in raw:
                        sources[path] = raw.decode("utf-8",
                                                   errors="replace")
                    else:
                        sources[path] = ""
        if self.includes:
            with telemetry.tracer.span("resolve_includes", phase="link",
                                       files=len(paths)):
                self.include_graph = self._resolve_graph(paths, raw_hashes,
                                                         sources)
            sources = {}
            # cross-file context is memoized per graph: a fresh graph
            # (file contents may have changed) needs a fresh detector
            self._detector = None
            if self.jobs != 1:
                # make the resolve phase's parses visible to the workers
                self.ast_store.flush()
        else:
            self.include_graph = None
        tiers: dict[str, str] | None = None
        if self.prefilter is not None:
            with telemetry.tracer.span("prefilter", phase="prefilter",
                                       files=len(paths)):
                tiers = self.prefilter.classify(paths, self.include_graph,
                                                verdicts, raw_hashes)
            self.prefilter_stats = RelevancePrefilter.stats_of(tiers)
        else:
            self.prefilter_stats = None
        try:
            with telemetry.tracer.span("scan", phase="scan",
                                       files=len(paths)):
                results = self._scan_files_traced(paths, raw_hashes,
                                                  tiers, line_counts)
        finally:
            # the sequential path's opcode histogram lives in the local
            # detector (workers flush theirs before each chunk drain)
            if self._detector is not None:
                self._detector.flush_opcode_profile()
            # one atomic pack rewrite per tier instead of thousands of
            # tiny per-entry files — see PackFile
            self.ast_store.flush()
            if self.summary_cache is not None:
                self.summary_cache.flush()
            if self.cache is not None:
                self.cache.flush()
        if self.include_graph is not None:
            for result in results:
                result.resolved_includes = \
                    self.include_graph.resolved.get(result.filename, 0)
                result.unresolved_includes = \
                    self.include_graph.unresolved.get(result.filename, 0)
        if telemetry.enabled:
            metrics = telemetry.metrics
            for result in results:
                if result.parse_error:
                    metrics.counter("parse_errors_total").inc()
            if self.include_graph is not None:
                metrics.counter("includes_resolved").inc(
                    sum(self.include_graph.resolved.values()))
                metrics.counter("includes_unresolved").inc(
                    sum(self.include_graph.unresolved.values()))
            if self.cache is not None:
                metrics.gauge("cache_hits").set(self.cache.hits)
                metrics.gauge("cache_misses").set(self.cache.misses)
                metrics.gauge("cache_evictions").set(self.cache.evictions)
                metrics.gauge("cache_puts").set(self.cache.puts)
            if self.ast_cache is not None:
                metrics.gauge("ast_cache_hits").set(self.ast_cache.hits)
                metrics.gauge("ast_cache_misses").set(
                    self.ast_cache.misses)
                metrics.gauge("ast_cache_puts").set(self.ast_cache.puts)
            if self.summary_cache is not None:
                metrics.gauge("summary_cache_hits").set(
                    self.summary_cache.hits)
                metrics.gauge("summary_cache_misses").set(
                    self.summary_cache.misses)
                metrics.gauge("summary_cache_puts").set(
                    self.summary_cache.puts)
            if self.prefilter_stats is not None:
                metrics.gauge("prefilter_skipped").set(
                    self.prefilter_stats.skipped)
                metrics.gauge("prefilter_dep_only").set(
                    self.prefilter_stats.dep_only)
                metrics.gauge("prefilter_sink_bearing").set(
                    self.prefilter_stats.sink_bearing)
        if log.enabled:
            log.info("scan_done", files=len(paths),
                     candidates=sum(len(r.candidates) for r in results),
                     parse_errors=sum(1 for r in results
                                      if r.parse_error),
                     retries=len(self.retries),
                     crashes=len(self.crashes),
                     prefilter_skipped=self.prefilter_stats.skipped
                     if self.prefilter_stats is not None else None)
        return results

    def _resolve_graph(self, paths: list[str],
                       raw_hashes: dict[str, str],
                       sources: dict[str, str] | None = None
                       ) -> IncludeGraph:
        """The project include graph, served from cache when unchanged.

        Building the graph parses every file that textually mentions an
        include, which would dominate an otherwise fully-cached re-scan;
        the finished graph is therefore stored as a cache blob keyed by
        the content hashes of ALL scanned files (any edit, add or remove
        rebuilds it from scratch).
        """
        key = None
        if self.cache is not None and len(raw_hashes) == len(paths):
            digest = hashlib.sha256()
            for path in paths:
                digest.update(f"{path}\x00{raw_hashes[path]}\n".encode())
            key = "includes-" + digest.hexdigest()
            cached = self.cache.get_blob(key)
            if isinstance(cached, IncludeGraph):
                return cached
        graph = build_include_graph(paths, sources=sources,
                                    ast_store=self.ast_store)
        if key is not None:
            self.cache.put_blob(key, graph)
        return graph

    def _scan_files_traced(self, paths: list[str],
                           raw_hashes: dict[str, str] | None = None,
                           tiers: dict[str, str] | None = None,
                           line_counts: dict[str, int] | None = None
                           ) -> list[FileResult]:
        telemetry = self.telemetry
        tracer = telemetry.tracer
        results: dict[int, FileResult] = {}
        hashes: dict[int, str] = {}
        raw_hashes = dict(raw_hashes or {})
        line_counts = line_counts or {}
        pending: list[tuple[int, str]] = []
        for i, path in enumerate(paths):
            if tiers is not None \
                    and tiers.get(path, TIER_SINK_BEARING) \
                    != TIER_SINK_BEARING:
                # the prefilter proved this file cannot contain a
                # finding: report it clean without parsing (and without
                # probing or polluting the result cache)
                results[i] = FileResult(
                    filename=path,
                    lines_of_code=line_counts.get(path, 0))
                continue
            if self.cache is not None:
                raw = raw_hashes.get(path)
                if raw is None:
                    try:
                        with open(path, "rb") as f:
                            raw = ResultCache.content_hash(f.read())
                    except OSError as exc:
                        results[i] = FileResult(filename=path,
                                                parse_error=str(exc))
                        continue
                    raw_hashes[path] = raw
                digest = closure_key(path, raw, self.include_graph,
                                     raw_hashes)
                hashes[i] = digest
                if telemetry.enabled:
                    with tracer.span("cache_get", phase="cache",
                                     file=path) as span:
                        cached = self.cache.get(digest, path)
                        span.set(hit=cached is not None)
                else:
                    cached = self.cache.get(digest, path)
                if cached is not None:
                    results[i] = cached
                    continue
            pending.append((i, path))

        if pending:
            if self.jobs == 1:
                fresh = self._scan_sequential(pending)
            else:
                fresh = self._scan_parallel(pending)
            results.update(fresh)
            if self.cache is not None:
                for i, _path in pending:
                    # crash results are environment-specific; don't pin them
                    if results[i].parse_error != CRASH_ERROR:
                        if telemetry.enabled:
                            with tracer.span("cache_put", phase="cache",
                                             file=_path):
                                self.cache.put(hashes[i], results[i])
                        else:
                            self.cache.put(hashes[i], results[i])
        return [results[i] for i in range(len(paths))]

    # ------------------------------------------------------------------
    def _scan_sequential(self, pending: list[tuple[int, str]]
                         ) -> dict[int, FileResult]:
        detector = self._local_detector()
        return {i: detector.detect_file(path) for i, path in pending}

    def _scan_parallel(self, pending: list[tuple[int, str]]
                       ) -> dict[int, FileResult]:
        telemetry = self.telemetry
        tracer = telemetry.tracer
        out: dict[int, FileResult] = {}
        suspect: list[tuple[int, str, str]] = []  # (idx, path, cause)
        workers = min(self.jobs, len(pending))
        # several chunks per worker: amortizes IPC without losing load
        # balancing to one slow straggler chunk
        chunk_size = max(1, len(pending) // (workers * 4))
        chunks = self._build_chunks(pending, chunk_size)
        try:
            with ProcessPoolExecutor(max_workers=workers,
                                     initializer=_init_worker,
                                     initargs=(self.groups,
                                               telemetry.enabled,
                                               self._worker_graph(),
                                               self.ast_cache_dir,
                                               self.summary_cache_dir,
                                               self.fingerprint,
                                               self.profile,
                                               self.log.enabled,
                                               self.log.level,
                                               self.run_id)
                                     ) as pool:
                futures = {pool.submit(_scan_chunk,
                                       [p for _i, p in chunk]): chunk
                           for chunk in chunks}
                for future, chunk in futures.items():
                    try:
                        chunk_results, spans, counters, log_records = \
                            future.result()
                        for (i, _path), result in zip(chunk,
                                                      chunk_results):
                            out[i] = result
                        tracer.merge(spans or [],
                                     parent_id=tracer.current_id)
                        telemetry.metrics.merge_counters(counters)
                        self.log.merge(log_records)
                    except Exception as exc:
                        # a worker died mid-chunk, or raised something we
                        # cannot attribute to one file: retry each file of
                        # the chunk in isolation below
                        cause = type(exc).__name__
                        suspect.extend((i, p, cause) for i, p in chunk)
        except BrokenProcessPool as exc:
            # the pool died while submitting/shutting down
            done = {i for i, _p, _c in suspect} | set(out)
            suspect.extend((i, p, type(exc).__name__)
                           for i, p in pending if i not in done)
        # files in flight when a worker died: retry each in isolation, so
        # one poisonous file cannot take down the scan — each retry is
        # logged to the trace/metrics with the failing file and the
        # exception class that triggered it
        for i, path, cause in suspect:
            out[i] = self._scan_isolated(path, cause)
        return out

    def _build_chunks(self, pending: list[tuple[int, str]],
                      chunk_size: int) -> list[list[tuple[int, str]]]:
        """Batch pending files, keeping include-connected files together.

        Files linked by include edges share dependency state (parsed
        programs, summaries, exported envs) that each worker memoizes;
        co-locating a component in one chunk means that state is built
        once instead of once per worker that happens to see a member.
        """
        if not self._worker_graph():
            return [pending[i:i + chunk_size]
                    for i in range(0, len(pending), chunk_size)]
        entries: dict[str, list[tuple[int, str]]] = {}
        for i, path in pending:
            entries.setdefault(path, []).append((i, path))
        chunks: list[list[tuple[int, str]]] = []
        current: list[tuple[int, str]] = []
        for component in self.include_graph.components(
                [p for _i, p in pending]):
            for path in component:
                current.extend(entries.pop(path, ()))
            if len(current) >= chunk_size:
                chunks.append(current)
                current = []
        if current:
            chunks.append(current)
        return chunks

    def _scan_isolated(self, path: str, cause: str = "") -> FileResult:
        """Analyze one suspect file in its own single-worker pool.

        The retry (and, if the isolated worker dies too, the crash) is
        recorded: ``retries``/``crashes`` on the scheduler, the
        ``worker_retries``/``worker_crashes`` counters, and an
        ``isolated_retry`` span carrying the file and exception class.
        """
        telemetry = self.telemetry
        self.retries.append((path, cause or "unknown"))
        telemetry.metrics.counter("worker_retries").inc()
        self.log.warning("worker_retry", file=path,
                         cause=cause or "unknown")
        with telemetry.tracer.span("isolated_retry", phase="retry",
                                   file=path, cause=cause) as span:
            try:
                with ProcessPoolExecutor(max_workers=1,
                                         initializer=_init_worker,
                                         initargs=(self.groups, False,
                                                   self._worker_graph(),
                                                   self.ast_cache_dir,
                                                   self.summary_cache_dir,
                                                   self.fingerprint,
                                                   False,
                                                   self.log.enabled,
                                                   self.log.level,
                                                   self.run_id)
                                         ) as pool:
                    result, _spans, _counters, log_records = pool.submit(
                        _scan_chunk, [path]).result()
                    self.log.merge(log_records)
                    return result[0]
            except BrokenProcessPool as exc:
                self._record_crash(path, type(exc).__name__, span)
                return FileResult(filename=path, parse_error=CRASH_ERROR)
            except Exception as exc:
                self._record_crash(path, type(exc).__name__, span)
                return FileResult(filename=path,
                                  parse_error=f"worker error: {exc}")

    def _record_crash(self, path: str, exc_class: str, span) -> None:
        self.crashes.append((path, exc_class))
        self.telemetry.metrics.counter("worker_crashes").inc()
        self.log.error("worker_crash", file=path, error=exc_class)
        span.set(crashed=True, error=exc_class)
