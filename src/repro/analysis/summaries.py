"""Content-hash-keyed compositional function-summary cache.

The include-aware scan used to *re-execute* dependency bodies: analyzing
``index.php`` meant running the top level of every file in its include
closure (to learn the exported globals) and re-interpreting every
dependency function a call reached.  With the taint engine compiled to
the flat IR, per-function behaviour is fully captured by
:class:`~repro.analysis.model.FunctionSummary`, so a dependency's
contribution to its includers reduces to two values: the taint env its
top level exports and its own function summaries.  This module persists
exactly that pair.

:class:`SummaryCache` stores one entry per dependency file in the same
``ast-v<N>/`` directory as the pickled ASTs (the two tiers version
together: an engine-semantics change that invalidates summaries bumps
:data:`repro.php.ast_store.AST_FORMAT`, stranding both).  Keys cover

* the file's own content hash (:meth:`repro.php.ast_store
  .AstStore.source_key`),
* the (relative path, content hash) pairs of its include closure — an
  edit to anything the file includes invalidates its summaries, exactly
  like :func:`repro.analysis.pipeline.closure_key` for results, and
* the knowledge fingerprint (:func:`repro.analysis.pipeline
  .config_fingerprint`) — summaries embed sanitization verdicts and
  group-scoped sink hits, so they are config-dependent even though the
  IR below them is not.

Entries never embed checkout paths: path-step files and candidate
filenames are stored relative to the summarized file and re-joined at
load, mirroring ``ResultCache``, so a cache survives a moved or renamed
project root.  Entries live in one :class:`~repro.php.ast_store.PackFile`
(buffered puts, one atomic rewrite per :meth:`SummaryCache.flush`);
corrupt entries are evicted on the miss that discovers them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle

from repro.analysis.model import FunctionSummary, Taint
from repro.php.ast_store import AST_FORMAT, PackFile

#: bump when the summary payload layout changes without an engine or
#: frontend format change (rare: AST_FORMAT covers most invalidations).
SUMMARY_FORMAT = 1

Env = dict[str, frozenset]


# ---------------------------------------------------------------------------
# path mapping (relativize on put, absolutize on get)
# ---------------------------------------------------------------------------

def _map_steps(steps, mapper):
    return tuple(
        dataclasses.replace(step, file=mapper(step.file)) if step.file
        else step
        for step in steps)


def _map_taints(taints, mapper):
    return frozenset(
        dataclasses.replace(t, path=_map_steps(t.path, mapper))
        if any(s.file for s in t.path) else t
        for t in taints)


def _map_env(env: Env, mapper) -> Env:
    return {var: _map_taints(taints, mapper)
            for var, taints in env.items()}


def _map_summary(summary: FunctionSummary, mapper) -> FunctionSummary:
    return dataclasses.replace(
        summary,
        filename=mapper(summary.filename) if summary.filename else "",
        returns_params={
            index: _map_steps(steps, mapper)
            for index, steps in summary.returns_params.items()},
        param_sinks=[
            (index, class_id, name, kind, line, _map_steps(steps, mapper))
            for index, class_id, name, kind, line, steps
            in summary.param_sinks],
        internal_candidates=[
            dataclasses.replace(cand,
                                filename=mapper(cand.filename),
                                path=_map_steps(cand.path, mapper))
            for cand in summary.internal_candidates],
        returned_sources=[
            dataclasses.replace(t, path=_map_steps(t.path, mapper))
            for t in summary.returned_sources],
    )


def _map_state(env: Env, summaries: dict, mapper) -> tuple[Env, dict]:
    return (_map_env(env, mapper),
            {name: _map_summary(s, mapper) for name, s in summaries.items()})


class SummaryCache:
    """On-disk (exported env, function summaries) entries per dependency.

    Layout: ``<directory>/ast-v<AST_FORMAT>/sum-pack.pkl`` — one
    :class:`~repro.php.ast_store.PackFile` of every entry.  The summary
    tier shares the AST tier's version directory because both invalidate
    on frontend/engine format changes, while the knowledge fingerprint
    rides inside the digest (summaries are config-dependent, lowered
    modules are not).

    Puts are buffered until :meth:`flush` (the scan scheduler and the
    workers flush once per scan/chunk).  Behaviour is always counted
    (``hits``/``misses``/``evictions``/``puts``); the telemetry-facing
    ``summary_cache_hit``/``summary_cache_miss`` counters are published
    by the caller (:class:`repro.analysis.includes.IncludeContext`).
    """

    def __init__(self, directory: str, fingerprint: str) -> None:
        self.directory = os.path.join(directory, f"ast-v{AST_FORMAT}")
        os.makedirs(self.directory, exist_ok=True)
        self.pack = PackFile(os.path.join(self.directory, "sum-pack.pkl"))
        self.fingerprint = fingerprint
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.puts = 0

    # ------------------------------------------------------------------
    def state_key(self, source_key: str,
                  closure_pairs: list[tuple[str, str]]) -> str:
        """Digest identifying one file's summary state.

        Args:
            source_key: the file's own content hash.
            closure_pairs: (path relative to the file, content hash) of
                every member of its include closure, in closure order.
        """
        digest = hashlib.sha256(
            f"summary-v{SUMMARY_FORMAT}|{self.fingerprint}|{source_key}"
            .encode())
        for rel, dep_key in closure_pairs:
            digest.update(f"\n{rel}\x00{dep_key}".encode())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    def get(self, key: str, filename: str) -> tuple[Env, dict] | None:
        """Cached (env, summaries) for *key*, rebased onto *filename*."""
        blob = self.pack.get(key)
        if self.pack.corrupt:
            self.pack.corrupt = False
            self.evictions += 1
        if blob is None:
            self.misses += 1
            return None
        try:
            env, summaries = pickle.loads(blob)
        except Exception:  # corrupt entries raise anything: miss + evict
            self.misses += 1
            self.pack.discard(key)
            self.evictions += 1
            return None
        self.hits += 1
        base = os.path.dirname(filename)

        def absolutize(path: str) -> str:
            return os.path.normpath(os.path.join(base, path))

        return _map_state(env, summaries, absolutize)

    def put(self, key: str, filename: str,
            env: Env, summaries: dict) -> None:
        """Buffer one file's state for the next :meth:`flush`."""
        base = os.path.dirname(filename)

        def relativize(path: str) -> str:
            return os.path.relpath(path, base)

        payload = _map_state(env, summaries, relativize)
        try:
            blob = pickle.dumps(payload,
                                protocol=pickle.HIGHEST_PROTOCOL)
        # unpicklable members surface as PicklingError, AttributeError
        # or TypeError depending on the object and protocol
        except (RecursionError, pickle.PicklingError,
                AttributeError, TypeError):
            return
        self.pack.put(key, blob)
        self.puts += 1

    def flush(self) -> None:
        """Persist buffered puts (one atomic pack rewrite)."""
        self.pack.flush()
