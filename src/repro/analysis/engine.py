"""The generic taint engine, compiled: a tight loop over the flat IR.

One engine instance is configured with any number of
:class:`~repro.analysis.model.DetectorConfig` objects (one per vulnerability
class) and runs a file's lowered IR module
(:class:`~repro.ir.opcodes.IRModule`) **once**, tracking taint for all
classes simultaneously.  Per-class behaviour (which sinks fire, which
sanitizers untaint) is resolved through the merged lookup tables built in
``__init__`` — this is what makes the engine reusable by the *vulnerability
detector generator*: a new class is purely new data, never new code.

The abstract domain is unchanged from the original AST walker (kept
verbatim in :mod:`repro.analysis.astwalk` as the differential-test
oracle): a set of :class:`~repro.analysis.model.Taint` values per
variable, joins are set unions, loops run two iterations (enough for
loop-carried string accumulation, the pattern that matters for injection
flaws), user functions get on-demand summaries with a recursion guard.
What changed is the *dispatch*: instead of a ~30-way ``isinstance``
ladder per AST node with guards/contexts recomputed on every visit, the
hot path is an integer-opcode ``while`` loop over a linear instruction
array in which all syntax-only work was precomputed by
:func:`repro.ir.lower.lower_program`.

Two summary channels make cross-file analysis compositional:

* ``extra_summaries`` — finished :class:`FunctionSummary` objects from
  already-analyzed dependency files (the include closure), consulted
  before falling back to re-interpreting a foreign declaration body.
* ``preset_summaries`` — this file's own summaries replayed from the
  on-disk cache (:mod:`repro.analysis.summaries`), seeded wholesale so
  the dedup pass sees candidates in the original completion order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter

from repro.analysis.model import (
    EMPTY,
    STEP_ASSIGN,
    STEP_CALL,
    STEP_CONCAT,
    STEP_GUARD,
    STEP_PARAM,
    STEP_RETURN,
    STEP_SINK,
    STEP_SOURCE,
    SINK_ECHO,
    SINK_FUNCTION,
    SINK_INCLUDE,
    SINK_METHOD,
    SINK_SHELL,
    SINK_STATIC,
    CandidateVulnerability,
    DetectorConfig,
    FunctionSummary,
    PathStep,
    SinkSpec,
    Taint,
    union,
)
from repro.ir.lower import lower_function, lower_program
from repro.ir.opcodes import (
    APPEND,
    ARROW,
    ASSIGN,
    ASSIGN_KEY,
    ASSIGN_STATIC,
    CALL,
    CALL_FOLD,
    CALL_METHOD,
    CALL_STATIC,
    CAST,
    CLOSURE,
    CONCAT,
    GUARD,
    IF,
    JUMP,
    LIST_ASSIGN,
    LOAD_KEY,
    LOOP,
    RET,
    SINK,
    SOURCE,
    SOURCE_INDEX,
    STEP,
    SWITCH,
    TRY,
    UNION,
    UNSET,
    IfMeta,
    IRFunction,
    IRModule,
    LoopMeta,
    SwitchMeta,
    TryMeta,
)

Env = dict[str, frozenset]

#: validation functions recognized as *guards* when used in conditions.
#: Guards never untaint — they are recorded on the path as symptoms that the
#: false positive predictor later turns into attributes (Table I).
GUARD_FUNCTIONS = frozenset({
    "is_string", "is_int", "is_integer", "is_long", "is_float", "is_double",
    "is_real", "is_numeric", "is_scalar", "is_null", "is_array", "is_bool",
    "ctype_digit", "ctype_alpha", "ctype_alnum",
    "preg_match", "preg_match_all", "ereg", "eregi",
    "strcmp", "strncmp", "strcasecmp", "strncasecmp", "strnatcmp",
    "in_array", "array_key_exists", "filter_var", "checkdate",
})

#: $_SERVER keys that carry attacker-controlled data.
TAINTED_SERVER_KEYS = frozenset({
    "php_self", "query_string", "request_uri", "path_info",
    "http_user_agent", "http_referer", "http_cookie", "http_host",
    "http_accept", "http_accept_language", "http_x_forwarded_for",
})

_NO_MASK = frozenset()


def _stamp_steps(steps: tuple[PathStep, ...],
                 fname: str) -> tuple[PathStep, ...]:
    """Fill in the ``file`` of any hop that does not have one yet."""
    return tuple(s if s.file else PathStep(s.kind, s.detail, s.line, fname)
                 for s in steps)


def _stamp_taint(taint: Taint, fname: str) -> Taint:
    return Taint(taint.source, taint.source_line,
                 _stamp_steps(taint.path, fname), taint.sanitized_for)


def _stamp_candidate(cand: CandidateVulnerability,
                     fname: str) -> CandidateVulnerability:
    path = _stamp_steps(cand.path, fname)
    if path == cand.path:
        return cand
    return replace(cand, path=path)


@dataclass
class _Frame:
    """Per-function analysis frame: captures candidates and return taints."""

    candidates: list[CandidateVulnerability] = field(default_factory=list)
    returns: set[Taint] = field(default_factory=set)


class TaintEngine:
    """Multi-class taint analyzer over a single lowered PHP file.

    When *groups* is given (a partition of *configs*, one group per
    detector sub-module / weapon), the engine runs all groups in a single
    IR pass while keeping group semantics: a taint born at a source
    that only group G declares (its source functions or extra entry
    points) can only reach sinks of G's classes, exactly as if each group
    ran its own engine.  This is the substrate of the fused scan pipeline
    (:mod:`repro.analysis.pipeline`).
    """

    def __init__(self, configs: list[DetectorConfig],
                 groups: list[list[DetectorConfig]] | None = None,
                 telemetry=None, opcode_hist: dict | None = None) -> None:
        if not configs:
            raise ValueError("TaintEngine needs at least one DetectorConfig")
        self.configs = list(configs)
        # --profile support: when a mutable mapping is supplied, every
        # _FileRun routes dispatch through the timing twin of run_span,
        # accumulating {opcode: [count, seconds]} into it.  None (the
        # default) leaves the hot loop byte-identical to unprofiled.
        self.opcode_hist = opcode_hist
        # instrumentation hook (repro.telemetry): when enabled, analyze()
        # wraps the traversal in a `taint` span and counts summaries; the
        # lazy import keeps the engine importable on its own
        if telemetry is None:
            from repro.telemetry import NULL_TELEMETRY
            telemetry = NULL_TELEMETRY
        self.telemetry = telemetry

        self.entry_points: set[str] = set()
        self.source_functions: set[str] = set()
        self.sanitizers: dict[str, set[str]] = {}
        self.sanitizer_methods: dict[str, set[str]] = {}
        self.sink_functions: dict[str, list[tuple[str, SinkSpec]]] = {}
        self.sink_methods: dict[str, list[tuple[str, SinkSpec]]] = {}
        self.echo_classes: list[str] = []
        self.include_classes: list[str] = []
        self.shell_classes: list[str] = []
        self.untaint_casts: set[str] = set()

        for cfg in self.configs:
            self.entry_points |= cfg.entry_points
            self.source_functions |= {f.lower()
                                      for f in cfg.source_functions}
            self.untaint_casts |= cfg.untaint_casts
            for san in cfg.sanitizers:
                self.sanitizers.setdefault(san.lower(), set()).add(
                    cfg.class_id)
            for san in cfg.sanitizer_methods:
                self.sanitizer_methods.setdefault(san.lower(), set()).add(
                    cfg.class_id)
            for sink in cfg.sinks:
                if sink.kind == SINK_FUNCTION:
                    self.sink_functions.setdefault(
                        sink.name.lower(), []).append((cfg.class_id, sink))
                elif sink.kind in (SINK_METHOD, SINK_STATIC):
                    self.sink_methods.setdefault(
                        sink.name.lower(), []).append((cfg.class_id, sink))
                elif sink.kind == SINK_ECHO:
                    self.echo_classes.append(cfg.class_id)
                elif sink.kind == SINK_INCLUDE:
                    self.include_classes.append(cfg.class_id)
                elif sink.kind == SINK_SHELL:
                    self.shell_classes.append(cfg.class_id)

        # group scoping: taints created at a source only some groups
        # declare are pre-sanitized for every class outside those groups
        self.source_masks: dict[str, frozenset[str]] = {}
        self.entry_masks: dict[str, frozenset[str]] = {}
        if groups:
            all_ids = frozenset(cfg.class_id for cfg in self.configs)
            src_allowed: dict[str, set[str]] = {}
            ep_allowed: dict[str, set[str]] = {}
            for group in groups:
                gids = {cfg.class_id for cfg in group}
                for cfg in group:
                    for func in cfg.source_functions:
                        src_allowed.setdefault(func.lower(),
                                               set()).update(gids)
                    for name in cfg.entry_points:
                        ep_allowed.setdefault(name, set()).update(gids)
            for name, allowed in src_allowed.items():
                mask = all_ids - allowed
                if mask:
                    self.source_masks[name] = frozenset(mask)
            for name, allowed in ep_allowed.items():
                mask = all_ids - allowed
                if mask:
                    self.entry_masks[name] = frozenset(mask)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def analyze(self, program,
                filename: str = "<source>",
                extra_functions: dict | None = None,
                initial_env: Env | None = None,
                module: IRModule | None = None,
                extra_summaries: dict | None = None,
                preset_summaries: dict | None = None,
                ) -> list[CandidateVulnerability]:
        """Analyze one file, returning deduplicated candidates.

        Args:
            program: the parsed file; may be ``None`` when *module* is
                given (the parse-once pipeline lowers eagerly and caches
                the module next to the AST).
            filename: used in the reports.
            extra_functions: project-wide declarations from *other* files,
                mapping lowercase name -> (decl node, home filename); used
                by :class:`~repro.analysis.project.ProjectAnalyzer` and the
                include resolver for cross-file call resolution.  Flows
                fully inside a foreign function are NOT re-reported here
                (the home file reports them).
            initial_env: taint state of global variables established by
                resolved includes before this file's top level runs.
            module: the lowered IR of *program*; lowered on the fly when
                absent.
            extra_summaries: finished summaries of dependency functions
                (include closure), consulted before *extra_functions* so
                dependency bodies are not re-interpreted.
            preset_summaries: this file's own summaries replayed from the
                summary cache, in original completion order.
        """
        out, _, _ = self.analyze_with_state(
            program, filename, extra_functions, initial_env,
            module=module, extra_summaries=extra_summaries,
            preset_summaries=preset_summaries)
        return out

    def analyze_with_env(self, program,
                         filename: str = "<source>",
                         extra_functions: dict | None = None,
                         initial_env: Env | None = None,
                         module: IRModule | None = None,
                         extra_summaries: dict | None = None,
                         preset_summaries: dict | None = None,
                         ) -> tuple[list[CandidateVulnerability], Env]:
        """Like :meth:`analyze`, also returning the final top-level env.

        The returned env is what the file exports to anything that
        includes it: the taint sets of its global variables after the top
        level ran (path steps stamped with this file's name).
        """
        out, env, _ = self.analyze_with_state(
            program, filename, extra_functions, initial_env,
            module=module, extra_summaries=extra_summaries,
            preset_summaries=preset_summaries)
        return out, env

    def analyze_with_state(self, program,
                           filename: str = "<source>",
                           extra_functions: dict | None = None,
                           initial_env: Env | None = None,
                           module: IRModule | None = None,
                           extra_summaries: dict | None = None,
                           preset_summaries: dict | None = None,
                           ) -> tuple[list[CandidateVulnerability],
                                      Env, dict]:
        """Like :meth:`analyze_with_env`, also returning the summaries.

        The third element is the run's full name -> :class:`FunctionSummary`
        map in completion order — the unit the summary cache persists and
        include closures compose.
        """
        if module is None:
            module = lower_program(program)
        telemetry = self.telemetry
        if not telemetry.enabled:
            run = _FileRun(self, module, filename, extra_functions,
                           initial_env, extra_summaries, preset_summaries)
            return run.run(), run.final_env, run.summaries
        with telemetry.tracer.span("taint", phase="taint", file=filename):
            run = _FileRun(self, module, filename, extra_functions,
                           initial_env, extra_summaries, preset_summaries)
            out = run.run()
        metrics = telemetry.metrics
        metrics.counter("functions_summarized").inc(len(run.summaries))
        metrics.counter("candidates_emitted").inc(len(out))
        return out, run.final_env, run.summaries


class _FileRun:
    """Interpreter state for the analysis of a single lowered file."""

    def __init__(self, engine: TaintEngine, module: IRModule,
                 filename: str,
                 extra_functions: dict | None = None,
                 initial_env: Env | None = None,
                 extra_summaries: dict | None = None,
                 preset_summaries: dict | None = None) -> None:
        self.engine = engine
        self.module = module
        self.code = module.code
        self.regs: list[frozenset] = [EMPTY] * module.n_regs
        self.filename = filename
        self.functions: dict[str, IRFunction] = module.functions
        self.extra_functions = extra_functions or {}
        self.extra_summaries = extra_summaries or {}
        self.initial_env: Env = dict(initial_env or {})
        self.final_env: Env = {}
        # seeding the replayed summaries wholesale preserves the original
        # completion order, which the first-wins dedup in run() relies on
        self.summaries: dict[str, FunctionSummary] = \
            dict(preset_summaries) if preset_summaries else {}
        self.in_progress: set[str] = set()
        self.frames: list[_Frame] = [_Frame()]
        self._foreign_ir: dict[int, tuple[IRModule, IRFunction]] = {}
        if engine.opcode_hist is not None:
            # the instance attribute shadows the class method, so every
            # dispatch (including re-entrant calls from control-flow
            # handlers) goes through the profiled twin; without a hist
            # no attribute exists and lookup hits the class — zero cost
            self.run_span = self._run_span_profiled

    # ------------------------------------------------------------------
    def run(self) -> list[CandidateVulnerability]:
        # analyze every declared function so flows entirely inside bodies
        # are reported even if the function is never called from this file
        for name in list(self.functions):
            self._summary(name)
        env: Env = dict(self.initial_env)
        self.run_span(self.module.top_span, env)
        self.final_env = {
            key: frozenset(_stamp_taint(t, self.filename)
                           if isinstance(t, Taint) else t for t in value)
            for key, value in env.items()}
        out: list[CandidateVulnerability] = []
        seen: set[tuple] = set()
        for summary in self.summaries.values():
            for cand in summary.internal_candidates:
                if cand.key() not in seen:
                    seen.add(cand.key())
                    out.append(cand)
        for cand in self.frames[0].candidates:
            if cand.key() not in seen:
                seen.add(cand.key())
                out.append(cand)
        out.sort(key=lambda c: (c.sink_line, c.vuln_class))
        return [_stamp_candidate(c, self.filename) for c in out]

    # ------------------------------------------------------------------
    # function summaries
    # ------------------------------------------------------------------
    def _summary(self, name: str) -> FunctionSummary | None:
        name = name.lower()
        memo = self.summaries.get(name)
        if memo is not None:
            return memo
        fn = self.functions.get(name)
        if fn is not None:
            if name in self.in_progress:
                return None
            self.in_progress.add(name)
            try:
                summary = self._compute_summary(
                    name, fn, self.filename,
                    self.module.code, self.module.n_regs)
            finally:
                self.in_progress.discard(name)
            self.summaries[name] = summary
            return summary
        # composed summaries from already-analyzed dependency files are
        # consulted before re-interpreting a foreign declaration body
        composed = self.extra_summaries.get(name)
        if composed is not None:
            self.summaries[name] = composed
            return composed
        entry = self.extra_functions.get(name)
        if entry is None or name in self.in_progress:
            return None
        decl, home = entry
        self.in_progress.add(name)
        try:
            foreign = self._foreign_ir.get(id(decl))
            if foreign is None:
                foreign = lower_function(decl)
                self._foreign_ir[id(decl)] = foreign
            fmodule, ffn = foreign
            summary = self._compute_summary(name, ffn, home,
                                            fmodule.code, fmodule.n_regs)
        finally:
            self.in_progress.discard(name)
        # the declaring file reports its internal flows, not callers
        summary.internal_candidates = []
        self.summaries[name] = summary
        return summary

    def _compute_summary(self, name: str, fn: IRFunction,
                         home: str | None, code: list,
                         n_regs: int) -> FunctionSummary:
        summary = FunctionSummary(name, list(fn.param_names),
                                  filename=home or self.filename)
        env: Env = {}
        for i, pname in enumerate(fn.param_names):
            taint = Taint(f"param:{i}", fn.line,
                          (PathStep(STEP_PARAM, f"${pname}", fn.line),))
            env[pname] = frozenset({taint})
        frame = _Frame()
        self.frames.append(frame)
        saved = (self.code, self.regs)
        if code is not self.code:
            self.code = code
            self.regs = [EMPTY] * n_regs
        try:
            self.run_span(fn.span, env)
        finally:
            self.code, self.regs = saved
            self.frames.pop()

        for cand in frame.candidates:
            if cand.entry_point.startswith("param:"):
                idx = int(cand.entry_point.split(":", 1)[1])
                summary.param_sinks.append(
                    (idx, cand.vuln_class, cand.sink_name, cand.sink_kind,
                     cand.sink_line, cand.path))
            else:
                summary.internal_candidates.append(cand)

        sanitized_sets = []
        for taint in frame.returns:
            if taint.source.startswith("param:"):
                idx = int(taint.source.split(":", 1)[1])
                if idx not in summary.returns_params:
                    summary.returns_params[idx] = taint.path
                sanitized_sets.append(taint.sanitized_for)
            else:
                # entry-point taints returned from a function make the
                # function itself a source for callers
                summary.returned_sources.append(taint)
        if sanitized_sets:
            common = frozenset.intersection(*sanitized_sets)
            summary.return_sanitized_for = common

        # stamp the hops produced inside this function with its home file
        # so cross-file candidates can show which file each hop is in
        fname = summary.filename
        summary.returns_params = {
            i: _stamp_steps(steps, fname)
            for i, steps in summary.returns_params.items()}
        summary.param_sinks = [
            (i, cls, sink_name, sink_kind, line, _stamp_steps(steps, fname))
            for (i, cls, sink_name, sink_kind, line, steps)
            in summary.param_sinks]
        summary.internal_candidates = [
            _stamp_candidate(c, fname) for c in summary.internal_candidates]
        summary.returned_sources = [
            _stamp_taint(t, fname) for t in summary.returned_sources]
        return summary

    # ------------------------------------------------------------------
    # the interpreter
    # ------------------------------------------------------------------
    def run_span(self, span, env: Env) -> None:  # noqa: C901
        """Execute one ``[start, end)`` region of the current code array.

        Re-entrant: control-flow handlers and summary computation call
        back into it for sub-spans.  Registers are module-globally unique,
        so nested runs over *other* spans never clobber live values.
        """
        code = self.code
        regs = self.regs
        eng = self.engine
        entry_points = eng.entry_points
        entry_masks = eng.entry_masks
        sanitizers = eng.sanitizers
        source_functions = eng.source_functions
        source_masks = eng.source_masks
        sink_functions = eng.sink_functions
        sanitizer_methods = eng.sanitizer_methods
        sink_methods = eng.sink_methods
        untaint_casts = eng.untaint_casts
        empty = EMPTY
        env_get = env.get

        pc, end = span
        while pc < end:
            i = code[pc]
            pc += 1
            op = i.op
            if op == SOURCE:
                name = i.name
                if name in entry_points:
                    if name == "_SERVER":
                        regs[i.dst] = empty  # only specific keys taint
                    else:
                        desc = i.extra
                        taint = Taint(
                            desc, i.line,
                            (PathStep(STEP_SOURCE, desc, i.line),),
                            entry_masks.get(name, _NO_MASK))
                        for func, gline in _pending_guards(env, desc, name):
                            taint = taint.step(STEP_GUARD, func, gline)
                        regs[i.dst] = frozenset({taint})
                else:
                    regs[i.dst] = env_get(name, empty)
            elif op == CALL:
                arg_regs, context = i.extra
                name = i.name
                if name in sanitizers:
                    classes = sanitizers[name]
                    regs[i.dst] = frozenset(
                        t.sanitize(classes, name, i.line)
                        for t in union(*[regs[r] for r in arg_regs])) \
                        if arg_regs else empty
                elif name in source_functions:
                    regs[i.dst] = frozenset({Taint(
                        f"{name}()", i.line,
                        (PathStep(STEP_SOURCE, f"{name}()", i.line),),
                        source_masks.get(name, _NO_MASK))})
                else:
                    summary = self._summary(name)
                    if summary is not None:
                        regs[i.dst] = self._apply_summary(
                            summary, name, [regs[r] for r in arg_regs],
                            i.line)
                    elif name in sink_functions:
                        self._check_arg_sinks(
                            sink_functions[name], name, SINK_FUNCTION,
                            [regs[r] for r in arg_regs], i.line, context)
                        regs[i.dst] = empty
                    else:
                        # unknown builtin or library function: taint passes
                        # through (how custom helpers like vfront's
                        # `escape` show up as candidates until configured
                        # as sanitizers — §V-A of the paper)
                        regs[i.dst] = frozenset(
                            t.step(STEP_CALL, name, i.line)
                            for t in union(*[regs[r] for r in arg_regs])) \
                            if arg_regs else empty
            elif op == ASSIGN:
                desc, compound = i.extra
                stepped = frozenset(t.step(STEP_ASSIGN, desc, i.line)
                                    for t in regs[i.a])
                if compound:  # compound assignment merges current taint
                    stepped = union(env_get(i.name, empty), stepped)
                env[i.name] = stepped
                regs[i.dst] = stepped
            elif op == CONCAT:
                regs[i.dst] = frozenset(
                    t.step(STEP_CONCAT, i.name, i.line)
                    for t in union(*[regs[r] for r in i.extra]))
            elif op == SINK:
                flavor, context = i.extra
                taints = regs[i.a]
                if taints:
                    if flavor == "echo":
                        self._check_echo(taints, i.name, i.line, context)
                    elif flavor == "include":
                        self._report_sinks(eng.include_classes, taints,
                                           i.name, SINK_INCLUDE, i.line, ())
                    else:
                        self._report_sinks(eng.shell_classes, taints,
                                           i.name, SINK_SHELL, i.line, ())
            elif op == SOURCE_INDEX:
                name = i.name
                if name in entry_points:
                    key_lower, desc = i.extra
                    if name == "_SERVER" and key_lower is not None and \
                            key_lower not in TAINTED_SERVER_KEYS:
                        regs[i.dst] = empty
                    else:
                        taint = Taint(
                            desc, i.line,
                            (PathStep(STEP_SOURCE, desc, i.line),),
                            entry_masks.get(name, _NO_MASK))
                        for func, gline in _pending_guards(env, desc, name):
                            taint = taint.step(STEP_GUARD, func, gline)
                        regs[i.dst] = frozenset({taint})
                else:
                    regs[i.dst] = env_get(name, empty)
            elif op == JUMP:
                pc = i.a
            elif op == UNION:
                srcs = i.extra
                regs[i.dst] = union(*[regs[r] for r in srcs]) \
                    if srcs else empty
            elif op == STEP:
                regs[i.dst] = frozenset(t.step(i.extra, i.name, i.line)
                                        for t in regs[i.a])
            elif op == IF:
                self._do_if(i.extra, env)
            elif op == APPEND:
                stepped = frozenset(t.step(STEP_ASSIGN, i.extra, i.line)
                                    for t in regs[i.a])
                merged = union(env_get(i.name, empty), stepped)
                env[i.name] = merged
                regs[i.dst] = merged
            elif op == CALL_METHOD:
                arg_regs, receiver, context = i.extra
                name = i.name
                args = [regs[r] for r in arg_regs]
                if name in sanitizer_methods:
                    classes = sanitizer_methods[name]
                    regs[i.dst] = frozenset(
                        t.sanitize(classes, name, i.line)
                        for t in union(*args)) if args else empty
                else:
                    matches = None
                    if name in sink_methods:
                        matches = [(cid, spec)
                                   for cid, spec in sink_methods[name]
                                   if spec.receiver_hint is None
                                   or spec.receiver_hint in receiver]
                    if matches:
                        self._check_arg_sinks(matches, name, SINK_METHOD,
                                              args, i.line, context)
                        regs[i.dst] = empty
                    else:
                        summary = self._summary(name)
                        if summary is not None:
                            regs[i.dst] = self._apply_summary(
                                summary, name, args, i.line)
                        else:
                            regs[i.dst] = frozenset(
                                t.step(STEP_CALL, name, i.line)
                                for t in union(regs[i.a], *args))
            elif op == LOAD_KEY:
                regs[i.dst] = env_get(i.name, empty)
            elif op == ASSIGN_KEY:
                stepped = frozenset(t.step(STEP_ASSIGN, i.name, i.line)
                                    for t in regs[i.a])
                if i.extra:  # compound assignment
                    stepped = union(env_get(i.name, empty), stepped)
                env[i.name] = stepped
                regs[i.dst] = stepped
            elif op == CALL_FOLD:
                regs[i.dst] = frozenset(
                    t.step(STEP_CALL, i.name, i.line)
                    for t in union(*[regs[r] for r in i.extra]))
            elif op == CAST:
                regs[i.dst] = empty if i.name in untaint_casts \
                    else regs[i.a]
            elif op == RET:
                self.frames[-1].returns.update(
                    t.step(STEP_RETURN, "return", i.line)
                    for t in regs[i.a])
            elif op == LOOP:
                self._do_loop(i.extra, env)
            elif op == GUARD:
                _apply_guards(env, i.extra, i.line)
            elif op == LIST_ASSIGN:
                stepped = frozenset(t.step(STEP_ASSIGN, "list", i.line)
                                    for t in regs[i.a])
                for name in i.extra:
                    env[name] = stepped
            elif op == SWITCH:
                self._do_switch(i.extra, env)
            elif op == TRY:
                self._do_try(i.extra, env)
            elif op == CALL_STATIC:
                arg_regs, cls, context = i.extra
                name = i.name
                args = [regs[r] for r in arg_regs]
                if name in sanitizer_methods:
                    classes = sanitizer_methods[name]
                    regs[i.dst] = frozenset(
                        t.sanitize(classes, name, i.line)
                        for t in union(*args)) if args else empty
                else:
                    matches = None
                    if name in sink_methods:
                        matches = [(cid, spec)
                                   for cid, spec in sink_methods[name]
                                   if spec.receiver_hint is None
                                   or spec.receiver_hint in cls]
                    if matches:
                        self._check_arg_sinks(matches, name, SINK_STATIC,
                                              args, i.line, context)
                        regs[i.dst] = empty
                    else:
                        summary = self._summary(f"{cls}::{name}") \
                            or self._summary(name)
                        if summary is not None:
                            regs[i.dst] = self._apply_summary(
                                summary, name, args, i.line)
                        else:
                            regs[i.dst] = frozenset(
                                t.step(STEP_CALL, name, i.line)
                                for t in union(*args)) if args else empty
            elif op == ASSIGN_STATIC:
                env[i.name] = frozenset(
                    t.step(STEP_ASSIGN, i.name, i.line) for t in regs[i.a])
                regs[i.dst] = env[i.name]
            elif op == UNSET:
                for name in i.extra:
                    env.pop(name, None)
            elif op == CLOSURE:
                uses, body_span = i.extra
                child = {name: env_get(name, empty) for name in uses}
                self.run_span(body_span, child)
            elif op == ARROW:
                self.run_span(i.extra, dict(env))
                regs[i.dst] = regs[i.a]

    def _run_span_profiled(self, span, env: Env) -> None:
        """Timing twin of :meth:`run_span` for ``--profile``.

        Executes every instruction as a one-op :meth:`run_span` call
        (class-qualified, bypassing the instance-attribute shadow) and
        accumulates ``{opcode: [count, seconds]}`` into the engine's
        ``opcode_hist``.  Control-flow opcodes (IF/LOOP/SWITCH/TRY and
        the call opcodes that compute summaries) report *cumulative*
        time — their handlers recurse through ``self.run_span``, which
        is this method, so nested work is both counted on its own and
        folded into the parent opcode's bucket.
        """
        code = self.code
        hist = self.engine.opcode_hist
        perf = perf_counter
        run_one = _FileRun.run_span
        pc, end = span
        while pc < end:
            i = code[pc]
            op = i.op
            if op == JUMP:
                pc = i.a
                entry = hist.get(op)
                if entry is None:
                    entry = hist[op] = [0, 0.0]
                entry[0] += 1
                continue
            t0 = perf()
            run_one(self, (pc, pc + 1), env)
            dt = perf() - t0
            pc += 1
            entry = hist.get(op)
            if entry is None:
                entry = hist[op] = [0, 0.0]
            entry[0] += 1
            entry[1] += dt

    # ------------------------------------------------------------------
    # structured control flow (spans executed with walker-identical joins)
    # ------------------------------------------------------------------
    def _do_if(self, meta: IfMeta, env: Env) -> None:
        guards = meta.cond_guards

        # guard application is the first instruction of each branch span
        then_env = dict(env)
        self.run_span(meta.then_span, then_env)

        branches = [then_env]
        for cond_span, body_span in meta.elifs:
            self.run_span(cond_span, env)
            branch = dict(env)
            self.run_span(body_span, branch)
            branches.append(branch)
        if meta.else_span is not None:
            branch = dict(env)
            self.run_span(meta.else_span, branch)
            branches.append(branch)

        merged: Env = {}
        if meta.else_span is None:
            _join_into(merged, env)  # fallthrough path
        for idx, branch in enumerate(branches):
            if idx == 0 and meta.then_terminates:
                continue  # the then-branch never reaches the join point
            _join_into(merged, branch)
        # "if (!valid($x)) exit;" idiom: the continuation is guarded
        if meta.then_terminates and guards:
            _apply_guards(merged, guards, meta.line)
            if meta.exit_kind:
                _apply_guards(merged,
                              [(key, meta.exit_kind) for key, _ in guards],
                              meta.line)
        env.clear()
        env.update(merged)

    def _do_loop(self, meta: LoopMeta, env: Env) -> None:
        kind = meta.kind
        if kind == "foreach":
            stepped = frozenset(
                t.step(STEP_ASSIGN, "foreach", meta.line)
                for t in self.regs[meta.subject])
            branch = dict(env)
            for name in meta.value_names:
                branch[name] = stepped
            if meta.key_name is not None:
                branch[meta.key_name] = stepped
            for _ in range(2):
                inner = dict(branch)
                self.run_span(meta.body_span, inner)
                _join_into(branch, inner)
            _join_into(env, branch)
            return
        if kind == "while":
            self.run_span(meta.cond_span, env)
        # two passes propagate loop-carried taint (e.g. $q .= ...)
        for _ in range(2):
            branch = dict(env)
            self.run_span(meta.body_span, branch)
            if meta.step_span is not None:
                self.run_span(meta.step_span, branch)
            _join_into(env, branch)
        if kind == "dowhile":
            self.run_span(meta.cond_span, env)

    def _do_switch(self, meta: SwitchMeta, env: Env) -> None:
        merged: Env = dict(env)
        # fallthrough over-approximation: each case starts from the
        # cumulative state, as if every earlier case fell through
        branch = dict(env)
        for test_span, body_span in meta.cases:
            if test_span is not None:
                self.run_span(test_span, env)
            self.run_span(body_span, branch)
            _join_into(merged, branch)
        env.clear()
        env.update(merged)

    def _do_try(self, meta: TryMeta, env: Env) -> None:
        # the try body already ran inline on the live env
        for catch_span in meta.catch_spans:
            branch = dict(env)
            self.run_span(catch_span, branch)
            _join_into(env, branch)

    # ------------------------------------------------------------------
    # summaries applied at call sites
    # ------------------------------------------------------------------
    def _apply_summary(self, summary: FunctionSummary, name: str,
                       arg_taints: list[frozenset],
                       line: int) -> frozenset:
        # flows: tainted argument -> sink inside the callee
        for idx, class_id, sink_name, sink_kind, sink_line, steps in \
                summary.param_sinks:
            if idx >= len(arg_taints):
                continue
            for taint in arg_taints[idx]:
                if class_id in taint.sanitized_for:
                    continue
                entry = taint.step(STEP_CALL, name, line)
                path = entry.path + steps
                self._emit(class_id, sink_name, sink_kind, sink_line,
                           taint, path, (),
                           filename=summary.filename or None)
        # flows: tainted argument -> return value
        returned: set[Taint] = set()
        for taint in summary.returned_sources:
            returned.add(taint.step(STEP_CALL, name, line))
        for idx, steps in summary.returns_params.items():
            if idx >= len(arg_taints):
                continue
            for taint in arg_taints[idx]:
                out = Taint(taint.source, taint.source_line,
                            taint.path
                            + (PathStep(STEP_CALL, name, line),)
                            + steps,
                            taint.sanitized_for
                            | summary.return_sanitized_for)
                returned.add(out)
        return frozenset(returned)

    # ------------------------------------------------------------------
    # sink reporting
    # ------------------------------------------------------------------
    def _check_arg_sinks(self, matches: list[tuple[str, SinkSpec]],
                         sink_name: str, sink_kind: str,
                         arg_taints: list[frozenset], line: int,
                         context: str = "") -> None:
        for class_id, spec in matches:
            positions = (range(len(arg_taints))
                         if spec.arg_positions is None
                         else spec.arg_positions)
            for pos in positions:
                if pos >= len(arg_taints):
                    continue
                for taint in arg_taints[pos]:
                    if class_id in taint.sanitized_for:
                        continue
                    self._emit(class_id, sink_name, sink_kind, line,
                               taint, taint.path, (pos,), context)

    def _check_echo(self, taints: frozenset, sink_name: str,
                    line: int, context: str = "") -> None:
        for class_id in self.engine.echo_classes:
            for taint in taints:
                if class_id in taint.sanitized_for:
                    continue
                self._emit(class_id, sink_name, SINK_ECHO, line,
                           taint, taint.path, (), context)

    def _report_sinks(self, class_ids: list[str], taints: frozenset,
                      sink_name: str, sink_kind: str, line: int,
                      positions: tuple[int, ...]) -> None:
        for class_id in class_ids:
            for taint in taints:
                if class_id in taint.sanitized_for:
                    continue
                self._emit(class_id, sink_name, sink_kind, line,
                           taint, taint.path, positions)

    def _emit(self, class_id: str, sink_name: str, sink_kind: str,
              line: int, taint: Taint, path: tuple[PathStep, ...],
              positions: tuple[int, ...], context: str = "",
              filename: str | None = None) -> None:
        cand = CandidateVulnerability(
            vuln_class=class_id,
            filename=filename or self.filename,
            sink_name=sink_name,
            sink_line=line,
            entry_point=taint.source,
            entry_line=taint.source_line,
            path=path + (PathStep(STEP_SINK, sink_name, line),),
            sink_kind=sink_kind,
            tainted_args=positions,
            context=context,
        )
        self.frames[-1].candidates.append(cand)


# ---------------------------------------------------------------------------
# env helpers (shared semantics with the reference walker)
# ---------------------------------------------------------------------------

def _join_into(target: Env, other: Env) -> None:
    """In-place join: target := target ⊔ other."""
    for name, taints in other.items():
        if name in target:
            target[name] = union(target[name], taints)
        else:
            target[name] = taints


_GUARD_PREFIX = "\x00guard:"


def _apply_guards(env: Env, guards, line: int) -> None:
    for key, func in guards:
        if key in env:
            env[key] = frozenset(t.step(STEP_GUARD, func, line)
                                 for t in env[key])
        if key.startswith("$"):
            # remember guards against future superglobal re-reads
            gkey = _GUARD_PREFIX + key
            env[gkey] = union(env.get(gkey, frozenset()),
                              frozenset({(func, line)}))


def _pending_guards(env: Env, desc: str,
                    base_name: str) -> list[tuple[str, int]]:
    """Guards previously recorded for an entry-point description."""
    out: list[tuple[str, int]] = []
    for key in (_GUARD_PREFIX + desc, _GUARD_PREFIX + "$" + base_name):
        out.extend(env.get(key, frozenset()))
    return sorted(out)
