"""Taint analysis: the code-analyzer module of WAP (Fig. 1, box 1).

Public surface:

* :class:`~repro.analysis.model.DetectorConfig` — the (ep, ss, san) triple
  configuring one vulnerability class;
* :class:`~repro.analysis.engine.TaintEngine` — the generic multi-class
  taint engine;
* :class:`~repro.analysis.detector.Detector` — file/tree-level driver;
* :func:`~repro.analysis.detector.generate_detector` — the vulnerability
  detector generator (new classes with zero code);
* :mod:`~repro.analysis.pipeline` — the fused single-pass engine, the
  parallel scan scheduler and the content-hash result cache;
* :mod:`~repro.analysis.knowledge` — external ep/ss/san file I/O.
"""

from repro.analysis.detector import (  # noqa: F401
    DEFAULT_ENTRY_POINTS,
    Detector,
    FileResult,
    generate_detector,
)
from repro.analysis.engine import GUARD_FUNCTIONS, TaintEngine  # noqa: F401
from repro.analysis.includes import (  # noqa: F401
    IncludeContext,
    IncludeGraph,
    IncludeResolver,
    build_include_graph,
    update_include_graph,
)
from repro.analysis.options import ScanOptions  # noqa: F401
from repro.analysis.knowledge import (  # noqa: F401
    extend_config,
    load_config,
    load_registry,
    parse_sink_line,
    render_sink_line,
    save_config,
    save_registry,
)
from repro.analysis.pipeline import (  # noqa: F401
    ConfigGroup,
    FusedDetector,
    ResultCache,
    ScanScheduler,
    closure_key,
    config_fingerprint,
)
from repro.analysis.project import (  # noqa: F401
    ProjectAnalyzer,
    ProjectFile,
    ProjectResult,
)
from repro.analysis.model import (  # noqa: F401
    SINK_ECHO,
    SINK_FUNCTION,
    SINK_INCLUDE,
    SINK_METHOD,
    SINK_SHELL,
    SINK_STATIC,
    CandidateVulnerability,
    DetectorConfig,
    FunctionSummary,
    PathStep,
    SinkSpec,
    Taint,
)

__all__ = [
    "DEFAULT_ENTRY_POINTS",
    "ConfigGroup",
    "FusedDetector",
    "ResultCache",
    "ScanScheduler",
    "config_fingerprint",
    "IncludeContext",
    "IncludeGraph",
    "IncludeResolver",
    "build_include_graph",
    "update_include_graph",
    "ScanOptions",
    "closure_key",
    "ProjectAnalyzer",
    "ProjectFile",
    "ProjectResult",
    "Detector",
    "FileResult",
    "generate_detector",
    "GUARD_FUNCTIONS",
    "TaintEngine",
    "extend_config",
    "load_config",
    "save_config",
    "load_registry",
    "save_registry",
    "parse_sink_line",
    "render_sink_line",
    "CandidateVulnerability",
    "DetectorConfig",
    "FunctionSummary",
    "PathStep",
    "SinkSpec",
    "Taint",
    "SINK_ECHO",
    "SINK_FUNCTION",
    "SINK_INCLUDE",
    "SINK_METHOD",
    "SINK_SHELL",
    "SINK_STATIC",
]
