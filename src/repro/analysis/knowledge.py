"""Knowledge-base files: the paper's external ep / ss / san data.

§III-A: *"These sets of data are now stored in external files, allowing the
inclusion of new items without recompiling the tool."*  This module defines
that on-disk format and converts between files and
:class:`~repro.analysis.model.DetectorConfig` objects.

Format — one directory per vulnerability class holding three plain-text
files (``ep.txt``, ``ss.txt``, ``san.txt``) plus a small ``meta.txt``:

* ``ep.txt`` — one entry point per line.  ``$_GET`` style names denote
  superglobals; ``name()`` denotes a taint-returning source function.
* ``ss.txt`` — one sink per line: ``name`` (function), ``->name``
  (method; optional ``@hint`` receiver restriction and ``:0,1`` dangerous
  argument positions), or one of the pseudo-sinks ``<echo>``, ``<include>``,
  ``<shell>``.
* ``san.txt`` — one sanitization function per line; ``->name`` for
  sanitizer methods.

Lines starting with ``#`` and blank lines are ignored everywhere.
"""

from __future__ import annotations

import os
import re

from repro.exceptions import KnowledgeBaseError
from repro.analysis.model import (
    SINK_ECHO,
    SINK_FUNCTION,
    SINK_INCLUDE,
    SINK_METHOD,
    SINK_SHELL,
    DetectorConfig,
    SinkSpec,
)

_PSEUDO_SINKS = {
    "<echo>": SINK_ECHO,
    "<include>": SINK_INCLUDE,
    "<shell>": SINK_SHELL,
}

_SINK_LINE_RE = re.compile(
    r"^(?P<method>->)?(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"(?:@(?P<hint>[A-Za-z_][A-Za-z0-9_>-]*))?"
    r"(?::(?P<args>\d+(?:,\d+)*))?$"
)


def _read_lines(path: str) -> list[str]:
    if not os.path.exists(path):
        return []
    out: list[str] = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                out.append(line)
    return out


def parse_sink_line(line: str) -> SinkSpec:
    """Parse a single ``ss.txt`` line into a :class:`SinkSpec`."""
    if line in _PSEUDO_SINKS:
        return SinkSpec("", _PSEUDO_SINKS[line])
    m = _SINK_LINE_RE.match(line)
    if not m:
        raise KnowledgeBaseError(f"malformed sink line: {line!r}")
    args = None
    if m.group("args"):
        args = tuple(int(a) for a in m.group("args").split(","))
    kind = SINK_METHOD if m.group("method") else SINK_FUNCTION
    return SinkSpec(m.group("name").lower(), kind, args, m.group("hint"))


def render_sink_line(sink: SinkSpec) -> str:
    """Inverse of :func:`parse_sink_line`."""
    for text, kind in _PSEUDO_SINKS.items():
        if sink.kind == kind:
            return text
    out = ("->" if sink.kind == SINK_METHOD else "") + sink.name
    if sink.receiver_hint:
        out += f"@{sink.receiver_hint}"
    if sink.arg_positions is not None:
        out += ":" + ",".join(str(a) for a in sink.arg_positions)
    return out


def load_config(directory: str, class_id: str | None = None) -> DetectorConfig:
    """Load a :class:`DetectorConfig` from a knowledge directory."""
    meta: dict[str, str] = {}
    for line in _read_lines(os.path.join(directory, "meta.txt")):
        if "=" in line:
            key, _, value = line.partition("=")
            meta[key.strip()] = value.strip()
    cid = class_id or meta.get("class_id") or os.path.basename(
        directory.rstrip("/"))
    if not cid:
        raise KnowledgeBaseError(f"no class id for {directory}")

    entry_points: set[str] = set()
    source_functions: set[str] = set()
    for line in _read_lines(os.path.join(directory, "ep.txt")):
        if line.endswith("()"):
            source_functions.add(line[:-2].lower())
        else:
            entry_points.add(line.lstrip("$").lstrip())
    sinks = tuple(parse_sink_line(line)
                  for line in _read_lines(os.path.join(directory, "ss.txt")))
    sanitizers: set[str] = set()
    sanitizer_methods: set[str] = set()
    for line in _read_lines(os.path.join(directory, "san.txt")):
        if line.startswith("->"):
            sanitizer_methods.add(line[2:].lower())
        else:
            sanitizers.add(line.lower())

    return DetectorConfig(
        class_id=cid,
        display_name=meta.get("display_name", cid.upper()),
        entry_points=frozenset(entry_points),
        source_functions=frozenset(source_functions),
        sinks=sinks,
        sanitizers=frozenset(sanitizers),
        sanitizer_methods=frozenset(sanitizer_methods),
    )


def save_config(config: DetectorConfig, directory: str) -> None:
    """Write *config* as a knowledge directory (the inverse of load)."""
    os.makedirs(directory, exist_ok=True)

    def write(name: str, lines: list[str]) -> None:
        with open(os.path.join(directory, name), "w",
                  encoding="utf-8") as f:
            f.write(f"# {name} for {config.class_id}\n")
            for line in lines:
                f.write(line + "\n")

    write("meta.txt", [f"class_id = {config.class_id}",
                       f"display_name = {config.display_name}"])
    write("ep.txt", sorted("$" + e for e in config.entry_points)
          + sorted(f + "()" for f in config.source_functions))
    write("ss.txt", [render_sink_line(s) for s in config.sinks])
    write("san.txt", sorted(config.sanitizers)
          + sorted("->" + m for m in config.sanitizer_methods))


def save_registry(registry, directory: str) -> None:
    """Export a whole vulnerability registry as knowledge directories.

    One subdirectory per class, each holding the ep/ss/san files plus a
    ``meta.txt`` with the class metadata (sub-module, origin, fix id...),
    so the complete tool loadout lives in editable text files (§III-A).
    """
    os.makedirs(directory, exist_ok=True)
    for info in registry:
        cls_dir = os.path.join(directory, info.class_id)
        save_config(info.config, cls_dir)
        with open(os.path.join(cls_dir, "meta.txt"), "a",
                  encoding="utf-8") as f:
            # overrides the config-level display name (last line wins)
            f.write(f"display_name = {info.display_name}\n")
            f.write(f"table_label = {info.table_label}\n")
            f.write(f"submodule = {info.submodule}\n")
            f.write(f"origin = {info.origin}\n")
            f.write(f"fix_id = {info.fix_id}\n")
            if info.report_group:
                f.write(f"report_group = {info.report_group}\n")
            if info.malicious_chars:
                encoded = ",".join(repr(c) for c in info.malicious_chars)
                f.write(f"malicious_chars = {encoded}\n")


def load_registry(directory: str):
    """Load a registry previously exported with :func:`save_registry`."""
    import ast as python_ast

    from repro.vulnerabilities.classes import VulnClassInfo, VulnRegistry

    registry = VulnRegistry()
    if not os.path.isdir(directory):
        raise KnowledgeBaseError(f"no knowledge base at {directory}")
    for name in sorted(os.listdir(directory)):
        cls_dir = os.path.join(directory, name)
        if not os.path.isdir(cls_dir):
            continue
        config = load_config(cls_dir)
        meta: dict[str, str] = {}
        for line in _read_lines(os.path.join(cls_dir, "meta.txt")):
            if "=" in line:
                key, _, value = line.partition("=")
                meta[key.strip()] = value.strip()
        chars: tuple[str, ...] = ()
        if meta.get("malicious_chars"):
            chars = tuple(python_ast.literal_eval(c.strip()) for c in
                          meta["malicious_chars"].split(","))
        registry.add(VulnClassInfo(
            class_id=config.class_id,
            display_name=meta.get("display_name", config.display_name),
            table_label=meta.get("table_label", config.class_id.upper()),
            submodule=meta.get("submodule", "query_injection"),
            origin=meta.get("origin", "wape-submodule"),
            config=config,
            fix_id=meta.get("fix_id", ""),
            malicious_chars=chars,
            report_group=meta.get("report_group", ""),
        ))
    return registry


def extend_config(config: DetectorConfig,
                  entry_points: set[str] | frozenset[str] = frozenset(),
                  source_functions: set[str] | frozenset[str] = frozenset(),
                  sinks: tuple[SinkSpec, ...] = (),
                  sanitizers: set[str] | frozenset[str] = frozenset(),
                  sanitizer_methods: set[str] | frozenset[str] = frozenset(),
                  ) -> DetectorConfig:
    """Return a copy of *config* with extra knowledge merged in.

    This is the programmatic version of appending lines to the ep/ss/san
    files — e.g. feeding vfront's custom ``escape`` function to the tool as
    an extra sanitizer (§V-A).
    """
    return DetectorConfig(
        class_id=config.class_id,
        display_name=config.display_name,
        entry_points=config.entry_points | frozenset(entry_points),
        source_functions=config.source_functions
        | frozenset(f.lower() for f in source_functions),
        sinks=config.sinks + tuple(sinks),
        sanitizers=config.sanitizers
        | frozenset(s.lower() for s in sanitizers),
        sanitizer_methods=config.sanitizer_methods
        | frozenset(s.lower() for s in sanitizer_methods),
        untaint_casts=config.untaint_casts,
    )
