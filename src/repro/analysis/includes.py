"""Static resolution of ``include``/``require`` targets.

The paper's tool analyzes whole applications: taint entering in one file
must be observable at a sink in another when the files are linked by an
``include``.  This module provides the static half of that story:

* :class:`IncludeResolver` inspects every project file for
  ``include``/``require``(``_once``) statements and resolves their targets
  **statically** — literal paths, ``dirname(__FILE__)`` / ``__DIR__``
  concatenations and, as a last resort, a unique-basename match anywhere
  in the project.  Dynamic targets (variables, function results) are
  counted as *unresolved* and the file simply falls back to per-file
  analysis — never an error.
* :class:`IncludeGraph` is the resolved project graph: a picklable mapping
  from each file to its direct dependencies, plus per-file
  resolved/unresolved counters for telemetry.
* :class:`IncludeContext` turns the graph into what the
  :class:`~repro.analysis.engine.TaintEngine` needs per analyzed file: the
  merged function-declaration table of the include closure and the
  propagated global taint state of every included file's top level.  All
  per-dependency work (parsing, summary computation, top-level execution)
  is memoized, so a dependency shared by many files is processed once per
  worker process.

``include_once``/``require_once`` cycles are handled the way PHP handles
them: each file contributes its state once; re-entry contributes nothing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.exceptions import PhpSyntaxError
from repro.php import ast
from repro.php.ast_store import AstStore
from repro.php.visitor import find_all

#: cheap textual pre-filter: files without these substrings are never
#: parsed by the resolver (the common case in big trees).
_HINTS = ("include", "require")


@dataclass
class IncludeGraph:
    """The resolved include graph of one project scan.

    Attributes:
        deps: file path -> direct, statically resolved include targets
            (paths exactly as the scan pipeline addresses them).
        resolved: file path -> number of include statements resolved.
        unresolved: file path -> number of include statements whose
            target could not be determined statically.
    """

    deps: dict[str, tuple[str, ...]] = field(default_factory=dict)
    resolved: dict[str, int] = field(default_factory=dict)
    unresolved: dict[str, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.deps)

    def closure(self, path: str) -> tuple[str, ...]:
        """Every file reachable from *path* via includes (cycle-safe).

        *path* itself is excluded; order is deterministic breadth-first.
        """
        out: list[str] = []
        seen = {path}
        queue = list(self.deps.get(path, ()))
        while queue:
            dep = queue.pop(0)
            if dep in seen:
                continue
            seen.add(dep)
            out.append(dep)
            queue.extend(self.deps.get(dep, ()))
        return tuple(out)

    def components(self, paths: list[str]) -> list[list[str]]:
        """Partition *paths* into include-connected groups.

        Files linked by an include edge (in either direction) end up in
        the same group, so a scheduler can keep them in one worker chunk
        and reuse the memoized dependency state.  Group order follows the
        first appearance of a member in *paths*.
        """
        index = {p: i for i, p in enumerate(paths)}
        parent = list(range(len(paths)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for path in paths:
            for dep in self.deps.get(path, ()):
                if dep in index:
                    ra, rb = find(index[path]), find(index[dep])
                    if ra != rb:
                        parent[max(ra, rb)] = min(ra, rb)
        groups: dict[int, list[str]] = {}
        for i, path in enumerate(paths):
            groups.setdefault(find(i), []).append(path)
        return [groups[root] for root in sorted(groups)]


class IncludeResolver:
    """Builds an :class:`IncludeGraph` from the files of one scan."""

    def __init__(self, paths: list[str],
                 ast_store: AstStore | None = None) -> None:
        self.paths = list(paths)
        # shared frontend memo: the ASTs parsed while resolving includes
        # are handed on to the scan phase instead of being thrown away
        self.ast_store = ast_store if ast_store is not None else AstStore()
        # membership indexes: absolute normalized path and basename
        self._by_abs: dict[str, str] = {}
        self._by_base: dict[str, list[str]] = {}
        for path in self.paths:
            self._by_abs.setdefault(self._abs(path), path)
            self._by_base.setdefault(os.path.basename(path), []).append(path)

    @staticmethod
    def _abs(path: str) -> str:
        return os.path.normcase(os.path.normpath(os.path.abspath(path)))

    # ------------------------------------------------------------------
    def build(self, sources: dict[str, str] | None = None) -> IncludeGraph:
        """Resolve every include in every project file.

        Args:
            sources: optional path -> source text map; files not in it are
                read from disk.  Lets the scheduler reuse the bytes it
                already read for content hashing.
        """
        graph = IncludeGraph()
        for path in self.paths:
            self._resolve_into(graph, path, (sources or {}).get(path))
        return graph

    def _resolve_into(self, graph: IncludeGraph, path: str,
                      source: str | None) -> None:
        """Resolve one file's includes and record them on *graph*.

        A file's edges depend only on its own source text and the project
        file *set* (the resolver's membership indexes) — which is what
        makes :func:`update_include_graph` sound: unchanged files of an
        unchanged file set keep their old edges verbatim.
        """
        if source is None:
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    source = f.read()
            except OSError:
                return
        lowered = source.lower()
        if not any(hint in lowered for hint in _HINTS):
            return
        try:
            program, _ = self.ast_store.parse_recovering(source, path)
        except PhpSyntaxError:
            return  # unparseable file: no edges, scanned standalone
        deps: list[str] = []
        resolved = unresolved = 0
        for node in find_all(program, ast.Include):
            target = self.resolve(node.expr, path)
            if target is None:
                unresolved += 1
                continue
            resolved += 1
            if target != path and target not in deps:
                deps.append(target)
        if deps:
            graph.deps[path] = tuple(deps)
        if resolved:
            graph.resolved[path] = resolved
        if unresolved:
            graph.unresolved[path] = unresolved

    # ------------------------------------------------------------------
    def resolve(self, expr: ast.Node | None, src_path: str) -> str | None:
        """Resolve one include target expression to a project file path."""
        text = self._static_text(expr, src_path)
        if not text:
            return None
        if os.path.isabs(text):
            candidate = os.path.normcase(os.path.normpath(text))
        else:
            candidate = self._abs(
                os.path.join(os.path.dirname(src_path), text))
        hit = self._by_abs.get(candidate)
        if hit is not None:
            return hit
        # best effort: a unique basename anywhere in the project
        matches = self._by_base.get(os.path.basename(text), [])
        if len(matches) == 1:
            return matches[0]
        return None

    def _static_text(self, expr: ast.Node | None,
                     src_path: str) -> str | None:
        """Fold *expr* to a constant string, or None if it is dynamic."""
        if isinstance(expr, ast.Literal) and expr.kind == "string":
            return str(expr.value)
        if isinstance(expr, ast.ConstFetch) \
                and expr.name.lower() == "__dir__":
            return os.path.dirname(os.path.abspath(src_path))
        if isinstance(expr, ast.FunctionCall) \
                and isinstance(expr.name, str) \
                and expr.name.lower() == "dirname" and len(expr.args) == 1:
            inner = expr.args[0].value \
                if isinstance(expr.args[0], ast.Argument) else expr.args[0]
            if isinstance(inner, ast.ConstFetch) \
                    and inner.name.lower() == "__file__":
                return os.path.dirname(os.path.abspath(src_path))
        if isinstance(expr, ast.BinaryOp) and expr.op == ".":
            left = self._static_text(expr.left, src_path)
            right = self._static_text(expr.right, src_path)
            if left is not None and right is not None:
                return left + right
        if isinstance(expr, ast.InterpolatedString):
            parts = []
            for part in expr.parts:
                folded = self._static_text(part, src_path)
                if folded is None:
                    return None
                parts.append(folded)
            return "".join(parts)
        return None


def build_include_graph(paths: list[str],
                        sources: dict[str, str] | None = None,
                        ast_store: AstStore | None = None
                        ) -> IncludeGraph:
    """Convenience wrapper: resolve the include graph of *paths*."""
    return IncludeResolver(paths, ast_store=ast_store).build(sources)


def update_include_graph(graph: IncludeGraph, paths: list[str],
                         dirty: set[str] | list[str],
                         sources: dict[str, str] | None = None,
                         ast_store: AstStore | None = None
                         ) -> IncludeGraph:
    """Re-resolve only *dirty* files of an otherwise-unchanged project.

    Incremental counterpart of :func:`build_include_graph` for warm
    re-scans: a file's include edges depend solely on its own source and
    the project file set, so when the file set is unchanged only edited
    files need re-parsing — clean files carry their edges over verbatim.

    Callers must fall back to a full :func:`build_include_graph` whenever
    files were added or removed (a new file can steal a unique-basename
    resolution from every other file).  Returns a fresh graph; *graph*
    itself is never mutated.
    """
    resolver = IncludeResolver(paths, ast_store=ast_store)
    dirty_set = set(dirty)
    out = IncludeGraph()
    for path in paths:
        if path in dirty_set:
            resolver._resolve_into(out, path, (sources or {}).get(path))
            continue
        if path in graph.deps:
            out.deps[path] = graph.deps[path]
        if path in graph.resolved:
            out.resolved[path] = graph.resolved[path]
        if path in graph.unresolved:
            out.unresolved[path] = graph.unresolved[path]
    return out


class IncludeContext:
    """Per-process provider of cross-file analysis state.

    One instance lives in each scan worker (and in the in-process
    detector).  Given a file, it supplies the taint engine with the merged
    function table and propagated global taint state of the file's include
    closure, memoizing all per-dependency work.
    """

    def __init__(self, graph: IncludeGraph,
                 ast_store: AstStore | None = None) -> None:
        self.graph = graph
        self.ast_store = ast_store if ast_store is not None else AstStore()
        self._programs: dict[str, ast.Program | None] = {}
        self._tables: dict[str, dict] = {}
        self._envs: dict[str, dict] = {}
        self._active: set[str] = set()

    # ------------------------------------------------------------------
    def context_for(self, filename: str, engine) -> tuple[dict | None,
                                                          dict | None]:
        """(extra_functions, initial_env) for analyzing *filename*.

        Returns ``(None, None)`` when the file has no resolved includes —
        the per-file fast path stays untouched.
        """
        closure = self.graph.closure(filename)
        if not closure:
            return None, None
        extra: dict = {}
        for dep in closure:
            for name, entry in self._function_table(dep).items():
                extra.setdefault(name, entry)
        env: dict = {}
        for dep in closure:
            for var, taints in self._exported_env(dep, engine).items():
                if var in env:
                    env[var] = env[var] | taints
                else:
                    env[var] = taints
        return (extra or None), (env or None)

    # ------------------------------------------------------------------
    def _program(self, path: str) -> ast.Program | None:
        # the per-path memo sits in front of the content-keyed store so a
        # repeat dependency costs neither a read nor a hash
        if path not in self._programs:
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    source = f.read()
                self._programs[path], _ = \
                    self.ast_store.parse_recovering(source, path)
            except (OSError, PhpSyntaxError):
                self._programs[path] = None
        return self._programs[path]

    def _function_table(self, path: str) -> dict:
        table = self._tables.get(path)
        if table is None:
            program = self._program(path)
            if program is None:
                table = {}
            else:
                from repro.analysis.project import (
                    ProjectAnalyzer,
                    ProjectFile,
                )
                table = ProjectAnalyzer.build_function_table(
                    [ProjectFile(path, program)])
            self._tables[path] = table
        return table

    def _exported_env(self, path: str, engine) -> dict:
        """Global taint state *path* leaves behind after its top level.

        Candidates found while executing the dependency are discarded —
        the dependency reports its own flows when it is scanned itself.
        Cycles contribute nothing on re-entry (PHP ``include_once``
        semantics).
        """
        env = self._envs.get(path)
        if env is not None:
            return env
        if path in self._active:
            return {}
        self._active.add(path)
        try:
            program = self._program(path)
            if program is None:
                env = {}
            else:
                extra, init = self.context_for(path, engine)
                _, env = engine.analyze_with_env(
                    program, path, extra_functions=extra, initial_env=init)
        finally:
            self._active.discard(path)
        self._envs[path] = env
        return env
