"""Static resolution of ``include``/``require`` targets.

The paper's tool analyzes whole applications: taint entering in one file
must be observable at a sink in another when the files are linked by an
``include``.  This module provides the static half of that story:

* :class:`IncludeResolver` inspects every project file for
  ``include``/``require``(``_once``) statements and resolves their targets
  **statically** — literal paths, ``dirname(__FILE__)`` / ``__DIR__``
  concatenations and, as a last resort, a unique-basename match anywhere
  in the project.  Dynamic targets (variables, function results) are
  counted as *unresolved* and the file simply falls back to per-file
  analysis — never an error.
* :class:`IncludeGraph` is the resolved project graph: a picklable mapping
  from each file to its direct dependencies, plus per-file
  resolved/unresolved counters for telemetry.
* :class:`IncludeContext` turns the graph into what the
  :class:`~repro.analysis.engine.TaintEngine` needs per analyzed file: the
  merged function-declaration table of the include closure, the *composed
  function summaries* of every dependency, and the propagated global
  taint state of every included file's top level.  Per-dependency state
  is computed **once** — one ``analyze_with_state`` run per dependency
  yields both its exported env and its summaries — then composed into
  every includer, so analyzing ten files that include ``db.php`` runs
  ``db.php``'s bodies once, not ten times.  With a
  :class:`~repro.analysis.summaries.SummaryCache` attached, that state
  additionally persists on disk keyed by content + closure + knowledge
  fingerprint, so a later process (worker, re-scan, daemon) composes
  cached summaries without re-executing dependency code at all.

``include_once``/``require_once`` cycles are handled the way PHP handles
them: each file contributes its state once; re-entry contributes nothing.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

from repro.exceptions import PhpSyntaxError
from repro.php import ast
from repro.php.ast_store import AstStore
from repro.php.visitor import find_all

#: cheap textual pre-filter: files without an include/require *keyword*
#: are never parsed by the resolver (the common case in big trees).  The
#: word boundary matters: plain substring matching drags in every file
#: that merely says "required" in a form label or comment, which on real
#: trees means parsing nearly everything just to find no edges.
_HINT_RE = re.compile(r"\b(?:include|require)(?:_once)?\b")


@dataclass
class IncludeGraph:
    """The resolved include graph of one project scan.

    Attributes:
        deps: file path -> direct, statically resolved include targets
            (paths exactly as the scan pipeline addresses them).
        resolved: file path -> number of include statements resolved.
        unresolved: file path -> number of include statements whose
            target could not be determined statically.
    """

    deps: dict[str, tuple[str, ...]] = field(default_factory=dict)
    resolved: dict[str, int] = field(default_factory=dict)
    unresolved: dict[str, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.deps)

    def closure(self, path: str) -> tuple[str, ...]:
        """Every file reachable from *path* via includes (cycle-safe).

        *path* itself is excluded; order is deterministic breadth-first.
        """
        out: list[str] = []
        seen = {path}
        queue = list(self.deps.get(path, ()))
        while queue:
            dep = queue.pop(0)
            if dep in seen:
                continue
            seen.add(dep)
            out.append(dep)
            queue.extend(self.deps.get(dep, ()))
        return tuple(out)

    def components(self, paths: list[str]) -> list[list[str]]:
        """Partition *paths* into include-connected groups.

        Files linked by an include edge (in either direction) end up in
        the same group, so a scheduler can keep them in one worker chunk
        and reuse the memoized dependency state.  Group order follows the
        first appearance of a member in *paths*.
        """
        index = {p: i for i, p in enumerate(paths)}
        parent = list(range(len(paths)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for path in paths:
            for dep in self.deps.get(path, ()):
                if dep in index:
                    ra, rb = find(index[path]), find(index[dep])
                    if ra != rb:
                        parent[max(ra, rb)] = min(ra, rb)
        groups: dict[int, list[str]] = {}
        for i, path in enumerate(paths):
            groups.setdefault(find(i), []).append(path)
        return [groups[root] for root in sorted(groups)]


class IncludeResolver:
    """Builds an :class:`IncludeGraph` from the files of one scan."""

    def __init__(self, paths: list[str],
                 ast_store: AstStore | None = None) -> None:
        self.paths = list(paths)
        # shared frontend memo: the ASTs parsed while resolving includes
        # are handed on to the scan phase instead of being thrown away
        self.ast_store = ast_store if ast_store is not None else AstStore()
        # membership indexes: absolute normalized path and basename
        self._by_abs: dict[str, str] = {}
        self._by_base: dict[str, list[str]] = {}
        for path in self.paths:
            self._by_abs.setdefault(self._abs(path), path)
            self._by_base.setdefault(os.path.basename(path), []).append(path)

    @staticmethod
    def _abs(path: str) -> str:
        return os.path.normcase(os.path.normpath(os.path.abspath(path)))

    # ------------------------------------------------------------------
    def build(self, sources: dict[str, str] | None = None) -> IncludeGraph:
        """Resolve every include in every project file.

        Args:
            sources: optional path -> source text map; files not in it are
                read from disk.  Lets the scheduler reuse the bytes it
                already read for content hashing.
        """
        graph = IncludeGraph()
        for path in self.paths:
            self._resolve_into(graph, path, (sources or {}).get(path))
        return graph

    def _resolve_into(self, graph: IncludeGraph, path: str,
                      source: str | None) -> None:
        """Resolve one file's includes and record them on *graph*.

        A file's edges depend only on its own source text and the project
        file *set* (the resolver's membership indexes) — which is what
        makes :func:`update_include_graph` sound: unchanged files of an
        unchanged file set keep their old edges verbatim.
        """
        if source is None:
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    source = f.read()
            except OSError:
                return
        if _HINT_RE.search(source.lower()) is None:
            return
        try:
            program, _ = self.ast_store.parse_recovering(source, path)
        except PhpSyntaxError:
            return  # unparseable file: no edges, scanned standalone
        deps: list[str] = []
        resolved = unresolved = 0
        for node in find_all(program, ast.Include):
            target = self.resolve(node.expr, path)
            if target is None:
                unresolved += 1
                continue
            resolved += 1
            if target != path and target not in deps:
                deps.append(target)
        if deps:
            graph.deps[path] = tuple(deps)
        if resolved:
            graph.resolved[path] = resolved
        if unresolved:
            graph.unresolved[path] = unresolved

    # ------------------------------------------------------------------
    def resolve(self, expr: ast.Node | None, src_path: str) -> str | None:
        """Resolve one include target expression to a project file path."""
        text = self._static_text(expr, src_path)
        if not text:
            return None
        if os.path.isabs(text):
            candidate = os.path.normcase(os.path.normpath(text))
        else:
            candidate = self._abs(
                os.path.join(os.path.dirname(src_path), text))
        hit = self._by_abs.get(candidate)
        if hit is not None:
            return hit
        # best effort: a unique basename anywhere in the project
        matches = self._by_base.get(os.path.basename(text), [])
        if len(matches) == 1:
            return matches[0]
        return None

    def _static_text(self, expr: ast.Node | None,
                     src_path: str) -> str | None:
        """Fold *expr* to a constant string, or None if it is dynamic."""
        if isinstance(expr, ast.Literal) and expr.kind == "string":
            return str(expr.value)
        if isinstance(expr, ast.ConstFetch) \
                and expr.name.lower() == "__dir__":
            return os.path.dirname(os.path.abspath(src_path))
        if isinstance(expr, ast.FunctionCall) \
                and isinstance(expr.name, str) \
                and expr.name.lower() == "dirname" and len(expr.args) == 1:
            inner = expr.args[0].value \
                if isinstance(expr.args[0], ast.Argument) else expr.args[0]
            if isinstance(inner, ast.ConstFetch) \
                    and inner.name.lower() == "__file__":
                return os.path.dirname(os.path.abspath(src_path))
        if isinstance(expr, ast.BinaryOp) and expr.op == ".":
            left = self._static_text(expr.left, src_path)
            right = self._static_text(expr.right, src_path)
            if left is not None and right is not None:
                return left + right
        if isinstance(expr, ast.InterpolatedString):
            parts = []
            for part in expr.parts:
                folded = self._static_text(part, src_path)
                if folded is None:
                    return None
                parts.append(folded)
            return "".join(parts)
        return None


def build_include_graph(paths: list[str],
                        sources: dict[str, str] | None = None,
                        ast_store: AstStore | None = None
                        ) -> IncludeGraph:
    """Convenience wrapper: resolve the include graph of *paths*."""
    return IncludeResolver(paths, ast_store=ast_store).build(sources)


def update_include_graph(graph: IncludeGraph, paths: list[str],
                         dirty: set[str] | list[str],
                         sources: dict[str, str] | None = None,
                         ast_store: AstStore | None = None
                         ) -> IncludeGraph:
    """Re-resolve only *dirty* files of an otherwise-unchanged project.

    Incremental counterpart of :func:`build_include_graph` for warm
    re-scans: a file's include edges depend solely on its own source and
    the project file set, so when the file set is unchanged only edited
    files need re-parsing — clean files carry their edges over verbatim.

    Callers must fall back to a full :func:`build_include_graph` whenever
    files were added or removed (a new file can steal a unique-basename
    resolution from every other file).  Returns a fresh graph; *graph*
    itself is never mutated.
    """
    resolver = IncludeResolver(paths, ast_store=ast_store)
    dirty_set = set(dirty)
    out = IncludeGraph()
    for path in paths:
        if path in dirty_set:
            resolver._resolve_into(out, path, (sources or {}).get(path))
            continue
        if path in graph.deps:
            out.deps[path] = graph.deps[path]
        if path in graph.resolved:
            out.resolved[path] = graph.resolved[path]
        if path in graph.unresolved:
            out.unresolved[path] = graph.unresolved[path]
    return out


class IncludeContext:
    """Per-process provider of cross-file analysis state.

    One instance lives in each scan worker (and in the in-process
    detector).  Given a file, it supplies the taint engine with the
    merged function table, the composed dependency summaries and the
    propagated global taint state of the file's include closure,
    memoizing all per-dependency work and (optionally) persisting it
    through a :class:`~repro.analysis.summaries.SummaryCache`.
    """

    def __init__(self, graph: IncludeGraph,
                 ast_store: AstStore | None = None,
                 summary_cache=None,
                 metrics=None) -> None:
        self.graph = graph
        self.ast_store = ast_store if ast_store is not None else AstStore()
        self.summary_cache = summary_cache
        self.metrics = metrics
        self._programs: dict[str, ast.Program | None] = {}
        self._modules: dict[str, object | None] = {}
        self._keys: dict[str, str | None] = {}
        self._tables: dict[str, dict] = {}
        #: path -> (exported env, own function summaries); the unit the
        #: summary cache persists and includers compose.
        self._states: dict[str, tuple[dict, dict]] = {}
        #: path -> content hash its memoized state was computed from
        #: (guards the preset replay against same-path/other-content).
        self._state_sources: dict[str, str | None] = {}
        self._active: set[str] = set()

    # ------------------------------------------------------------------
    def context_for(self, filename: str, engine
                    ) -> tuple[dict | None, dict | None, dict | None]:
        """(extra_functions, extra_summaries, initial_env) for *filename*.

        Returns ``(None, None, None)`` when the file has no resolved
        includes — the per-file fast path stays untouched.  The summaries
        are composed copies with ``internal_candidates`` stripped: the
        declaring file reports its internal flows, not its includers.
        """
        closure = self.graph.closure(filename)
        if not closure:
            return None, None, None
        extra: dict = {}
        for dep in closure:
            for name, entry in self._function_table(dep).items():
                extra.setdefault(name, entry)
        summaries: dict = {}
        env: dict = {}
        for dep in closure:
            dep_env, dep_summaries = self._state(dep, engine)
            for name, summary in dep_summaries.items():
                if name not in summaries:
                    summaries[name] = self._stripped(summary)
            for var, taints in dep_env.items():
                if var in env:
                    env[var] = env[var] | taints
                else:
                    env[var] = taints
        return (extra or None), (summaries or None), (env or None)

    def preset_for(self, filename: str, source_key: str | None = None
                   ) -> tuple[dict | None, str | None]:
        """(preset summaries, state key to store under) for *filename*.

        The scanned file's *own* summaries may already be known — computed
        earlier in this process when the file was analyzed as someone
        else's dependency, or persisted by the summary cache.  Replaying
        them skips re-interpreting every declared function body.  When
        they are not known, the returned key (non-``None`` only with a
        cache attached) is what :meth:`remember_state` stores under after
        the analysis ran.

        *source_key* is the content hash of the source actually being
        analyzed and is **required** for a replay: memoized/cached state
        belongs to a specific content, and ``detect_source`` may hand the
        same filename different text than what is on disk.
        """
        if source_key is None:
            return None, None
        state = self._states.get(filename)
        if state is not None:
            if self._state_sources.get(filename) == source_key:
                return (state[1] or None), None
            return None, None  # same path, different content
        if self.summary_cache is None:
            return None, None
        key = self._state_key(filename, source_key)
        if key is None:
            return None, None
        state = self._cached_state(key, filename)
        if state is not None:
            self._states[filename] = state
            self._state_sources[filename] = source_key
            return (state[1] or None), None
        return None, key

    def remember_state(self, filename: str, key: str | None,
                       env: dict, summaries: dict,
                       source_key: str | None = None) -> None:
        """Memoize (and persist) *filename*'s just-computed state.

        Called by the detector after a fresh analysis so includers of
        this file — and later processes, via the cache — reuse it.
        """
        state = (env, self._own_summaries(filename, summaries))
        if key is not None and self.summary_cache is not None:
            # always safe: the digest covers the analyzed content, so a
            # later lookup can only hit with identical text
            self.summary_cache.put(key, filename, state[0], state[1])
        if source_key is None:
            return  # content unknown: never path-memoize blindly
        disk = self._keys.get(filename)
        if disk is not None and disk != source_key:
            return  # detect_source text differs from the on-disk file
        self._states[filename] = state
        self._state_sources[filename] = source_key

    # ------------------------------------------------------------------
    def _program(self, path: str) -> ast.Program | None:
        # the per-path memo sits in front of the content-keyed store so a
        # repeat dependency costs neither a read nor a hash
        if path not in self._programs:
            program = key = module = None
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    source = f.read()
                key = self.ast_store.source_key(source)
                program, _ = self.ast_store.parse_recovering(source, path)
                module = self.ast_store.module_for(key)
            except (OSError, PhpSyntaxError):
                program = None
            self._programs[path] = program
            self._keys[path] = key
            self._modules[path] = module
        return self._programs[path]

    def _function_table(self, path: str) -> dict:
        table = self._tables.get(path)
        if table is None:
            program = self._program(path)
            if program is None:
                table = {}
            else:
                from repro.analysis.project import (
                    ProjectAnalyzer,
                    ProjectFile,
                )
                table = ProjectAnalyzer.build_function_table(
                    [ProjectFile(path, program)])
            self._tables[path] = table
        return table

    def _state(self, path: str, engine) -> tuple[dict, dict]:
        """(exported env, own summaries) of one dependency, computed once.

        The env is the global taint state *path* leaves behind after its
        top level; the summaries cover the functions *declared in path*
        (foreign names resolve through their own declaring file's state).
        Candidates found while executing the dependency are discarded —
        the dependency reports its own flows when it is scanned itself.
        Cycles contribute nothing on re-entry (PHP ``include_once``
        semantics).
        """
        state = self._states.get(path)
        if state is not None:
            src = self._state_sources.get(path)
            if src is None or src == self._source_key(path):
                return state
            # the memoized state came from detect_source text that is
            # not what is on disk: recompute the dependency from disk
        if path in self._active:
            return {}, {}
        self._active.add(path)
        try:
            program = self._program(path)
            if program is None:
                state = ({}, {})
            else:
                key = self._state_key(path)
                state = self._cached_state(key, path)
                if state is None:
                    extra, composed, init = self.context_for(path, engine)
                    _, env, summaries = engine.analyze_with_state(
                        program, path, extra_functions=extra,
                        initial_env=init,
                        module=self._modules.get(path),
                        extra_summaries=composed)
                    state = (env, self._own_summaries(path, summaries))
                    if key is not None and self.summary_cache is not None:
                        self.summary_cache.put(key, path,
                                               state[0], state[1])
        finally:
            self._active.discard(path)
        self._states[path] = state
        self._state_sources[path] = self._keys.get(path)
        return state

    def _own_summaries(self, path: str, summaries: dict) -> dict:
        """The subset of a run's summaries declared in *path* itself.

        A run also adopts/computes summaries for foreign names; those
        belong to (and are cached under) their declaring file.  Filtering
        preserves completion order, which the preset replay relies on.
        """
        own_names = self._function_table(path)
        return {name: summary for name, summary in summaries.items()
                if name in own_names}

    @staticmethod
    def _stripped(summary):
        if not summary.internal_candidates:
            return summary
        from dataclasses import replace
        return replace(summary, internal_candidates=[])

    # ------------------------------------------------------------------
    # summary-cache plumbing
    # ------------------------------------------------------------------
    def _source_key(self, path: str) -> str | None:
        self._program(path)
        return self._keys.get(path)

    def _state_key(self, path: str,
                   source_key: str | None = None) -> str | None:
        """The summary-cache digest for *path*, or None (cache disabled,
        unreadable file).  Covers content + include closure + knowledge
        fingerprint — the same invalidation discipline as
        :func:`repro.analysis.pipeline.closure_key`.
        """
        if self.summary_cache is None:
            return None
        own = source_key if source_key is not None \
            else self._source_key(path)
        if own is None:
            return None
        base = os.path.dirname(path)
        pairs = [(os.path.relpath(dep, base),
                  self._source_key(dep) or "missing")
                 for dep in self.graph.closure(path)]
        return self.summary_cache.state_key(own, pairs)

    def _cached_state(self, key: str | None,
                      path: str) -> tuple[dict, dict] | None:
        if key is None or self.summary_cache is None:
            return None
        state = self.summary_cache.get(key, path)
        if self.metrics is not None:
            name = "summary_cache_hit" if state is not None \
                else "summary_cache_miss"
            self.metrics.counter(name).inc()
        return state
