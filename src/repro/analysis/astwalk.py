"""The original AST-walking taint engine, kept as a reference oracle.

This module is a verbatim snapshot of ``repro.analysis.engine`` from
before the IR rewrite: a recursive interpreter over the PHP AST with the
exact same abstract domain (taint sets per variable, 2-iteration loop
joins, guard recording, on-demand function summaries).  It is **not used
by the production pipeline** — the differential oracle tests
(``tests/test_ir_oracle.py``) run both engines over the grammar corpus
and the demo application and assert byte-identical findings, which is
what pins the semantics of the compiled IR engine.

One engine instance is configured with any number of
:class:`~repro.analysis.model.DetectorConfig` objects (one per vulnerability
class) and walks a file's AST **once**, tracking taint for all classes
simultaneously.  Per-class behaviour (which sinks fire, which sanitizers
untaint) is resolved through the merged lookup tables built in
``__init__`` — this is what makes the engine reusable by the *vulnerability
detector generator*: a new class is purely new data, never new code.

The abstract domain is a set of :class:`~repro.analysis.model.Taint` values
per variable.  Joins are set unions; loops run two iterations (enough for
loop-carried string accumulation, the pattern that matters for injection
flaws); user functions get on-demand summaries with a recursion guard.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.php import ast
from repro.analysis.model import (
    EMPTY,
    STEP_ASSIGN,
    STEP_CALL,
    STEP_CONCAT,
    STEP_GUARD,
    STEP_PARAM,
    STEP_RETURN,
    STEP_SINK,
    STEP_SOURCE,
    SINK_ECHO,
    SINK_FUNCTION,
    SINK_INCLUDE,
    SINK_METHOD,
    SINK_SHELL,
    SINK_STATIC,
    CandidateVulnerability,
    DetectorConfig,
    FunctionSummary,
    PathStep,
    SinkSpec,
    Taint,
    union,
)

Env = dict[str, frozenset]

#: validation functions recognized as *guards* when used in conditions.
#: Guards never untaint — they are recorded on the path as symptoms that the
#: false positive predictor later turns into attributes (Table I).
GUARD_FUNCTIONS = frozenset({
    "is_string", "is_int", "is_integer", "is_long", "is_float", "is_double",
    "is_real", "is_numeric", "is_scalar", "is_null", "is_array", "is_bool",
    "ctype_digit", "ctype_alpha", "ctype_alnum",
    "preg_match", "preg_match_all", "ereg", "eregi",
    "strcmp", "strncmp", "strcasecmp", "strncasecmp", "strnatcmp",
    "in_array", "array_key_exists", "filter_var", "checkdate",
})

#: $_SERVER keys that carry attacker-controlled data.
TAINTED_SERVER_KEYS = frozenset({
    "php_self", "query_string", "request_uri", "path_info",
    "http_user_agent", "http_referer", "http_cookie", "http_host",
    "http_accept", "http_accept_language", "http_x_forwarded_for",
})

_TERMINATORS = (ast.Return, ast.Throw, ast.Break, ast.Continue)


def _stamp_steps(steps: tuple[PathStep, ...],
                 fname: str) -> tuple[PathStep, ...]:
    """Fill in the ``file`` of any hop that does not have one yet."""
    return tuple(s if s.file else PathStep(s.kind, s.detail, s.line, fname)
                 for s in steps)


def _stamp_taint(taint: Taint, fname: str) -> Taint:
    return Taint(taint.source, taint.source_line,
                 _stamp_steps(taint.path, fname), taint.sanitized_for)


def _stamp_candidate(cand: CandidateVulnerability,
                     fname: str) -> CandidateVulnerability:
    path = _stamp_steps(cand.path, fname)
    if path == cand.path:
        return cand
    return replace(cand, path=path)


@dataclass
class _Frame:
    """Per-function analysis frame: captures candidates and return taints."""

    candidates: list[CandidateVulnerability] = field(default_factory=list)
    returns: set[Taint] = field(default_factory=set)


class ReferenceTaintEngine:
    """Multi-class taint analyzer over a single parsed PHP file.

    When *groups* is given (a partition of *configs*, one group per
    detector sub-module / weapon), the engine runs all groups in a single
    AST traversal while keeping group semantics: a taint born at a source
    that only group G declares (its source functions or extra entry
    points) can only reach sinks of G's classes, exactly as if each group
    ran its own engine.  This is the substrate of the fused scan pipeline
    (:mod:`repro.analysis.pipeline`).
    """

    def __init__(self, configs: list[DetectorConfig],
                 groups: list[list[DetectorConfig]] | None = None,
                 telemetry=None) -> None:
        if not configs:
            raise ValueError(
                "ReferenceTaintEngine needs at least one DetectorConfig")
        self.configs = list(configs)
        # instrumentation hook (repro.telemetry): when enabled, analyze()
        # wraps the traversal in a `taint` span and counts summaries; the
        # lazy import keeps the engine importable on its own
        if telemetry is None:
            from repro.telemetry import NULL_TELEMETRY
            telemetry = NULL_TELEMETRY
        self.telemetry = telemetry

        self.entry_points: set[str] = set()
        self.source_functions: set[str] = set()
        self.sanitizers: dict[str, set[str]] = {}
        self.sanitizer_methods: dict[str, set[str]] = {}
        self.sink_functions: dict[str, list[tuple[str, SinkSpec]]] = {}
        self.sink_methods: dict[str, list[tuple[str, SinkSpec]]] = {}
        self.echo_classes: list[str] = []
        self.include_classes: list[str] = []
        self.shell_classes: list[str] = []
        self.untaint_casts: set[str] = set()

        for cfg in self.configs:
            self.entry_points |= cfg.entry_points
            self.source_functions |= {f.lower()
                                      for f in cfg.source_functions}
            self.untaint_casts |= cfg.untaint_casts
            for san in cfg.sanitizers:
                self.sanitizers.setdefault(san.lower(), set()).add(
                    cfg.class_id)
            for san in cfg.sanitizer_methods:
                self.sanitizer_methods.setdefault(san.lower(), set()).add(
                    cfg.class_id)
            for sink in cfg.sinks:
                if sink.kind == SINK_FUNCTION:
                    self.sink_functions.setdefault(
                        sink.name.lower(), []).append((cfg.class_id, sink))
                elif sink.kind in (SINK_METHOD, SINK_STATIC):
                    self.sink_methods.setdefault(
                        sink.name.lower(), []).append((cfg.class_id, sink))
                elif sink.kind == SINK_ECHO:
                    self.echo_classes.append(cfg.class_id)
                elif sink.kind == SINK_INCLUDE:
                    self.include_classes.append(cfg.class_id)
                elif sink.kind == SINK_SHELL:
                    self.shell_classes.append(cfg.class_id)

        # group scoping: taints created at a source only some groups
        # declare are pre-sanitized for every class outside those groups
        self.source_masks: dict[str, frozenset[str]] = {}
        self.entry_masks: dict[str, frozenset[str]] = {}
        if groups:
            all_ids = frozenset(cfg.class_id for cfg in self.configs)
            src_allowed: dict[str, set[str]] = {}
            ep_allowed: dict[str, set[str]] = {}
            for group in groups:
                gids = {cfg.class_id for cfg in group}
                for cfg in group:
                    for func in cfg.source_functions:
                        src_allowed.setdefault(func.lower(),
                                               set()).update(gids)
                    for name in cfg.entry_points:
                        ep_allowed.setdefault(name, set()).update(gids)
            for name, allowed in src_allowed.items():
                mask = all_ids - allowed
                if mask:
                    self.source_masks[name] = frozenset(mask)
            for name, allowed in ep_allowed.items():
                mask = all_ids - allowed
                if mask:
                    self.entry_masks[name] = frozenset(mask)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def analyze(self, program: ast.Program,
                filename: str = "<source>",
                extra_functions: dict | None = None,
                initial_env: Env | None = None,
                ) -> list[CandidateVulnerability]:
        """Analyze one parsed file, returning deduplicated candidates.

        Args:
            program: the parsed file.
            filename: used in the reports.
            extra_functions: project-wide declarations from *other* files,
                mapping lowercase name -> (decl node, home filename); used
                by :class:`~repro.analysis.project.ProjectAnalyzer` and the
                include resolver for cross-file call resolution.  Flows
                fully inside a foreign function are NOT re-reported here
                (the home file reports them).
            initial_env: taint state of global variables established by
                resolved includes before this file's top level runs.
        """
        out, _ = self.analyze_with_env(program, filename, extra_functions,
                                       initial_env)
        return out

    def analyze_with_env(self, program: ast.Program,
                         filename: str = "<source>",
                         extra_functions: dict | None = None,
                         initial_env: Env | None = None,
                         ) -> tuple[list[CandidateVulnerability], Env]:
        """Like :meth:`analyze`, also returning the final top-level env.

        The returned env is what the file exports to anything that
        includes it: the taint sets of its global variables after the top
        level ran (path steps stamped with this file's name).
        """
        telemetry = self.telemetry
        if not telemetry.enabled:
            run = _FileRun(self, program, filename, extra_functions,
                           initial_env)
            return run.run(), run.final_env
        with telemetry.tracer.span("taint", phase="taint", file=filename):
            run = _FileRun(self, program, filename, extra_functions,
                           initial_env)
            out = run.run()
        metrics = telemetry.metrics
        metrics.counter("functions_summarized").inc(len(run.summaries))
        metrics.counter("candidates_emitted").inc(len(out))
        return out, run.final_env


class _FileRun:
    """State for the analysis of a single file."""

    def __init__(self, engine: ReferenceTaintEngine, program: ast.Program,
                 filename: str,
                 extra_functions: dict | None = None,
                 initial_env: Env | None = None) -> None:
        self.engine = engine
        self.program = program
        self.filename = filename
        self.functions: dict[str, ast.FunctionDecl | ast.MethodDecl] = {}
        self.extra_functions = extra_functions or {}
        self.initial_env: Env = dict(initial_env or {})
        self.final_env: Env = {}
        self.summaries: dict[str, FunctionSummary] = {}
        self.in_progress: set[str] = set()
        self.frames: list[_Frame] = [_Frame()]
        self._collect_declarations(program.body)

    # ------------------------------------------------------------------
    def _collect_declarations(self, body: list[ast.Node]) -> None:
        for node in body:
            if isinstance(node, ast.FunctionDecl):
                self.functions.setdefault(node.name.lower(), node)
                self._collect_declarations(node.body)
            elif isinstance(node, ast.ClassDecl):
                for member in node.members:
                    if isinstance(member, ast.MethodDecl) and member.body:
                        key = f"{node.name.lower()}::{member.name.lower()}"
                        self.functions.setdefault(key, member)
                        # loose resolution by bare method name as fallback
                        self.functions.setdefault(member.name.lower(),
                                                  member)
            elif isinstance(node, (ast.Block, ast.If, ast.While, ast.DoWhile,
                                   ast.For, ast.Foreach, ast.Switch,
                                   ast.Try, ast.NamespaceDecl)):
                for child in node.children():
                    if isinstance(child, (ast.FunctionDecl, ast.ClassDecl)):
                        self._collect_declarations([child])

    # ------------------------------------------------------------------
    def run(self) -> list[CandidateVulnerability]:
        # analyze every declared function so flows entirely inside bodies
        # are reported even if the function is never called from this file
        for name in list(self.functions):
            self._summary(name)
        env: Env = dict(self.initial_env)
        self._exec_block(self.program.body, env)
        self.final_env = {
            key: frozenset(_stamp_taint(t, self.filename)
                           if isinstance(t, Taint) else t for t in value)
            for key, value in env.items()}
        out: list[CandidateVulnerability] = []
        seen: set[tuple] = set()
        for summary in self.summaries.values():
            for cand in summary.internal_candidates:
                if cand.key() not in seen:
                    seen.add(cand.key())
                    out.append(cand)
        for cand in self.frames[0].candidates:
            if cand.key() not in seen:
                seen.add(cand.key())
                out.append(cand)
        out.sort(key=lambda c: (c.sink_line, c.vuln_class))
        return [_stamp_candidate(c, self.filename) for c in out]

    # ------------------------------------------------------------------
    # function summaries
    # ------------------------------------------------------------------
    def _summary(self, name: str) -> FunctionSummary | None:
        name = name.lower()
        if name in self.summaries:
            return self.summaries[name]
        decl = self.functions.get(name)
        home = self.filename
        foreign = False
        if decl is None and name in self.extra_functions:
            decl, home = self.extra_functions[name]
            foreign = True
        if decl is None or name in self.in_progress:
            return None
        self.in_progress.add(name)
        try:
            summary = self._compute_summary(name, decl, home)
        finally:
            self.in_progress.discard(name)
        if foreign:
            # the declaring file reports its internal flows, not callers
            summary.internal_candidates = []
        self.summaries[name] = summary
        return summary

    def _compute_summary(
            self, name: str,
            decl: ast.FunctionDecl | ast.MethodDecl,
            home: str | None = None) -> FunctionSummary:
        summary = FunctionSummary(name,
                                  [p.name for p in decl.params],
                                  filename=home or self.filename)
        env: Env = {}
        for i, param in enumerate(decl.params):
            taint = Taint(f"param:{i}", decl.line,
                          (PathStep(STEP_PARAM, f"${param.name}",
                                    decl.line),))
            env[param.name] = frozenset({taint})
        frame = _Frame()
        self.frames.append(frame)
        try:
            self._exec_block(decl.body or [], env)
        finally:
            self.frames.pop()

        for cand in frame.candidates:
            if cand.entry_point.startswith("param:"):
                idx = int(cand.entry_point.split(":", 1)[1])
                summary.param_sinks.append(
                    (idx, cand.vuln_class, cand.sink_name, cand.sink_kind,
                     cand.sink_line, cand.path))
            else:
                summary.internal_candidates.append(cand)

        sanitized_sets = []
        for taint in frame.returns:
            if taint.source.startswith("param:"):
                idx = int(taint.source.split(":", 1)[1])
                if idx not in summary.returns_params:
                    summary.returns_params[idx] = taint.path
                sanitized_sets.append(taint.sanitized_for)
            else:
                # entry-point taints returned from a function make the
                # function itself a source for callers
                summary.returned_sources.append(taint)
        if sanitized_sets:
            common = frozenset.intersection(*sanitized_sets)
            summary.return_sanitized_for = common

        # stamp the hops produced inside this function with its home file
        # so cross-file candidates can show which file each hop is in
        fname = summary.filename
        summary.returns_params = {
            i: _stamp_steps(steps, fname)
            for i, steps in summary.returns_params.items()}
        summary.param_sinks = [
            (i, cls, sink_name, sink_kind, line, _stamp_steps(steps, fname))
            for (i, cls, sink_name, sink_kind, line, steps)
            in summary.param_sinks]
        summary.internal_candidates = [
            _stamp_candidate(c, fname) for c in summary.internal_candidates]
        summary.returned_sources = [
            _stamp_taint(t, fname) for t in summary.returned_sources]
        return summary

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _exec_block(self, body: list[ast.Node], env: Env) -> None:
        for stmt in body:
            self._exec(stmt, env)

    def _exec(self, node: ast.Node, env: Env) -> None:  # noqa: C901
        if isinstance(node, (ast.InlineHTML, ast.FunctionDecl,
                             ast.ClassDecl, ast.UseDecl, ast.ConstStatement,
                             ast.Global, ast.StaticVarDecl,
                             ast.Goto, ast.Label)):
            return
        if isinstance(node, ast.NamespaceDecl):
            if node.body:
                self._exec_block(node.body, env)
            return
        if isinstance(node, ast.ExpressionStatement):
            self._eval(node.expr, env)
            return
        if isinstance(node, ast.Echo):
            for expr in node.exprs:
                taints = self._eval(expr, env)
                self._check_echo(taints, "echo", node.line,
                                 _expr_context(expr))
            return
        if isinstance(node, ast.Block):
            self._exec_block(node.body, env)
            return
        if isinstance(node, ast.If):
            self._exec_if(node, env)
            return
        if isinstance(node, (ast.While, ast.DoWhile)):
            if isinstance(node, ast.While):
                self._eval(node.cond, env)
            # two passes propagate loop-carried taint (e.g. $q .= ...)
            for _ in range(2):
                branch = dict(env)
                self._exec_block(node.body, branch)
                _join_into(env, branch)
            if isinstance(node, ast.DoWhile):
                self._eval(node.cond, env)
            return
        if isinstance(node, ast.For):
            for expr in node.init:
                self._eval(expr, env)
            for expr in node.cond:
                self._eval(expr, env)
            for _ in range(2):
                branch = dict(env)
                self._exec_block(node.body, branch)
                for expr in node.step:
                    self._eval(expr, branch)
                _join_into(env, branch)
            return
        if isinstance(node, ast.Foreach):
            subject = self._eval(node.subject, env)
            branch = dict(env)
            stepped = frozenset(t.step(STEP_ASSIGN, "foreach", node.line)
                                for t in subject)
            if isinstance(node.value_var, ast.Variable):
                branch[node.value_var.name] = stepped
            elif isinstance(node.value_var, ast.ListAssign):
                # foreach ($rows as list($a, $b)) destructuring
                for target in node.value_var.targets:
                    if isinstance(target, ast.Variable):
                        branch[target.name] = stepped
            elif isinstance(node.value_var, ast.ArrayLiteral):
                # foreach ($rows as [$a, $b]) destructuring
                for item in node.value_var.items:
                    if isinstance(item.value, ast.Variable):
                        branch[item.value.name] = stepped
            if isinstance(node.key_var, ast.Variable):
                branch[node.key_var.name] = stepped
            for _ in range(2):
                inner = dict(branch)
                self._exec_block(node.body, inner)
                _join_into(branch, inner)
            _join_into(env, branch)
            return
        if isinstance(node, ast.Switch):
            self._eval(node.subject, env)
            merged: Env = dict(env)
            # fallthrough over-approximation: each case starts from the
            # cumulative state, as if every earlier case fell through
            branch = dict(env)
            for case in node.cases:
                if case.test is not None:
                    self._eval(case.test, env)
                self._exec_block(case.body, branch)
                _join_into(merged, branch)
            env.clear()
            env.update(merged)
            return
        if isinstance(node, ast.Return):
            if node.expr is not None:
                taints = self._eval(node.expr, env)
                self.frames[-1].returns.update(
                    t.step(STEP_RETURN, "return", node.line) for t in taints)
            return
        if isinstance(node, ast.Unset):
            for var in node.vars:
                if isinstance(var, ast.Variable):
                    env.pop(var.name, None)
            return
        if isinstance(node, ast.Throw):
            if node.expr is not None:
                self._eval(node.expr, env)
            return
        if isinstance(node, ast.Try):
            self._exec_block(node.body, env)
            for catch in node.catches:
                branch = dict(env)
                self._exec_block(catch.body, branch)
                _join_into(env, branch)
            if node.finally_body:
                self._exec_block(node.finally_body, env)
            return
        if isinstance(node, (ast.Break, ast.Continue)):
            return
        # any other statement-ish node: evaluate it as an expression
        self._eval(node, env)

    def _exec_if(self, node: ast.If, env: Env) -> None:
        self._eval(node.cond, env)
        guards = _extract_guards(node.cond)

        then_env = dict(env)
        _apply_guards(then_env, guards, node.line)
        self._exec_block(node.then, then_env)

        branches = [then_env]
        for cond, body in node.elifs:
            self._eval(cond, env)
            branch = dict(env)
            _apply_guards(branch, _extract_guards(cond), node.line)
            self._exec_block(body, branch)
            branches.append(branch)
        if node.otherwise is not None:
            branch = dict(env)
            self._exec_block(node.otherwise, branch)
            branches.append(branch)

        then_terminates = _terminates(node.then)
        merged: Env = {}
        if node.otherwise is None and not then_terminates:
            _join_into(merged, env)  # fallthrough path
        elif node.otherwise is None:
            _join_into(merged, env)
        for i, branch in enumerate(branches):
            if i == 0 and then_terminates:
                continue  # the then-branch never reaches the join point
            _join_into(merged, branch)
        # "if (!valid($x)) exit;" idiom: the continuation is guarded
        if then_terminates and guards:
            _apply_guards(merged, guards, node.line)
            exit_kind = _terminator_kind(node.then)
            if exit_kind:
                _apply_guards(merged,
                              [(key, exit_kind) for key, _ in guards],
                              node.line)
        env.clear()
        env.update(merged)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _eval(self, node: ast.Node | None,  # noqa: C901
              env: Env) -> frozenset:
        eng = self.engine
        if node is None or isinstance(node, (ast.Literal, ast.ConstFetch,
                                             ast.ClassConstAccess)):
            return EMPTY
        if isinstance(node, ast.Variable):
            return self._read_variable(node, env)
        if isinstance(node, ast.ArrayAccess):
            return self._read_array(node, env)
        if isinstance(node, ast.PropertyAccess):
            if node.name and isinstance(node.name, ast.Node):
                self._eval(node.name, env)
            key = _property_key(node)
            if key is not None:
                return env.get(key, EMPTY)
            return self._eval(node.obj, env)
        if isinstance(node, ast.StaticPropertyAccess):
            key = f"{node.cls if isinstance(node.cls, str) else '?'}" \
                  f"::${node.name}"
            return env.get(key, EMPTY)
        if isinstance(node, ast.InterpolatedString):
            taints = [self._eval(p, env) for p in node.parts
                      if not isinstance(p, ast.Literal)]
            return frozenset(
                t.step(STEP_CONCAT, "interpolation", node.line)
                for t in union(*taints)) if taints else EMPTY
        if isinstance(node, ast.ShellExec):
            taints = union(*[self._eval(p, env) for p in node.parts
                             if not isinstance(p, ast.Literal)])
            self._report_sinks(eng.shell_classes, taints, "shell_exec",
                               SINK_SHELL, node.line, ())
            return EMPTY
        if isinstance(node, ast.Assign):
            return self._eval_assign(node, env)
        if isinstance(node, ast.ListAssign):
            value = self._eval(node.value, env)
            stepped = frozenset(t.step(STEP_ASSIGN, "list", node.line)
                                for t in value)
            for target in node.targets:
                if isinstance(target, ast.Variable):
                    env[target.name] = stepped
            return value
        if isinstance(node, ast.BinaryOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            self._eval(node.operand, env)
            return EMPTY
        if isinstance(node, ast.IncDec):
            self._eval(node.operand, env)
            return EMPTY
        if isinstance(node, ast.Cast):
            inner = self._eval(node.expr, env)
            if node.to in eng.untaint_casts:
                return EMPTY
            return inner
        if isinstance(node, ast.Ternary):
            self._eval(node.cond, env)
            then = (self._eval(node.then, env) if node.then is not None
                    else self._eval(node.cond, env))
            other = self._eval(node.otherwise, env)
            return union(then, other)
        if isinstance(node, ast.ErrorSuppress):
            return self._eval(node.expr, env)
        if isinstance(node, (ast.Isset, ast.Empty, ast.InstanceOf)):
            for child in node.children():
                self._eval(child, env)
            return EMPTY
        if isinstance(node, ast.PrintExpr):
            taints = self._eval(node.expr, env)
            self._check_echo(taints, "print", node.line)
            return EMPTY
        if isinstance(node, ast.ExitExpr):
            if node.expr is not None:
                taints = self._eval(node.expr, env)
                self._check_echo(taints, "exit", node.line)
            return EMPTY
        if isinstance(node, ast.Include):
            taints = self._eval(node.expr, env)
            self._report_sinks(eng.include_classes, taints, node.kind,
                               SINK_INCLUDE, node.line, ())
            return EMPTY
        if isinstance(node, ast.ArrayLiteral):
            taints = [self._eval(item.value, env) for item in node.items]
            taints += [self._eval(item.key, env) for item in node.items
                       if item.key is not None]
            return union(*taints) if taints else EMPTY
        if isinstance(node, ast.FunctionCall):
            return self._eval_call(node, env)
        if isinstance(node, ast.MethodCall):
            return self._eval_method(node, env)
        if isinstance(node, ast.StaticCall):
            return self._eval_static(node, env)
        if isinstance(node, ast.New):
            taints = union(*[self._eval(a.value, env) for a in node.args]) \
                if node.args else EMPTY
            cls = node.cls if isinstance(node.cls, str) else "?"
            return frozenset(t.step(STEP_CALL, f"new {cls}", node.line)
                             for t in taints)
        if isinstance(node, ast.Clone):
            return self._eval(node.expr, env)
        if isinstance(node, ast.Closure):
            if node.is_arrow:
                # arrow functions capture the enclosing scope implicitly;
                # their body is one expression, evaluated in a scope copy
                body = node.body[0]
                expr = body.expr if isinstance(body, ast.Return) else body
                return self._eval(expr, dict(env))
            child = {name: env.get(name, EMPTY) for name, _ in node.uses}
            self._exec_block(node.body, child)
            return EMPTY
        if isinstance(node, ast.Match):
            self._eval(node.subject, env)
            results = []
            for arm in node.arms:
                for cond in arm.conditions or []:
                    self._eval(cond, env)
                results.append(self._eval(arm.body, env))
            return union(*results) if results else EMPTY
        if isinstance(node, ast.VariableVariable):
            if node.expr is not None:
                self._eval(node.expr, env)
            return EMPTY
        # fallback: evaluate children, propagate nothing
        for child in node.children():
            self._eval(child, env)
        return EMPTY

    # ------------------------------------------------------------------
    def _read_variable(self, node: ast.Variable,
                       env: Env) -> frozenset:
        name = node.name
        if name in self.engine.entry_points:
            if name == "_SERVER":
                return EMPTY  # only specific keys are tainted
            taint = Taint(f"${name}", node.line,
                          (PathStep(STEP_SOURCE, f"${name}", node.line),),
                          self.engine.entry_masks.get(name, frozenset()))
            for func, gline in _pending_guards(env, f"${name}", name):
                taint = taint.step(STEP_GUARD, func, gline)
            return frozenset({taint})
        return env.get(name, EMPTY)

    def _read_array(self, node: ast.ArrayAccess,
                    env: Env) -> frozenset:
        if node.index is not None:
            self._eval(node.index, env)
        base = node.base
        if isinstance(base, ast.Variable) and \
                base.name in self.engine.entry_points:
            key = None
            if isinstance(node.index, ast.Literal):
                key = str(node.index.value)
            if base.name == "_SERVER":
                if key is not None and \
                        key.lower() not in TAINTED_SERVER_KEYS:
                    return EMPTY
            desc = entry_point_desc(base.name, node.index)
            taint = Taint(desc, node.line,
                          (PathStep(STEP_SOURCE, desc, node.line),),
                          self.engine.entry_masks.get(base.name,
                                                      frozenset()))
            for func, gline in _pending_guards(env, desc, base.name):
                taint = taint.step(STEP_GUARD, func, gline)
            return frozenset({taint})
        return self._eval(base, env)

    def _eval_assign(self, node: ast.Assign, env: Env) -> frozenset:
        value = self._eval(node.value, env)
        target = node.target
        if node.op in (".=",):
            value = frozenset(t.step(STEP_CONCAT, ".=", node.line)
                              for t in value)
        if isinstance(target, ast.Variable):
            name = target.name
            stepped = frozenset(
                t.step(STEP_ASSIGN, f"${name}", node.line) for t in value)
            if node.op == "=":
                env[name] = stepped
            else:  # compound assignment merges with the current taint
                env[name] = union(env.get(name, EMPTY), stepped)
            return env[name]
        if isinstance(target, ast.ArrayAccess):
            base = target.base
            if target.index is not None:
                self._eval(target.index, env)
            if isinstance(base, ast.Variable):
                name = base.name
                stepped = frozenset(
                    t.step(STEP_ASSIGN, f"${name}[]", node.line)
                    for t in value)
                env[name] = union(env.get(name, EMPTY), stepped)
                return env[name]
            self._eval(base, env)
            return value
        key = _property_key(target) if isinstance(
            target, ast.PropertyAccess) else None
        if key is not None:
            stepped = frozenset(
                t.step(STEP_ASSIGN, key, node.line) for t in value)
            if node.op == "=":
                env[key] = stepped
            else:
                env[key] = union(env.get(key, EMPTY), stepped)
            return env[key]
        if isinstance(target, ast.StaticPropertyAccess):
            skey = f"{target.cls if isinstance(target.cls, str) else '?'}" \
                   f"::${target.name}"
            env[skey] = frozenset(
                t.step(STEP_ASSIGN, skey, node.line) for t in value)
            return env[skey]
        return value

    def _eval_binop(self, node: ast.BinaryOp, env: Env) -> frozenset:
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        if node.op == ".":
            return frozenset(t.step(STEP_CONCAT, ".", node.line)
                             for t in union(left, right))
        if node.op in ("??",):
            return union(left, right)
        if node.op in ("+", "-", "*", "/", "%", "**"):
            # arithmetic coerces to numbers; treated as neutralizing
            return EMPTY
        # comparisons / logic yield booleans
        return EMPTY

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def _eval_call(self, node: ast.FunctionCall,  # noqa: C901
                   env: Env) -> frozenset:
        eng = self.engine
        arg_taints = [self._eval(a.value, env) for a in node.args]
        if not isinstance(node.name, str):
            self._eval(node.name, env)
            return frozenset(
                t.step(STEP_CALL, "dynamic_call", node.line)
                for t in union(*arg_taints)) if arg_taints else EMPTY
        name = node.name.lower().lstrip("\\")

        if name in eng.sanitizers:
            classes = eng.sanitizers[name]
            return frozenset(t.sanitize(classes, name, node.line)
                             for t in union(*arg_taints)) \
                if arg_taints else EMPTY

        if name in eng.source_functions:
            taint = Taint(f"{name}()", node.line,
                          (PathStep(STEP_SOURCE, f"{name}()", node.line),),
                          eng.source_masks.get(name, frozenset()))
            return frozenset({taint})

        summary = self._summary(name)
        if summary is not None:
            return self._apply_summary(summary, name, arg_taints, node.line)

        if name in eng.sink_functions:
            self._check_arg_sinks(eng.sink_functions[name], name,
                                  SINK_FUNCTION, arg_taints, node.line,
                                  _context_text(node.args))
            return EMPTY

        # unknown builtin or library function: taint passes through.
        # (this is how custom helpers like vfront's `escape` show up as
        # candidates until configured as sanitizers — §V-A of the paper)
        return frozenset(t.step(STEP_CALL, name, node.line)
                         for t in union(*arg_taints)) \
            if arg_taints else EMPTY

    def _eval_method(self, node: ast.MethodCall, env: Env) -> frozenset:
        eng = self.engine
        obj_taints = self._eval(node.obj, env)
        arg_taints = [self._eval(a.value, env) for a in node.args]
        if not isinstance(node.name, str):
            return union(obj_taints, *arg_taints)
        name = node.name.lower()

        if name in eng.sanitizer_methods:
            classes = eng.sanitizer_methods[name]
            return frozenset(t.sanitize(classes, name, node.line)
                             for t in union(*arg_taints)) \
                if arg_taints else EMPTY

        if name in eng.sink_methods:
            receiver = _receiver_text(node.obj)
            matches = [(cid, spec) for cid, spec in eng.sink_methods[name]
                       if spec.receiver_hint is None
                       or spec.receiver_hint in receiver]
            if matches:
                self._check_arg_sinks(matches, name, SINK_METHOD,
                                      arg_taints, node.line,
                                      _context_text(node.args))
                return EMPTY

        summary = self._summary(name)
        if summary is not None:
            return self._apply_summary(summary, name, arg_taints, node.line)

        return frozenset(
            t.step(STEP_CALL, name, node.line)
            for t in union(obj_taints, *arg_taints))

    def _eval_static(self, node: ast.StaticCall, env: Env) -> frozenset:
        eng = self.engine
        arg_taints = [self._eval(a.value, env) for a in node.args]
        if not isinstance(node.name, str):
            return union(*arg_taints) if arg_taints else EMPTY
        name = node.name.lower()
        cls = node.cls.lower() if isinstance(node.cls, str) else "?"

        if name in eng.sanitizer_methods:
            classes = eng.sanitizer_methods[name]
            return frozenset(t.sanitize(classes, name, node.line)
                             for t in union(*arg_taints)) \
                if arg_taints else EMPTY
        if name in eng.sink_methods:
            matches = [(cid, spec) for cid, spec in eng.sink_methods[name]
                       if spec.receiver_hint is None
                       or spec.receiver_hint in cls]
            if matches:
                self._check_arg_sinks(matches, name, SINK_STATIC,
                                      arg_taints, node.line,
                                      _context_text(node.args))
                return EMPTY
        summary = self._summary(f"{cls}::{name}") or self._summary(name)
        if summary is not None:
            return self._apply_summary(summary, name, arg_taints, node.line)
        return frozenset(t.step(STEP_CALL, name, node.line)
                         for t in union(*arg_taints)) \
            if arg_taints else EMPTY

    def _apply_summary(self, summary: FunctionSummary, name: str,
                       arg_taints: list[frozenset],
                       line: int) -> frozenset:
        # flows: tainted argument -> sink inside the callee
        for idx, class_id, sink_name, sink_kind, sink_line, steps in \
                summary.param_sinks:
            if idx >= len(arg_taints):
                continue
            for taint in arg_taints[idx]:
                if class_id in taint.sanitized_for:
                    continue
                entry = taint.step(STEP_CALL, name, line)
                path = entry.path + steps
                self._emit(class_id, sink_name, sink_kind, sink_line,
                           taint, path, (),
                           filename=summary.filename or None)
        # flows: tainted argument -> return value
        returned: set[Taint] = set()
        for taint in summary.returned_sources:
            returned.add(taint.step(STEP_CALL, name, line))
        for idx, steps in summary.returns_params.items():
            if idx >= len(arg_taints):
                continue
            for taint in arg_taints[idx]:
                out = Taint(taint.source, taint.source_line,
                            taint.path
                            + (PathStep(STEP_CALL, name, line),)
                            + steps,
                            taint.sanitized_for
                            | summary.return_sanitized_for)
                returned.add(out)
        return frozenset(returned)

    # ------------------------------------------------------------------
    # sink reporting
    # ------------------------------------------------------------------
    def _check_arg_sinks(self, matches: list[tuple[str, SinkSpec]],
                         sink_name: str, sink_kind: str,
                         arg_taints: list[frozenset], line: int,
                         context: str = "") -> None:
        for class_id, spec in matches:
            positions = (range(len(arg_taints))
                         if spec.arg_positions is None
                         else spec.arg_positions)
            for pos in positions:
                if pos >= len(arg_taints):
                    continue
                for taint in arg_taints[pos]:
                    if class_id in taint.sanitized_for:
                        continue
                    self._emit(class_id, sink_name, sink_kind, line,
                               taint, taint.path, (pos,), context)

    def _check_echo(self, taints: frozenset, sink_name: str,
                    line: int, context: str = "") -> None:
        for class_id in self.engine.echo_classes:
            for taint in taints:
                if class_id in taint.sanitized_for:
                    continue
                self._emit(class_id, sink_name, SINK_ECHO, line,
                           taint, taint.path, (), context)

    def _report_sinks(self, class_ids: list[str], taints: frozenset,
                      sink_name: str, sink_kind: str, line: int,
                      positions: tuple[int, ...]) -> None:
        for class_id in class_ids:
            for taint in taints:
                if class_id in taint.sanitized_for:
                    continue
                self._emit(class_id, sink_name, sink_kind, line,
                           taint, taint.path, positions)

    def _emit(self, class_id: str, sink_name: str, sink_kind: str,
              line: int, taint: Taint, path: tuple[PathStep, ...],
              positions: tuple[int, ...], context: str = "",
              filename: str | None = None) -> None:
        cand = CandidateVulnerability(
            vuln_class=class_id,
            filename=filename or self.filename,
            sink_name=sink_name,
            sink_line=line,
            entry_point=taint.source,
            entry_line=taint.source_line,
            path=path + (PathStep(STEP_SINK, sink_name, line),),
            sink_kind=sink_kind,
            tainted_args=positions,
            context=context,
        )
        self.frames[-1].candidates.append(cand)



# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _join_into(target: Env, other: Env) -> None:
    """In-place join: target := target ⊔ other."""
    for name, taints in other.items():
        if name in target:
            target[name] = union(target[name], taints)
        else:
            target[name] = taints


def _terminates(body: list[ast.Node]) -> bool:
    """Does this branch unconditionally leave the enclosing flow?"""
    for stmt in body:
        if isinstance(stmt, _TERMINATORS):
            return True
        if isinstance(stmt, ast.ExpressionStatement) and \
                isinstance(stmt.expr, ast.ExitExpr):
            return True
    return False


_GUARD_PREFIX = "\x00guard:"


def _extract_guards(cond: ast.Node | None) -> list[tuple[str, str]]:
    """Collect (key, guard-function) pairs from a condition.

    Keys are plain variable names, or entry-point descriptions such as
    ``$_GET['n']`` when the guard applies directly to a superglobal read.
    Guards are validation calls such as ``is_numeric($x)`` or
    ``preg_match('/^\\d+$/', $x)``; also ``isset``/``empty`` checks.  They
    are recorded as path symptoms, never as sanitization.
    """
    guards: list[tuple[str, str]] = []
    if cond is None:
        return guards
    for node in cond.walk():
        if isinstance(node, ast.FunctionCall) and \
                isinstance(node.name, str):
            # every call on a variable in a condition is recorded: known
            # validation functions become static symptoms, anything else
            # is only visible through the dynamic-symptom map (§III-B2)
            name = node.name.lower()
            for arg in node.args:
                for key in _guard_keys(arg.value):
                    guards.append((key, name))
        elif isinstance(node, ast.Isset):
            for var_node in node.vars:
                for key in _guard_keys(var_node):
                    guards.append((key, "isset"))
        elif isinstance(node, ast.Empty):
            for key in _guard_keys(node.expr):
                guards.append((key, "empty"))
    return guards


def _guard_keys(node: ast.Node | None) -> list[str]:
    """Guardable keys inside an expression: vars + superglobal reads."""
    if node is None:
        return []
    keys: list[str] = []
    for n in node.walk():
        if isinstance(n, ast.Variable):
            keys.append(n.name)
        elif isinstance(n, ast.ArrayAccess) and \
                isinstance(n.base, ast.Variable) and \
                n.base.name.startswith("_"):
            keys.append(entry_point_desc(n.base.name, n.index))
    return keys


def entry_point_desc(base_name: str, index: ast.Node | None) -> str:
    """Canonical description of a superglobal read, e.g. ``$_GET['id']``."""
    if isinstance(index, ast.Literal):
        return f"${base_name}['{index.value}']"
    return f"${base_name}[...]"


def _apply_guards(env: Env, guards: list[tuple[str, str]],
                  line: int) -> None:
    for key, func in guards:
        if key in env:
            env[key] = frozenset(t.step(STEP_GUARD, func, line)
                                 for t in env[key])
        if key.startswith("$"):
            # remember guards against future superglobal re-reads
            gkey = _GUARD_PREFIX + key
            env[gkey] = union(env.get(gkey, frozenset()),
                              frozenset({(func, line)}))


def _pending_guards(env: Env, desc: str,
                    base_name: str) -> list[tuple[str, int]]:
    """Guards previously recorded for an entry-point description."""
    out: list[tuple[str, int]] = []
    for key in (_GUARD_PREFIX + desc, _GUARD_PREFIX + "$" + base_name):
        out.extend(env.get(key, frozenset()))
    return sorted(out)


def _property_key(node: ast.PropertyAccess) -> str | None:
    """Key for property taint storage: ``$obj->prop`` -> ``obj->prop``."""
    if not isinstance(node.name, str):
        return None
    if isinstance(node.obj, ast.Variable):
        return f"{node.obj.name}->{node.name}"
    if isinstance(node.obj, ast.PropertyAccess):
        inner = _property_key(node.obj)
        if inner is not None:
            return f"{inner}->{node.name}"
    return None


def _receiver_text(node: ast.Node | None) -> str:
    """Loose textual description of a method receiver for hint matching."""
    if isinstance(node, ast.Variable):
        return node.name.lower()
    if isinstance(node, ast.PropertyAccess):
        name = node.name if isinstance(node.name, str) else ""
        return f"{_receiver_text(node.obj)}->{name}".lower()
    if isinstance(node, ast.MethodCall):
        name = node.name if isinstance(node.name, str) else ""
        return f"{_receiver_text(node.obj)}.{name}()".lower()
    if isinstance(node, ast.New):
        cls = node.cls if isinstance(node.cls, str) else ""
        return f"new:{cls}".lower()
    if isinstance(node, ast.FunctionCall) and isinstance(node.name, str):
        return f"{node.name}()".lower()
    return ""


def _terminator_kind(body: list[ast.Node]) -> str | None:
    """Name of the terminator ending a guard branch (``exit``/``error``)."""
    for stmt in body:
        if isinstance(stmt, ast.ExpressionStatement) and \
                isinstance(stmt.expr, ast.ExitExpr):
            return "exit"
        if isinstance(stmt, ast.Return):
            return "return"
        if isinstance(stmt, ast.Throw):
            return "error"
    return None


def _expr_context(expr: ast.Node | None) -> str:
    """Approximate the literal text around tainted data in an expression.

    Literal string fragments are kept verbatim; every non-literal part is
    replaced by the placeholder ``\u00a7``.  The false-positive predictor
    mines this for the SQL-query symptoms of Table I (FROM clause,
    aggregate functions, complex queries, numeric entry points).
    """
    if expr is None:
        return ""
    if isinstance(expr, ast.Literal):
        return str(expr.value) if expr.kind == "string" else "\u00a7"
    if isinstance(expr, ast.InterpolatedString):
        return "".join(_expr_context(p) for p in expr.parts)
    if isinstance(expr, ast.BinaryOp) and expr.op == ".":
        return _expr_context(expr.left) + _expr_context(expr.right)
    if isinstance(expr, ast.Assign):
        return _expr_context(expr.value)
    if isinstance(expr, ast.ErrorSuppress):
        return _expr_context(expr.expr)
    return "\u00a7"


def _context_text(args: list[ast.Argument]) -> str:
    return " ".join(_expr_context(a.value) for a in args)
