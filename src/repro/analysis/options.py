"""Scan configuration: one options object threaded end to end.

The scan stack used to grow a keyword argument per feature —
``analyze_tree(root, jobs=..., cache_dir=..., telemetry=..., includes=...)``
and the same sprawl again on :class:`~repro.analysis.pipeline.ScanScheduler`
— which made every new knob a signature change on three layers.
:class:`ScanOptions` is the single carrier instead: the tool facades, the
scheduler, the :class:`repro.api.Scanner` facade and the scan service all
accept one frozen options value.  (The pre-options keyword shims were
removed after their deprecation cycle; passing ``jobs=`` and friends to
the facades now raises ``TypeError`` pointing here.)
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class ScanOptions:
    """Everything a scan run can be configured with.

    Attributes:
        jobs: analysis worker processes; ``1`` (the default) keeps the
            whole scan in-process, ``None`` or ``"auto"`` means one per
            CPU (capped at ``os.cpu_count()`` — oversubscribing a small
            box slows scans down), and an explicit integer is honored
            as-is.
        cache_dir: root of the on-disk result cache; ``None`` disables
            on-disk caching (warm in-memory state is unaffected).
        includes: statically resolve ``include``/``require`` targets so
            taint crosses file boundaries; ``False`` restores strictly
            per-file analysis.
        ast_cache: keep pickled ASTs (with their lowered IR modules) on
            disk next to the result cache so re-parses of unchanged
            content are served from disk (only effective when
            ``cache_dir`` is set); ``False`` disables the AST tier
            without touching the result cache.
        summary_cache: persist per-file function summaries + exported
            envs (:mod:`repro.analysis.summaries`) in the AST tier
            directory, so include closures compose cached dependency
            state instead of re-executing dependency bodies (only
            effective when ``cache_dir`` is set and ``ast_cache`` is
            on — the tier lives inside the AST cache directory);
            ``False`` disables just the summary tier.
        prefilter: classify files from raw bytes against the compiled
            knowledge catalogs (:mod:`repro.analysis.prefilter`) and
            skip the lex/parse/taint pipeline for files whose include
            closure cannot contain a finding; ``False``
            (``--no-prefilter``) analyzes every file.
        telemetry: ``True`` builds a fresh enabled
            :class:`~repro.telemetry.Telemetry` for the run, ``False`` /
            ``None`` runs untraced, and an explicit ``Telemetry`` instance
            is used as-is (the CLI passes its own so ``--trace-out`` can
            export it afterwards).
        predictor: override the tool's false-positive predictor for this
            run; ``None`` uses the tool's own.
        profile: collect the IR per-opcode dispatch histogram during the
            scan (``wape scan --profile``); off by default so the
            interpreter's dispatch loop carries zero instrumentation.
        log: a :class:`repro.obs.JsonlLogger` receiving the scan's
            structured events (worker segments are merged into it at
            chunk join); ``None`` disables structured logging.
        run_id: correlates every log record, span and ledger entry of
            one scan; generated when ``None``.
    """

    jobs: int | str | None = 1
    cache_dir: str | None = None
    includes: bool = True
    ast_cache: bool = True
    summary_cache: bool = True
    prefilter: bool = True
    telemetry: object | None = None
    predictor: object | None = None
    profile: bool = False
    log: object | None = None
    run_id: str | None = None

    # ------------------------------------------------------------------
    def resolved_jobs(self) -> int:
        """Effective worker count (``None``/``"auto"`` = one per CPU)."""
        if self.jobs is None or self.jobs == "auto":
            return os.cpu_count() or 1
        return max(1, int(self.jobs))

    def resolve_telemetry(self):
        """The run's ``Telemetry``: never ``None``, disabled by default."""
        from repro.telemetry import NULL_TELEMETRY, Telemetry

        if self.telemetry is None or self.telemetry is False:
            return NULL_TELEMETRY
        if self.telemetry is True:
            return Telemetry()
        return self.telemetry

    def state_key(self) -> tuple:
        """The fields that change *detection results or warm state*.

        Two scans whose options share this key may reuse each other's
        warm incremental state; jobs/telemetry/predictor only change how
        (or how observably) the same results are computed.  The
        prefilter is deliberately absent: it is findings-preserving by
        construction, so warm state carries across toggling it.
        """
        return (self.includes, self.cache_dir)
