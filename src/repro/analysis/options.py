"""Scan configuration: one options object threaded end to end.

The scan stack used to grow a keyword argument per feature —
``analyze_tree(root, jobs=..., cache_dir=..., telemetry=..., includes=...)``
and the same sprawl again on :class:`~repro.analysis.pipeline.ScanScheduler`
— which made every new knob a signature change on three layers.
:class:`ScanOptions` is the single carrier instead: the tool facades, the
scheduler, the :class:`repro.api.Scanner` facade and the scan service all
accept one frozen options value.

The legacy keyword signatures keep working for one release: call sites
passing ``jobs=``/``cache_dir=``/``telemetry=``/``includes=`` directly are
routed through :func:`merge_legacy_options`, which builds the equivalent
:class:`ScanOptions` and emits a :class:`DeprecationWarning` pointing at
the replacement.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, fields


class _Unset:
    """Sentinel distinguishing "not passed" from an explicit ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


#: default value of every legacy keyword shim parameter.
UNSET = _Unset()


@dataclass(frozen=True)
class ScanOptions:
    """Everything a scan run can be configured with.

    Attributes:
        jobs: analysis worker processes; ``1`` (the default) keeps the
            whole scan in-process, ``None`` means one per CPU.
        cache_dir: root of the on-disk result cache; ``None`` disables
            on-disk caching (warm in-memory state is unaffected).
        includes: statically resolve ``include``/``require`` targets so
            taint crosses file boundaries; ``False`` restores strictly
            per-file analysis.
        ast_cache: keep pickled ASTs (with their lowered IR modules) on
            disk next to the result cache so re-parses of unchanged
            content are served from disk (only effective when
            ``cache_dir`` is set); ``False`` disables the AST tier
            without touching the result cache.
        summary_cache: persist per-file function summaries + exported
            envs (:mod:`repro.analysis.summaries`) in the AST tier
            directory, so include closures compose cached dependency
            state instead of re-executing dependency bodies (only
            effective when ``cache_dir`` is set and ``ast_cache`` is
            on — the tier lives inside the AST cache directory);
            ``False`` disables just the summary tier.
        telemetry: ``True`` builds a fresh enabled
            :class:`~repro.telemetry.Telemetry` for the run, ``False`` /
            ``None`` runs untraced, and an explicit ``Telemetry`` instance
            is used as-is (the CLI passes its own so ``--trace-out`` can
            export it afterwards).
        predictor: override the tool's false-positive predictor for this
            run; ``None`` uses the tool's own.
        profile: collect the IR per-opcode dispatch histogram during the
            scan (``wape scan --profile``); off by default so the
            interpreter's dispatch loop carries zero instrumentation.
        log: a :class:`repro.obs.JsonlLogger` receiving the scan's
            structured events (worker segments are merged into it at
            chunk join); ``None`` disables structured logging.
        run_id: correlates every log record, span and ledger entry of
            one scan; generated when ``None``.
    """

    jobs: int | None = 1
    cache_dir: str | None = None
    includes: bool = True
    ast_cache: bool = True
    summary_cache: bool = True
    telemetry: object | None = None
    predictor: object | None = None
    profile: bool = False
    log: object | None = None
    run_id: str | None = None

    # ------------------------------------------------------------------
    def resolved_jobs(self) -> int:
        """Effective worker count (``None`` means one per CPU)."""
        if self.jobs is None:
            return os.cpu_count() or 1
        return max(1, int(self.jobs))

    def resolve_telemetry(self):
        """The run's ``Telemetry``: never ``None``, disabled by default."""
        from repro.telemetry import NULL_TELEMETRY, Telemetry

        if self.telemetry is None or self.telemetry is False:
            return NULL_TELEMETRY
        if self.telemetry is True:
            return Telemetry()
        return self.telemetry

    def state_key(self) -> tuple:
        """The fields that change *detection results or warm state*.

        Two scans whose options share this key may reuse each other's
        warm incremental state; jobs/telemetry/predictor only change how
        (or how observably) the same results are computed.
        """
        return (self.includes, self.cache_dir)


def merge_legacy_options(options: ScanOptions | None, caller: str,
                         **legacy) -> ScanOptions:
    """Resolve an ``options=`` value against legacy keyword arguments.

    Legacy keywords whose value is :data:`UNSET` were not passed.  Passing
    any of them warns (once per call site) and is rejected when an
    explicit ``options`` is also given — mixing the two would make it
    ambiguous which value wins.
    """
    passed = {name: value for name, value in legacy.items()
              if value is not UNSET}
    if not passed:
        return options if options is not None else ScanOptions()
    if options is not None:
        raise TypeError(
            f"{caller}: pass either options=ScanOptions(...) or the legacy "
            f"keywords {sorted(passed)}, not both")
    warnings.warn(
        f"{caller}: the {sorted(passed)} keyword(s) are deprecated and "
        f"will be removed in the next release; pass "
        f"options=ScanOptions(...) instead",
        DeprecationWarning, stacklevel=3)
    known = {f.name for f in fields(ScanOptions)}
    unknown = set(passed) - known
    if unknown:  # defensive: a shim wired up a keyword ScanOptions lacks
        raise TypeError(f"{caller}: unknown scan option(s) {sorted(unknown)}")
    return ScanOptions(**passed)
