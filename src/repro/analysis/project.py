"""Whole-project analysis with cross-file call resolution.

Per-file analysis (the default, matching the per-file detectors of the
original tool) cannot see user functions defined in *other* files of the
application — a helper declared in ``lib.php`` and called from
``index.php`` is an unknown function there.  :class:`ProjectAnalyzer`
closes that gap:

1. every PHP file under the root is parsed once;
2. all function and method declarations are collected into a project-wide
   table (first declaration wins, mirroring PHP's redeclare error);
3. each file is analyzed with the foreign declarations available for
   summaries, so taint flows through cross-file helpers — including
   sanitization performed inside them — are resolved.

Flows that lie entirely inside a foreign function are reported only by its
home file, so project-wide results stay deduplicated.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.exceptions import PhpSyntaxError
from repro.php import ast, parse
from repro.analysis.detector import PHP_EXTENSIONS, Detector
from repro.analysis.engine import TaintEngine
from repro.analysis.model import CandidateVulnerability, DetectorConfig
from repro.analysis.options import ScanOptions


@dataclass
class ProjectFile:
    """One parsed file of the project."""

    path: str
    program: ast.Program | None = None
    lines_of_code: int = 0
    parse_error: str | None = None
    #: real wall time spent on this file (parse + taint analysis).
    seconds: float = 0.0


@dataclass
class ProjectResult:
    """Outcome of a whole-project analysis."""

    root: str
    files: list[ProjectFile] = field(default_factory=list)
    candidates: list[CandidateVulnerability] = field(default_factory=list)

    @property
    def parsed_files(self) -> list[ProjectFile]:
        return [f for f in self.files if f.program is not None]

    def candidates_for(self, path: str) -> list[CandidateVulnerability]:
        return [c for c in self.candidates if c.filename == path]


class ProjectAnalyzer:
    """Cross-file taint analysis over a directory tree.

    Args:
        units: what to detect — a list of
            :class:`~repro.analysis.pipeline.ConfigGroup` detection units
            (the tool facades' native currency), a plain list of
            :class:`DetectorConfig` objects, or a :class:`Detector`.
        options: the run's :class:`~repro.analysis.options.ScanOptions`
            (only ``telemetry`` and ``predictor`` apply to project mode).
    """

    def __init__(self, units,
                 options: ScanOptions | None = None) -> None:
        self.options = options or ScanOptions()
        self.telemetry = self.options.resolve_telemetry()
        engine_groups = None
        if isinstance(units, Detector):
            self.engine = units.engine
            self.engine.telemetry = self.telemetry
            return
        units = list(units)
        if units and hasattr(units[0], "configs"):  # ConfigGroup units
            engine_groups = [list(u.configs) for u in units]
            configs = [cfg for u in units for cfg in u.configs]
        else:
            configs = units
        self.engine = TaintEngine(list(configs), engine_groups,
                                  telemetry=self.telemetry)

    # ------------------------------------------------------------------
    def load(self, root: str) -> list[ProjectFile]:
        """Parse every PHP file under *root* (errors captured per file)."""
        out: list[ProjectFile] = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.lower().endswith(PHP_EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                pf = ProjectFile(path)
                start = time.perf_counter()
                try:
                    with open(path, encoding="utf-8",
                              errors="replace") as f:
                        source = f.read()
                    pf.lines_of_code = source.count("\n") + 1
                    pf.program = parse(source, path)
                except (OSError, PhpSyntaxError) as exc:
                    pf.parse_error = str(exc)
                pf.seconds = time.perf_counter() - start
                out.append(pf)
        return out

    @staticmethod
    def build_function_table(files: list[ProjectFile]
                             ) -> dict[str, tuple[ast.Node, str]]:
        """Project-wide declaration table: name -> (decl, home file)."""
        table: dict[str, tuple[ast.Node, str]] = {}

        def collect(body, path):
            for node in body:
                if isinstance(node, ast.FunctionDecl):
                    table.setdefault(node.name.lower(), (node, path))
                    collect(node.body, path)
                elif isinstance(node, ast.ClassDecl):
                    for member in node.members:
                        if isinstance(member, ast.MethodDecl) \
                                and member.body:
                            key = (f"{node.name.lower()}"
                                   f"::{member.name.lower()}")
                            table.setdefault(key, (member, path))
                            table.setdefault(member.name.lower(),
                                             (member, path))
                elif isinstance(node, (ast.Block, ast.If, ast.While,
                                       ast.DoWhile, ast.For, ast.Foreach,
                                       ast.Switch, ast.Try,
                                       ast.NamespaceDecl)):
                    collect([c for c in node.children()
                             if isinstance(c, (ast.FunctionDecl,
                                               ast.ClassDecl))], path)

        for pf in files:
            if pf.program is not None:
                collect(pf.program.body, pf.path)
        return table

    # ------------------------------------------------------------------
    def analyze_tree(self, root: str) -> ProjectResult:
        """Parse, table-build and analyze the whole project."""
        tracer = self.telemetry.tracer
        with tracer.span("load", phase="parse", root=root):
            result = ProjectResult(root, self.load(root))
        with tracer.span("function_table", phase="link"):
            table = self.build_function_table(result.parsed_files)
        with tracer.span("scan", phase="scan",
                         files=len(result.parsed_files)):
            seen: set[tuple] = set()
            for pf in result.parsed_files:
                assert pf.program is not None
                start = time.perf_counter()
                # foreign = declarations from every *other* file
                foreign = {name: (decl, home)
                           for name, (decl, home) in table.items()
                           if home != pf.path}
                for cand in self.engine.analyze(pf.program, pf.path,
                                                extra_functions=foreign):
                    if cand.key() not in seen:
                        seen.add(cand.key())
                        result.candidates.append(cand)
                pf.seconds += time.perf_counter() - start
        result.candidates.sort(
            key=lambda c: (c.filename, c.sink_line, c.vuln_class))
        return result
