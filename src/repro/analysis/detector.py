"""Detectors and the vulnerability detector generator (Fig. 2, box 4).

A :class:`Detector` bundles one or more
:class:`~repro.analysis.model.DetectorConfig` objects with a
:class:`~repro.analysis.engine.TaintEngine` and exposes ``detect`` over
source text, a parsed program, files or whole directory trees.

:func:`generate_detector` is the *vulnerability detector generator*: given
only the (ep, ss, san) data for a brand-new vulnerability class it returns a
working detector — no code is written, which is the paper's headline
property.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.exceptions import PhpSyntaxError
from repro.php import ast, parse
from repro.analysis.engine import TaintEngine
from repro.analysis.model import (
    CandidateVulnerability,
    DetectorConfig,
    SinkSpec,
)

#: superglobals every injection class treats as entry points by default.
DEFAULT_ENTRY_POINTS = frozenset({
    "_GET", "_POST", "_COOKIE", "_REQUEST", "_FILES", "_SERVER",
})

PHP_EXTENSIONS = (".php", ".php3", ".php4", ".php5", ".phtml", ".inc")


@dataclass
class FileResult:
    """Detection output for one file."""

    filename: str
    candidates: list[CandidateVulnerability] = field(default_factory=list)
    lines_of_code: int = 0
    parse_error: str | None = None
    seconds: float = 0.0
    #: set when the parser recovered from damaged statements: the first
    #: skipped syntax error (the file was still analyzed).
    parse_warning: str | None = None
    #: number of damaged statements recovery skipped over.
    recovered_statements: int = 0
    #: include statements statically resolved / not resolved in this file.
    resolved_includes: int = 0
    unresolved_includes: int = 0


class Detector:
    """Runs taint analysis for a fixed set of vulnerability classes."""

    def __init__(self, configs: list[DetectorConfig]) -> None:
        self.configs = list(configs)
        self.engine = TaintEngine(self.configs)

    @property
    def class_ids(self) -> list[str]:
        return [c.class_id for c in self.configs]

    # ------------------------------------------------------------------
    def detect_program(self, program: ast.Program,
                       filename: str = "<source>"
                       ) -> list[CandidateVulnerability]:
        """Analyze an already-parsed program."""
        return self.engine.analyze(program, filename)

    def detect_source(self, source: str, filename: str = "<source>"
                      ) -> list[CandidateVulnerability]:
        """Parse and analyze PHP source text."""
        return self.detect_program(parse(source, filename), filename)

    def detect_file(self, path: str) -> FileResult:
        """Analyze one file on disk; parse errors are captured, not raised."""
        start = time.perf_counter()
        result = FileResult(filename=path)
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                source = f.read()
        except OSError as exc:
            result.parse_error = str(exc)
            result.seconds = time.perf_counter() - start
            return result
        result.lines_of_code = source.count("\n") + 1
        try:
            result.candidates = self.detect_source(source, path)
        except PhpSyntaxError as exc:
            result.parse_error = str(exc)
        except RecursionError:
            result.parse_error = "recursion limit during analysis"
        result.seconds = time.perf_counter() - start
        return result

    def detect_tree(self, root: str) -> list[FileResult]:
        """Analyze every PHP file under *root* (sorted, deterministic)."""
        results: list[FileResult] = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for name in sorted(filenames):
                if name.lower().endswith(PHP_EXTENSIONS):
                    results.append(
                        self.detect_file(os.path.join(dirpath, name)))
        return results


def generate_detector(
        class_id: str,
        sensitive_sinks: list[str | SinkSpec],
        sanitizers: list[str] = (),
        entry_points: list[str] = (),
        source_functions: list[str] = (),
        sanitizer_methods: list[str] = (),
        display_name: str | None = None,
) -> Detector:
    """The vulnerability detector generator (§III-A, sub-module 4).

    Builds a ready-to-run detector for a *new* vulnerability class from the
    user-supplied data alone.

    Args:
        class_id: short identifier, e.g. ``"nosqli"``.
        sensitive_sinks: sink names (strings are treated as plain function
            sinks; prefix with ``->`` for method sinks) or prebuilt
            :class:`SinkSpec` objects.
        sanitizers: sanitization function names.
        entry_points: *extra* superglobal names beyond the defaults.
        source_functions: functions whose return value is tainted
            (non-native entry points, e.g. WordPress helpers).
        sanitizer_methods: method names acting as sanitizers
            (e.g. ``prepare`` for ``$wpdb->prepare``).
        display_name: human-readable name for reports.

    Returns:
        A :class:`Detector` for the new class.
    """
    from repro.analysis.knowledge import parse_sink_line

    sinks: list[SinkSpec] = []
    for sink in sensitive_sinks:
        if isinstance(sink, SinkSpec):
            sinks.append(sink)
        else:
            sinks.append(parse_sink_line(sink))
    config = DetectorConfig(
        class_id=class_id,
        display_name=display_name or class_id.upper(),
        entry_points=DEFAULT_ENTRY_POINTS | frozenset(
            e.lstrip("$") for e in entry_points),
        source_functions=frozenset(f.lower().rstrip("()")
                                   for f in source_functions),
        sinks=tuple(sinks),
        sanitizers=frozenset(s.lower() for s in sanitizers),
        sanitizer_methods=frozenset(s.lower() for s in sanitizer_methods),
    )
    return Detector([config])
