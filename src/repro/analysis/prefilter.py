"""Knowledge-compiled relevance prefilter: skip files that cannot match.

Most files in a real corpus can never produce a finding: the taint
engine only *births* taint from entry-point reads and source-function
calls, and only *fires* sinks through literally-named calls (plus the
``echo``/``include``/backtick constructs) — dynamic calls like ``$f()``
lower to ``CALL_FOLD`` and can never reach a sink.  Both sides are
therefore decidable from raw bytes: a file whose include closure never
mentions a sink name **and** a source marker cannot contain a finding,
so running lex → parse → lower → taint on it is pure waste.

This module compiles every loaded knowledge catalog (sub-module classes
and armed weapons alike) into two byte-level alternation matchers and
classifies each file before any parse into three tiers:

* **sink-bearing** — the file's include closure mentions at least one
  sink name *and* at least one source marker: full pipeline.
* **dep-only** — not sink-bearing itself, but a member of some
  sink-bearing file's include closure: skipped as a scan unit; its
  exported environment and function summaries are still produced
  (lazily, exactly as before) while the including file is analyzed.
* **irrelevant** — neither: skipped entirely, reported with zero
  candidates and a line count taken from the raw bytes.

Conservatism contract (see ``docs/prefilter.md``): matching is a
superset of what the engine can act on — sink/source names are matched
case-respecting the engine's own semantics (function names folded,
superglobal names exact), pseudo-sinks map to their surface keywords,
and any *unknown* sink kind disables skipping outright.  False
positives (a file classified sink-bearing that yields nothing) cost
only the old pipeline time; false negatives are impossible by
construction.  The one observable difference: a skipped file is never
parsed, so parse diagnostics are only emitted for analyzed files —
``--no-prefilter`` restores them everywhere.

Verdicts are cached two ways: a per-process memo and, when a result
cache is attached, ``prefilter-<content-hash>`` blob entries inside the
cache's knowledge-fingerprint pack — so editing a weapon or catalog
changes the fingerprint and atomically invalidates both the compiled
matcher (memoized per fingerprint) and every stored verdict.
"""

from __future__ import annotations

import re

from repro.analysis.model import (
    SINK_ECHO,
    SINK_FUNCTION,
    SINK_INCLUDE,
    SINK_METHOD,
    SINK_SHELL,
    SINK_STATIC,
)
from repro.telemetry.stats import PrefilterStats

__all__ = [
    "TIER_SINK_BEARING",
    "TIER_DEP_ONLY",
    "TIER_IRRELEVANT",
    "KnowledgeMatcher",
    "RelevancePrefilter",
    "PrefilterStats",
    "matcher_for",
]

TIER_SINK_BEARING = "sink_bearing"
TIER_DEP_ONLY = "dep_only"
TIER_IRRELEVANT = "irrelevant"

#: surface keywords each pseudo-sink can appear as in source text.
#: ``<?=`` is the short echo tag (no ``echo`` token in the bytes);
#: the backtick is the shell-execution operator.
_PSEUDO_SINK_WORDS = {
    SINK_ECHO: ("echo", "print", "exit", "die"),
    SINK_INCLUDE: ("include", "include_once", "require", "require_once"),
}
_PSEUDO_SINK_LITERALS = {
    SINK_ECHO: (rb"<\?=",),
    SINK_SHELL: (rb"`",),
}

#: blob-cache key prefix for per-content verdicts (the surrounding pack
#: directory already encodes the knowledge fingerprint).
_VERDICT_KEY = "prefilter-"


class KnowledgeMatcher:
    """Two byte-level matchers compiled from the knowledge catalogs.

    ``verdict(raw)`` answers, from raw file bytes, whether any sink
    name and whether any source marker occurs.  Function names match
    ASCII case-insensitively (PHP function names are case-insensitive);
    entry-point names (superglobals) match exactly, like the engine's
    own variable lookup.
    """

    def __init__(self, groups) -> None:
        sink_words: set[str] = set()
        sink_literals: set[bytes] = set()
        entry_points: set[str] = set()
        source_functions: set[str] = set()
        #: set when a catalog declares a sink kind this matcher cannot
        #: pattern-ize: every file is then sink-bearing (never unsound).
        self.always_sink = False
        for group in groups:
            for cfg in getattr(group, "configs", group):
                for sink in cfg.sinks:
                    if sink.kind in (SINK_FUNCTION, SINK_METHOD,
                                     SINK_STATIC):
                        sink_words.add(sink.name.lower())
                    elif sink.kind in _PSEUDO_SINK_WORDS \
                            or sink.kind in _PSEUDO_SINK_LITERALS:
                        sink_words.update(
                            _PSEUDO_SINK_WORDS.get(sink.kind, ()))
                        sink_literals.update(
                            _PSEUDO_SINK_LITERALS.get(sink.kind, ()))
                    else:
                        self.always_sink = True
                entry_points.update(cfg.entry_points)
                source_functions.update(
                    f.lower() for f in cfg.source_functions)
        self._sink_re = self._compile_sinks(sink_words, sink_literals)
        self._source_re = self._compile_sources(entry_points,
                                                source_functions)

    @staticmethod
    def _compile_sinks(words: set[str], literals: set[bytes]):
        parts = [rb"\b(?:" + b"|".join(
            re.escape(w.encode("utf-8")) for w in sorted(words)) + rb")\b"] \
            if words else []
        parts.extend(sorted(literals))
        if not parts:
            return None
        return re.compile(b"|".join(parts), re.IGNORECASE)

    @staticmethod
    def _compile_sources(entry_points: set[str],
                         source_functions: set[str]):
        # superglobal names are case-sensitive ($_get is NOT $_GET);
        # function names fold, matching the engine's .lower() interning.
        parts = [rb"\b" + re.escape(n.encode("utf-8")) + rb"\b"
                 for n in sorted(entry_points)]
        parts.extend(rb"(?i:\b" + re.escape(f.encode("utf-8")) + rb"\b)"
                     for f in sorted(source_functions))
        if not parts:
            return None
        return re.compile(b"|".join(parts))

    def verdict(self, raw: bytes) -> tuple[bool, bool]:
        """``(mentions_sink, mentions_source)`` for one file's bytes."""
        sink = self.always_sink or (
            self._sink_re is not None
            and self._sink_re.search(raw) is not None)
        source = (self._source_re is not None
                  and self._source_re.search(raw) is not None)
        return sink, source


#: compiled matchers, one per knowledge fingerprint: arming a weapon or
#: editing a catalog changes the fingerprint and compiles a fresh one.
_MATCHERS: dict[str, KnowledgeMatcher] = {}


def matcher_for(groups, fingerprint: str) -> KnowledgeMatcher:
    """The (memoized) matcher for this knowledge fingerprint."""
    matcher = _MATCHERS.get(fingerprint)
    if matcher is None:
        matcher = _MATCHERS[fingerprint] = KnowledgeMatcher(groups)
    return matcher


class RelevancePrefilter:
    """Per-scan classifier: byte verdicts plus closure-level tiers.

    Args:
        matcher: the fingerprint-keyed :class:`KnowledgeMatcher`.
        cache: optional :class:`~repro.analysis.pipeline.ResultCache`;
            verdicts are persisted as blob entries in its pack (keyed by
            content hash; the pack directory carries the fingerprint).
        memo: optional externally-owned ``{content_hash: verdict}``
            dict, letting a warm :class:`~repro.api.Scanner` keep
            verdicts across scan cycles.
    """

    def __init__(self, matcher: KnowledgeMatcher, cache=None,
                 memo: dict | None = None) -> None:
        self.matcher = matcher
        self.cache = cache
        self.memo: dict[str, tuple[bool, bool]] = \
            memo if memo is not None else {}

    # ------------------------------------------------------------------
    def verdict(self, raw: bytes,
                content_hash: str | None = None) -> tuple[bool, bool]:
        """Classify one file's bytes, through the memo and blob cache."""
        if content_hash is None:
            return self.matcher.verdict(raw)
        got = self.memo.get(content_hash)
        if got is not None:
            return got
        if self.cache is not None:
            stored = self.cache.get_blob(_VERDICT_KEY + content_hash)
            if (isinstance(stored, tuple) and len(stored) == 2
                    and all(isinstance(v, bool) for v in stored)):
                self.memo[content_hash] = stored
                return stored
        verdict = self.matcher.verdict(raw)
        self.memo[content_hash] = verdict
        if self.cache is not None:
            self.cache.put_blob(_VERDICT_KEY + content_hash, verdict)
        return verdict

    def verdict_for_path(self, path: str,
                         content_hash: str | None = None
                         ) -> tuple[bool, bool]:
        """Classify a file by path, reading it when not memoized.

        Unreadable files come back ``(True, True)``: they run the full
        pipeline so the read error surfaces exactly as without the
        prefilter.
        """
        if content_hash is not None:
            got = self.memo.get(content_hash)
            if got is not None:
                return got
        try:
            with open(path, "rb") as f:
                raw = f.read()
        except OSError:
            return (True, True)
        return self.verdict(raw, content_hash)

    # ------------------------------------------------------------------
    def classify(self, paths, graph,
                 verdicts: dict[str, tuple[bool, bool]],
                 hashes: dict[str, str] | None = None) -> dict[str, str]:
        """Assign every path a tier from per-file verdicts + the graph.

        A file is sink-bearing iff its include closure (itself included)
        mentions both a sink and a source; closure members of
        sink-bearing files that are not themselves sink-bearing are
        dep-only; everything else is irrelevant.  Paths without a
        verdict (unreadable at classification time) are sink-bearing so
        their errors surface downstream.
        """
        hashes = hashes or {}

        def verdict_of(path: str) -> tuple[bool, bool]:
            got = verdicts.get(path)
            if got is None:
                got = self.verdict_for_path(path, hashes.get(path))
                verdicts[path] = got
            return got

        full: set[str] = set()
        for path in paths:
            sink, source = verdict_of(path)
            if graph is not None and not (sink and source):
                for dep in graph.closure(path):
                    dep_sink, dep_source = verdict_of(dep)
                    sink = sink or dep_sink
                    source = source or dep_source
                    if sink and source:
                        break
            if sink and source:
                full.add(path)
        dep_only: set[str] = set()
        if graph is not None:
            for path in full:
                dep_only.update(graph.closure(path))
            dep_only -= full
        tiers: dict[str, str] = {}
        for path in paths:
            if path in full:
                tiers[path] = TIER_SINK_BEARING
            elif path in dep_only:
                tiers[path] = TIER_DEP_ONLY
            else:
                tiers[path] = TIER_IRRELEVANT
        return tiers

    @staticmethod
    def stats_of(tiers: dict[str, str]) -> PrefilterStats:
        """Tier counts over one scan's classified paths."""
        counts = {TIER_SINK_BEARING: 0, TIER_DEP_ONLY: 0,
                  TIER_IRRELEVANT: 0}
        for tier in tiers.values():
            counts[tier] += 1
        return PrefilterStats(skipped=counts[TIER_IRRELEVANT],
                              dep_only=counts[TIER_DEP_ONLY],
                              sink_bearing=counts[TIER_SINK_BEARING])
