"""Data model of the taint analysis.

The taint analyzer tracks *taints* — records of untrusted data originating at
an entry point — through assignments, string building and function calls.
When a taint reaches a *sensitive sink* for some vulnerability class, a
:class:`CandidateVulnerability` is produced: the paper's "tree describing a
candidate vulnerable data-flow path" (§II), which both the false-positive
predictor and the code corrector consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

# path step kinds, in the order they typically appear
STEP_SOURCE = "source"          # read of an entry point
STEP_ASSIGN = "assign"          # $x = <tainted>
STEP_CONCAT = "concat"          # '...' . <tainted> or interpolation
STEP_CALL = "call"              # <tainted> passed through a function
STEP_GUARD = "guard"            # validation applied in a condition
STEP_PARAM = "param"            # entered a user function as a parameter
STEP_RETURN = "return"          # returned from a user function
STEP_SINK = "sink"              # reached the sensitive sink


@dataclass(frozen=True, slots=True)
class PathStep:
    """One hop of a tainted data-flow path.

    Attributes:
        kind: one of the ``STEP_*`` constants.
        detail: what happened — a variable name for assigns, a function
            name for calls/guards, the sink name for the final step.
        line: source line of the hop.
        file: file the hop happened in; empty means "the candidate's own
            file" (only cross-file analysis stamps foreign hops).
    """

    kind: str
    detail: str
    line: int
    file: str = ""


@dataclass(frozen=True, slots=True)
class Taint:
    """An untrusted value flowing through the program.

    Attributes:
        source: entry point description, e.g. ``$_GET['id']``.
        source_line: line where the entry point was read.
        path: hops the data took since the source (newest last).
        sanitized_for: vulnerability-class ids this value has been
            sanitized against; a sink of class C ignores taints with C here.
    """

    source: str
    source_line: int
    path: tuple[PathStep, ...] = ()
    sanitized_for: frozenset[str] = frozenset()

    def step(self, kind: str, detail: str, line: int) -> "Taint":
        """Return a copy with one more path hop appended."""
        return Taint(self.source, self.source_line,
                     self.path + (PathStep(kind, detail, line),),
                     self.sanitized_for)

    def sanitize(self, class_ids: Iterable[str], func: str,
                 line: int) -> "Taint":
        """Return a copy marked sanitized for *class_ids* (by *func*)."""
        return Taint(self.source, self.source_line,
                     self.path + (PathStep(STEP_CALL, func, line),),
                     self.sanitized_for | frozenset(class_ids))

    @property
    def passed_functions(self) -> tuple[str, ...]:
        """Names of every function the data passed through (symptom input)."""
        return tuple(s.detail for s in self.path
                     if s.kind in (STEP_CALL, STEP_GUARD))


#: A taint set: the abstract value of a variable.
TaintSet = frozenset

EMPTY: frozenset[Taint] = frozenset()


def union(*sets: frozenset[Taint]) -> frozenset[Taint]:
    """Union of taint sets (the lattice join)."""
    out: set[Taint] = set()
    for s in sets:
        out |= s
    return frozenset(out)


# ---------------------------------------------------------------------------
# sink / detector configuration
# ---------------------------------------------------------------------------

SINK_FUNCTION = "function"      # plain function call:  mysql_query($q)
SINK_METHOD = "method"          # method call:          $wpdb->query($q)
SINK_STATIC = "static"          # static call:          Db::query($q)
SINK_ECHO = "echo"              # echo/print/<?= of tainted data
SINK_INCLUDE = "include"        # include/require of tainted path
SINK_SHELL = "shell"            # backtick shell-exec with tainted data
SINK_EVAL = "eval"              # eval-like construct


@dataclass(frozen=True, slots=True)
class SinkSpec:
    """A sensitive sink for one vulnerability class.

    Attributes:
        name: function/method name (lowercase); empty for echo/include/shell.
        kind: one of the ``SINK_*`` constants.
        arg_positions: 0-based argument indices that are dangerous; ``None``
            means any argument.
        receiver_hint: for method sinks, a substring that must appear in the
            receiver expression (e.g. ``wpdb``); ``None`` matches any
            receiver.
    """

    name: str = ""
    kind: str = SINK_FUNCTION
    arg_positions: tuple[int, ...] | None = None
    receiver_hint: str | None = None


@dataclass(frozen=True)
class DetectorConfig:
    """Everything the generic taint engine needs for ONE vulnerability class.

    This is the paper's (ep, ss, san) triple (§III-A): entry points,
    sensitive sinks and sanitization functions, plus engine details such as
    method-sanitizers (``$wpdb->prepare``) and taint-returning source
    functions (WordPress's ``get_query_var`` style non-native entry points).
    """

    class_id: str
    display_name: str = ""
    entry_points: frozenset[str] = frozenset()        # superglobal names
    source_functions: frozenset[str] = frozenset()    # tainted-return funcs
    sinks: tuple[SinkSpec, ...] = ()
    sanitizers: frozenset[str] = frozenset()          # function names
    sanitizer_methods: frozenset[str] = frozenset()   # method names
    untaint_casts: frozenset[str] = frozenset({"int", "float", "bool"})

    def sink_functions(self) -> dict[str, SinkSpec]:
        return {s.name: s for s in self.sinks if s.kind == SINK_FUNCTION}

    def sink_methods(self) -> dict[str, SinkSpec]:
        return {s.name: s for s in self.sinks if s.kind == SINK_METHOD}

    def has_sink_kind(self, kind: str) -> bool:
        return any(s.kind == kind for s in self.sinks)


# ---------------------------------------------------------------------------
# analysis results
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class CandidateVulnerability:
    """A flagged data flow from an entry point to a sensitive sink.

    The taint analyzer reports these; the false positive predictor then
    decides whether each is a real vulnerability or a false alarm.

    Attributes:
        vuln_class: class id (``sqli``, ``xss``, ...).
        filename: file the sink is in.
        sink_name: the sink function/construct name (``mysql_query``,
            ``echo``, ``include`` ...).
        sink_line: line of the sink.
        entry_point: description of the source, e.g. ``$_GET['id']``.
        entry_line: line of the source read.
        path: full hop list source → sink.
        sink_kind: the ``SINK_*`` kind that matched.
        tainted_args: indices of the sink arguments that were tainted.
    """

    vuln_class: str
    filename: str
    sink_name: str
    sink_line: int
    entry_point: str
    entry_line: int
    path: tuple[PathStep, ...]
    sink_kind: str = SINK_FUNCTION
    tainted_args: tuple[int, ...] = ()
    context: str = ""

    @property
    def passed_functions(self) -> tuple[str, ...]:
        """Functions the tainted data passed through (symptom input)."""
        return tuple(s.detail for s in self.path
                     if s.kind in (STEP_CALL, STEP_GUARD))

    @property
    def guards(self) -> tuple[str, ...]:
        """Validation guards observed on the path."""
        return tuple(s.detail for s in self.path if s.kind == STEP_GUARD)

    def key(self) -> tuple:
        """Deduplication key: one report per (class, sink, source)."""
        return (self.vuln_class, self.filename, self.sink_line,
                self.sink_name, self.entry_point)

    def provenance(self, prediction=None, sanitizers: Iterable[str] = ()):
        """Explained decision trace of this candidate's path.

        See :func:`repro.telemetry.provenance.build_provenance` (imported
        lazily: provenance depends on this module).
        """
        from repro.telemetry.provenance import build_provenance
        return build_provenance(self, prediction, sanitizers)


@dataclass
class FunctionSummary:
    """Inter-procedural summary of one user-defined function.

    Attributes:
        name: lowercase function name (``class::method`` for methods).
        filename: file the function is declared in (candidate attribution
            for cross-file analysis).
        param_names: declared parameter names in order.
        returns_params: map param index -> path steps if that parameter can
            flow to the return value.
        return_sanitized_for: class ids the returned value is sanitized for
            when it derives from a parameter (a *user sanitizer*).
        param_sinks: flows parameter -> sink inside the body:
            (param index, class id, sink name, sink kind, line, steps).
        internal_candidates: entry-point flows fully inside the body.
        returned_sources: entry-point taints the function returns — the
            function acts as a taint *source* for its callers (e.g. a
            ``get()`` method reading a superglobal).
    """

    name: str
    param_names: list[str] = field(default_factory=list)
    filename: str = ""
    returns_params: dict[int, tuple[PathStep, ...]] = field(
        default_factory=dict)
    return_sanitized_for: frozenset[str] = frozenset()
    param_sinks: list[tuple[int, str, str, str, int, tuple[PathStep, ...]]] = \
        field(default_factory=list)
    internal_candidates: list[CandidateVulnerability] = field(
        default_factory=list)
    returned_sources: list[Taint] = field(default_factory=list)
