"""The code corrector (Fig. 1, box 3).

Receives the real vulnerabilities (candidates the predictor did not dismiss)
and modifies the source: the tainted argument of each sensitive sink is
wrapped in a call to the class's fix function, and the fix function itself
is inserted once at the top of the file — fixes live "in the line of the
sensitive sink, as in the original WAP" (§III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import CorrectionError
from repro.php import ast, parse, unparse
from repro.analysis.model import (
    SINK_ECHO,
    SINK_INCLUDE,
    SINK_SHELL,
    CandidateVulnerability,
)
from repro.corrector.fixes import CLASS_FIXES, builtin_fixes
from repro.corrector.templates import Fix


@dataclass(frozen=True)
class AppliedFix:
    """Record of one fix application."""

    vuln_class: str
    fix_id: str
    sink_name: str
    sink_line: int


@dataclass
class CorrectionResult:
    """Outcome of correcting one file."""

    source: str
    applied: list[AppliedFix] = field(default_factory=list)
    skipped: list[CandidateVulnerability] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.applied)


class CodeCorrector:
    """Applies fixes to PHP source given candidate vulnerabilities."""

    def __init__(self, fixes: dict[str, Fix] | None = None,
                 class_fixes: dict[str, str] | None = None) -> None:
        self.fixes = dict(builtin_fixes() if fixes is None else fixes)
        self.class_fixes = dict(CLASS_FIXES if class_fixes is None
                                else class_fixes)

    # ------------------------------------------------------------------
    def register_fix(self, vuln_class: str, fix: Fix) -> None:
        """Plug in a weapon's fix for a (possibly new) class (§III-D)."""
        self.fixes[fix.fix_id] = fix
        self.class_fixes[vuln_class] = fix.fix_id

    def fix_for(self, vuln_class: str) -> Fix | None:
        fix_id = self.class_fixes.get(vuln_class)
        return self.fixes.get(fix_id) if fix_id else None

    # ------------------------------------------------------------------
    def correct_source(self, source: str,
                       candidates: list[CandidateVulnerability],
                       filename: str = "<source>") -> CorrectionResult:
        """Return corrected source for *candidates* (real vulnerabilities).

        Unknown classes and unlocatable sinks are recorded in ``skipped``
        rather than raising — correction is best-effort per candidate.
        """
        program = parse(source, filename)
        result = CorrectionResult(source)
        needed_helpers: dict[str, Fix] = {}

        for cand in candidates:
            fix = self.fix_for(cand.vuln_class)
            if fix is None:
                result.skipped.append(cand)
                continue
            if self._apply_one(program, cand, fix):
                result.applied.append(AppliedFix(
                    cand.vuln_class, fix.fix_id, cand.sink_name,
                    cand.sink_line))
                needed_helpers[fix.fix_id] = fix
            else:
                result.skipped.append(cand)

        if result.applied:
            self._insert_helpers(program, needed_helpers)
            result.source = unparse(program)
        return result

    def correct_file(self, path: str,
                     candidates: list[CandidateVulnerability],
                     output_path: str | None = None) -> CorrectionResult:
        """Correct a file on disk (in place unless *output_path* given)."""
        with open(path, encoding="utf-8", errors="replace") as f:
            source = f.read()
        result = self.correct_source(source, candidates, path)
        if result.changed:
            with open(output_path or path, "w", encoding="utf-8") as f:
                f.write(result.source)
        return result

    # ------------------------------------------------------------------
    def _apply_one(self, program: ast.Program,
                   cand: CandidateVulnerability, fix: Fix) -> bool:
        target = self._find_sink(program, cand)
        if target is None:
            return False
        return self._wrap_target(target, cand, fix)

    @staticmethod
    def _find_sink(program: ast.Program,
                   cand: CandidateVulnerability) -> ast.Node | None:
        sink = cand.sink_name.lower()
        for node in program.walk():
            if node.line != cand.sink_line:
                continue
            if isinstance(node, (ast.FunctionCall, ast.MethodCall,
                                 ast.StaticCall)):
                name = node.name if isinstance(node.name, str) else ""
                if name.lower().lstrip("\\") == sink:
                    return node
            elif isinstance(node, ast.Echo) and sink == "echo":
                return node
            elif isinstance(node, ast.PrintExpr) and sink == "print":
                return node
            elif isinstance(node, ast.ExitExpr) and sink == "exit":
                return node
            elif isinstance(node, ast.Include) and \
                    cand.sink_kind == SINK_INCLUDE:
                return node
            elif isinstance(node, ast.ShellExec) and \
                    cand.sink_kind == SINK_SHELL:
                return node
        return None

    def _wrap_target(self, target: ast.Node,
                     cand: CandidateVulnerability, fix: Fix) -> bool:
        wrapped = False
        if isinstance(target, (ast.FunctionCall, ast.MethodCall,
                               ast.StaticCall)):
            positions = (cand.tainted_args if cand.tainted_args
                         else range(len(target.args)))
            for pos in positions:
                if pos >= len(target.args):
                    continue
                arg = target.args[pos]
                if _is_trivial(arg.value) or _already_wrapped(arg.value,
                                                              fix.fix_id):
                    continue
                arg.value = _wrap(arg.value, fix.fix_id)
                wrapped = True
        elif isinstance(target, ast.Echo):
            for i, expr in enumerate(target.exprs):
                if _is_trivial(expr) or _already_wrapped(expr, fix.fix_id):
                    continue
                target.exprs[i] = _wrap(expr, fix.fix_id)
                wrapped = True
        elif isinstance(target, (ast.PrintExpr, ast.ExitExpr,
                                 ast.Include)):
            expr = target.expr
            if expr is not None and not _is_trivial(expr) and \
                    not _already_wrapped(expr, fix.fix_id):
                target.expr = _wrap(expr, fix.fix_id)
                wrapped = True
        elif isinstance(target, ast.ShellExec):
            for i, part in enumerate(target.parts):
                if isinstance(part, ast.Literal):
                    continue
                if _already_wrapped(part, fix.fix_id):
                    continue
                target.parts[i] = _wrap(part, fix.fix_id)
                wrapped = True
        return wrapped

    def _insert_helpers(self, program: ast.Program,
                        helpers: dict[str, Fix]) -> None:
        existing = {node.name.lower() for node in program.walk()
                    if isinstance(node, ast.FunctionDecl)}
        decls: list[ast.Node] = []
        for fix_id, fix in sorted(helpers.items()):
            if fix_id.lower() in existing:
                continue
            try:
                helper_ast = parse("<?php " + fix.helper_code)
            except Exception as exc:  # pragma: no cover - helper is ours
                raise CorrectionError(
                    f"fix helper {fix_id} does not parse: {exc}") from exc
            decls.extend(n for n in helper_ast.body
                         if isinstance(n, ast.FunctionDecl))
        program.body[:0] = decls


def _is_trivial(node: ast.Node) -> bool:
    """Pure literals need no sanitization wrapper."""
    return isinstance(node, (ast.Literal, ast.ConstFetch))


def _already_wrapped(node: ast.Node, fix_id: str) -> bool:
    return isinstance(node, ast.FunctionCall) and \
        isinstance(node.name, str) and node.name.lower() == fix_id.lower()


def _wrap(node: ast.Node, fix_id: str) -> ast.FunctionCall:
    return ast.FunctionCall(fix_id, [ast.Argument(node,
                                                  line=node.line,
                                                  col=node.col)],
                            line=node.line, col=node.col)
