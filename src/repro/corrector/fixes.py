"""Builtin fixes for every vulnerability class the tool ships with.

Most are instances of the three §III-C templates; two are hand-written in
the same spirit as WAP's originals:

* ``san_write``/``san_read`` — the CS-aware output fixes, which validate
  the content against client-side code *and* (new in WAPe, §IV-B)
  URIs/hyperlinks;
* ``san_sf`` — the session-fixation fix "created from scratch": it refuses
  user-supplied session tokens.
"""

from __future__ import annotations

from repro.corrector.templates import (
    TEMPLATE_USER_SANITIZATION,
    TEMPLATE_USER_VALIDATION,
    Fix,
    php_sanitization_fix,
    user_sanitization_fix,
    user_validation_fix,
)

_SAN_WRITE_HELPER = """\
function san_write($value) {
    $patterns = array('/<script/i', '/javascript:/i', '/onerror\\s*=/i',
                      '/https?:\\/\\//i', '/<a\\s/i');
    foreach ($patterns as $pattern) {
        if (preg_match($pattern, $value)) {
            echo 'content blocked: client-side code or hyperlink detected';
            return '';
        }
    }
    return $value;
}
"""

_SAN_READ_HELPER = _SAN_WRITE_HELPER.replace("san_write", "san_read")

_SAN_SF_HELPER = """\
function san_sf($value) {
    $fromUser = false;
    foreach (array($_GET, $_POST, $_COOKIE, $_REQUEST) as $src) {
        foreach ($src as $k => $v) {
            if ($v === $value) { $fromUser = true; }
        }
    }
    if ($fromUser) {
        return '';
    }
    return $value;
}
"""


def builtin_fixes() -> dict[str, Fix]:
    """All builtin fixes, keyed by fix id."""
    fixes = [
        # query injection
        php_sanitization_fix("san_sqli", "mysql_real_escape_string",
                             "SQLI fix (PHP sanitization template)"),
        user_validation_fix("val_ldapi",
                            ("*", "(", ")", "\\", "|", "&"),
                            "LDAP filter metacharacters detected",
                            "LDAPI fix (user validation template)"),
        user_validation_fix("val_xpathi",
                            ("'", '"', "[", "]", "(", ")", "=", "/"),
                            "XPath metacharacters detected",
                            "XPathI fix (user validation template)"),
        # client side
        php_sanitization_fix("san_out", "htmlentities",
                             "XSS output fix"),
        # RCE & file
        user_sanitization_fix("san_osci",
                              (";", "|", "&", "`", "$", ">", "<"),
                              " ", "OSCI fix"),
        user_validation_fix("san_mix",
                            ("..", "/", "http://", "https://"),
                            "path traversal attempt detected",
                            "RFI/LFI/DT fix"),
        user_validation_fix("san_phpci",
                            ("$", ";", "(", ")", "`"),
                            "code injection attempt detected",
                            "PHPCI fix"),
        # weapons (§IV-C)
        php_sanitization_fix("san_nosqli", "mysql_real_escape_string",
                             "NoSQLI weapon fix (PHP sanitization "
                             "template, §IV-C1)"),
        user_sanitization_fix("san_hei", ("\r", "\n", "%0a", "%0d"),
                              " ",
                              "HI/EI weapon fix (user sanitization "
                              "template, §IV-C2)"),
        php_sanitization_fix("san_wpsqli", "esc_sql",
                             "WordPress SQLI weapon fix (§IV-C3)"),
    ]
    table = {fix.fix_id: fix for fix in fixes}
    table["san_write"] = Fix("san_write", TEMPLATE_USER_VALIDATION,
                             _SAN_WRITE_HELPER,
                             "stored-output fix extended for CS "
                             "(URI/hyperlink check, §IV-B)")
    table["san_read"] = Fix("san_read", TEMPLATE_USER_VALIDATION,
                            _SAN_READ_HELPER,
                            "read-output fix extended for CS")
    table["san_sf"] = Fix("san_sf", TEMPLATE_USER_SANITIZATION,
                          _SAN_SF_HELPER,
                          "session fixation fix (created from scratch, "
                          "§IV-B)")
    return table


#: fix ids every vulnerability class maps to (mirrors catalog fix_id).
CLASS_FIXES: dict[str, str] = {
    "sqli": "san_sqli",
    "xss": "san_out",
    "rfi": "san_mix",
    "lfi": "san_mix",
    "dt_pt": "san_mix",
    "scd": "san_read",
    "osci": "san_osci",
    "phpci": "san_phpci",
    "sf": "san_sf",
    "cs": "san_write",
    "ldapi": "val_ldapi",
    "xpathi": "val_xpathi",
    "nosqli": "san_nosqli",
    "hi": "san_hei",
    "ei": "san_hei",
    "wpsqli": "san_wpsqli",
}
