"""Code corrector: fix templates, builtin fixes, source rewriting."""

from repro.corrector.corrector import (  # noqa: F401
    AppliedFix,
    CodeCorrector,
    CorrectionResult,
)
from repro.corrector.fixes import CLASS_FIXES, builtin_fixes  # noqa: F401
from repro.corrector.templates import (  # noqa: F401
    TEMPLATE_PHP_SANITIZATION,
    TEMPLATE_USER_SANITIZATION,
    TEMPLATE_USER_VALIDATION,
    Fix,
    build_fix,
    php_sanitization_fix,
    user_sanitization_fix,
    user_validation_fix,
)

__all__ = [
    "Fix",
    "build_fix",
    "php_sanitization_fix",
    "user_sanitization_fix",
    "user_validation_fix",
    "TEMPLATE_PHP_SANITIZATION",
    "TEMPLATE_USER_SANITIZATION",
    "TEMPLATE_USER_VALIDATION",
    "builtin_fixes",
    "CLASS_FIXES",
    "CodeCorrector",
    "CorrectionResult",
    "AppliedFix",
]
