"""The three fix templates of §III-C.

A *fix* is a small PHP function inserted into the application that
sanitizes or validates the data flowing into a sensitive sink; the sink's
tainted argument is wrapped in a call to it.  Which template builds the fix
depends on what the user can provide:

* **PHP sanitization function** — the user names an existing PHP function
  that neutralizes the data for this sink (e.g. ``mysql_real_escape_string``
  for the NoSQLI weapon).  The fix simply delegates to it.
* **User sanitization** — the user lists the malicious characters and a
  neutralizer character; the fix replaces each malicious character.
* **User validation** — the user lists only the malicious characters; the
  fix detects them, issues a message and withholds the value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import FixTemplateError
from repro.php import quote_php_string

TEMPLATE_PHP_SANITIZATION = "php_sanitization"
TEMPLATE_USER_SANITIZATION = "user_sanitization"
TEMPLATE_USER_VALIDATION = "user_validation"


@dataclass(frozen=True)
class Fix:
    """A generated fix.

    Attributes:
        fix_id: the PHP function name inserted at the sink (``san_nosqli``).
        template: which template generated it.
        helper_code: PHP source of the fix function itself (inserted once
            per corrected file).
        description: human-readable summary for reports.
    """

    fix_id: str
    template: str
    helper_code: str
    description: str = ""


def _check_name(fix_id: str) -> None:
    if not fix_id or not fix_id.replace("_", "a").isalnum() \
            or fix_id[0].isdigit():
        raise FixTemplateError(f"invalid fix name: {fix_id!r}")


def php_sanitization_fix(fix_id: str, sanitization_function: str,
                         description: str = "") -> Fix:
    """Build a fix from the *PHP sanitization function* template."""
    _check_name(fix_id)
    if not sanitization_function:
        raise FixTemplateError(
            "php_sanitization template needs a sanitization function")
    helper = (
        f"function {fix_id}($value) {{\n"
        f"    return {sanitization_function}($value);\n"
        f"}}\n"
    )
    return Fix(fix_id, TEMPLATE_PHP_SANITIZATION, helper,
               description or f"sanitizes with {sanitization_function}")


def user_sanitization_fix(fix_id: str, malicious_chars: tuple[str, ...],
                          neutralizer: str = " ",
                          description: str = "") -> Fix:
    """Build a fix from the *user sanitization* template.

    Every malicious character (or substring) is replaced by *neutralizer*.
    """
    _check_name(fix_id)
    if not malicious_chars:
        raise FixTemplateError(
            "user_sanitization template needs malicious characters")
    chars = ", ".join(quote_php_string(c) for c in malicious_chars)
    helper = (
        f"function {fix_id}($value) {{\n"
        f"    $malicious = array({chars});\n"
        f"    return str_replace($malicious, "
        f"{quote_php_string(neutralizer)}, $value);\n"
        f"}}\n"
    )
    return Fix(fix_id, TEMPLATE_USER_SANITIZATION, helper,
               description or
               f"replaces {len(malicious_chars)} malicious chars with "
               f"{neutralizer!r}")


def user_validation_fix(fix_id: str, malicious_chars: tuple[str, ...],
                        message: str = "malicious characters detected",
                        description: str = "") -> Fix:
    """Build a fix from the *user validation* template.

    The fix checks for the malicious characters; on a match it issues a
    message and returns an empty value instead of the dangerous one.
    """
    _check_name(fix_id)
    if not malicious_chars:
        raise FixTemplateError(
            "user_validation template needs malicious characters")
    chars = ", ".join(quote_php_string(c) for c in malicious_chars)
    helper = (
        f"function {fix_id}($value) {{\n"
        f"    $malicious = array({chars});\n"
        f"    foreach ($malicious as $bad) {{\n"
        f"        if (strpos($value, $bad) !== false) {{\n"
        f"            echo {quote_php_string(message)};\n"
        f"            return '';\n"
        f"        }}\n"
        f"    }}\n"
        f"    return $value;\n"
        f"}}\n"
    )
    return Fix(fix_id, TEMPLATE_USER_VALIDATION, helper,
               description or
               f"rejects values containing {len(malicious_chars)} "
               f"malicious chars")


def build_fix(fix_id: str, template: str,
              sanitization_function: str | None = None,
              malicious_chars: tuple[str, ...] = (),
              neutralizer: str = " ",
              message: str = "malicious characters detected") -> Fix:
    """Template dispatcher used by the weapon generator (§III-D item 2)."""
    if template == TEMPLATE_PHP_SANITIZATION:
        if sanitization_function is None:
            raise FixTemplateError(
                "php_sanitization template needs a sanitization function")
        return php_sanitization_fix(fix_id, sanitization_function)
    if template == TEMPLATE_USER_SANITIZATION:
        return user_sanitization_fix(fix_id, malicious_chars, neutralizer)
    if template == TEMPLATE_USER_VALIDATION:
        return user_validation_fix(fix_id, malicious_chars, message)
    raise FixTemplateError(f"unknown fix template {template!r}")
