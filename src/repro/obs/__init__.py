"""The observability plane: structured logs, run ledger, profilers.

``repro.telemetry`` (PR 2) instruments a single scan *invocation*:
spans, counters and the ``--stats`` footer all die with the process.
This package is the durable layer on top of it — the pieces that let
operations questions be answered across runs and across processes:

* :mod:`repro.obs.log` — a stdlib-only JSONL structured logger with
  leveled, field-carrying events.  Every record carries the scan's run
  id (and, in service mode, the request id); pool workers buffer their
  records into per-worker segments that the parent merges at chunk
  join, so one log file tells the whole cross-process story.
* :mod:`repro.obs.ledger` — an append-only, versioned run ledger: one
  compact JSON record per scan (fingerprints, per-phase wall times,
  per-tier cache hit rates, findings digest, cpu/jobs facts).  The
  ``wape history`` subcommand renders trend tables over it and a
  rolling-baseline detector flags phase-time or hit-rate regressions.
* :mod:`repro.obs.profile` — ``wape scan --profile``: a phase-scoped
  sampling profiler emitting folded-stack (flamegraph-compatible)
  output and a top-N hot-function table, plus the renderers for the IR
  interpreter's per-opcode dispatch histogram.

Everything here is dependency-free and, like the telemetry layer, built
so the *disabled* path costs nothing: no logger means :data:`NULL_LOG`
no-ops, no ``--profile`` means the IR dispatch loop is byte-identical
to the unprofiled one.
"""

from repro.obs.ledger import (  # noqa: F401
    LEDGER_VERSION,
    Regression,
    RunLedger,
    build_record,
    default_ledger_path,
    detect_regressions,
    findings_digest,
    render_history,
)
from repro.obs.log import (  # noqa: F401
    LOG_LEVELS,
    NULL_LOG,
    JsonlLogger,
    NullLogger,
    new_run_id,
)
from repro.obs.profile import (  # noqa: F401
    SamplingProfiler,
    opcode_table,
    render_top_functions,
)

__all__ = [
    "JsonlLogger",
    "NullLogger",
    "NULL_LOG",
    "LOG_LEVELS",
    "new_run_id",
    "RunLedger",
    "LEDGER_VERSION",
    "Regression",
    "build_record",
    "default_ledger_path",
    "detect_regressions",
    "findings_digest",
    "render_history",
    "SamplingProfiler",
    "opcode_table",
    "render_top_functions",
]
