"""Profiling for ``wape scan --profile``: folded stacks + hot tables.

Two complementary views of where a scan's time goes:

* :class:`SamplingProfiler` — a background thread samples the scanning
  thread's Python stack (``sys._current_frames()``) at a fixed interval
  and aggregates the samples into **folded stacks**: one line per
  distinct stack, frames joined by ``;``, trailing sample count —
  exactly the format flamegraph tooling consumes
  (``flamegraph.pl wape-profile.folded > profile.svg``).  When a tracer
  is supplied each sample is prefixed with the telemetry phase that was
  live at sample time (``phase:scan;...``), so the flamegraph splits by
  pipeline phase for free.  Sampling reads the phase stack racily, on
  purpose: a misattributed sample at a phase boundary is noise the
  aggregate drowns out, and the scan thread pays nothing for it.
* the IR opcode histogram — gathered inside the interpreter itself
  (see ``_FileRun._run_span_profiled`` in :mod:`repro.analysis.engine`)
  and shipped through ordinary telemetry counters
  (``ir_op_count.<OP>`` / ``ir_op_ns.<OP>``) so the existing
  cross-process counter merge aggregates workers for free;
  :func:`opcode_table` renders them.

Both are enabled only under ``--profile``; without it neither the
sampler thread nor the per-opcode timing exists.
"""

from __future__ import annotations

import sys
import threading
import time


def _frame_name(frame) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    qualname = getattr(code, "co_qualname", code.co_name)
    return f"{module}.{qualname}"


class SamplingProfiler:
    """Periodic stack sampler for one target thread.

    Args:
        interval: seconds between samples (default 2 ms ≈ 500 Hz).
        tracer: optional :class:`repro.telemetry.Tracer` whose open
            span's phase prefixes each sample.

    Usage::

        profiler = SamplingProfiler(tracer=telemetry.tracer)
        profiler.start()          # samples the *calling* thread
        ... run the scan ...
        profiler.stop()
        profiler.write_folded("wape-profile.folded")
    """

    def __init__(self, interval: float = 0.002, tracer=None) -> None:
        self.interval = interval
        self.tracer = tracer
        self.samples: dict[str, int] = {}
        self._target_ident: int | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin sampling the calling thread until :meth:`stop`."""
        if self._thread is not None:
            return
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name="wape-profiler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _current_phase(self) -> str | None:
        tracer = self.tracer
        if tracer is None:
            return None
        try:
            stack = tracer._stack
            return stack[-1].phase if stack else None
        except Exception:
            return None  # racy read by design; any torn state is skipped

    def _run(self) -> None:
        interval = self.interval
        samples = self.samples
        ident = self._target_ident
        while not self._stop.wait(interval):
            frame = sys._current_frames().get(ident)
            if frame is None:
                continue
            names: list[str] = []
            while frame is not None:
                names.append(_frame_name(frame))
                frame = frame.f_back
            names.reverse()  # folded format runs root -> leaf
            phase = self._current_phase()
            if phase:
                names.insert(0, f"phase:{phase}")
            key = ";".join(names)
            samples[key] = samples.get(key, 0) + 1

    # ------------------------------------------------------------------
    @property
    def total_samples(self) -> int:
        return sum(self.samples.values())

    def folded_lines(self) -> list[str]:
        return [f"{stack} {count}"
                for stack, count in sorted(self.samples.items())]

    def write_folded(self, path: str) -> None:
        """Write the aggregate as flamegraph-compatible folded stacks."""
        with open(path, "w", encoding="utf-8") as f:
            for line in self.folded_lines():
                f.write(line + "\n")


def render_top_functions(samples: dict[str, int], top: int = 15) -> str:
    """A top-N hot-function table from folded-stack samples.

    *self* counts samples where the function was the leaf (executing);
    *total* counts samples where it appeared anywhere on the stack
    (counted once per stack, however often it recursed).
    """
    total_samples = sum(samples.values())
    if not total_samples:
        return "no samples collected"
    self_counts: dict[str, int] = {}
    total_counts: dict[str, int] = {}
    for stack, count in samples.items():
        frames = stack.split(";")
        leaf = frames[-1]
        self_counts[leaf] = self_counts.get(leaf, 0) + count
        for name in set(frames):
            if name.startswith("phase:"):
                continue
            total_counts[name] = total_counts.get(name, 0) + count
    ranked = sorted(total_counts,
                    key=lambda n: (-self_counts.get(n, 0),
                                   -total_counts[n], n))[:top]
    width = max((len(n) for n in ranked), default=8)
    lines = [f"{'function':<{width}} {'self%':>7} {'total%':>7} "
             f"{'samples':>8}",
             "-" * (width + 26)]
    for name in ranked:
        self_n = self_counts.get(name, 0)
        lines.append(f"{name:<{width}} "
                     f"{self_n * 100 / total_samples:>6.1f}% "
                     f"{total_counts[name] * 100 / total_samples:>6.1f}% "
                     f"{self_n:>8}")
    lines.append(f"({total_samples} samples)")
    return "\n".join(lines)


def opcode_table(counters: dict, top: int = 15) -> str:
    """Render the IR interpreter's per-opcode dispatch histogram.

    *counters* is the telemetry counter mapping; the interpreter flushes
    ``ir_op_count.<OP>`` (dispatches) and ``ir_op_ns.<OP>``
    (cumulative nanoseconds — control-flow opcodes include the time of
    the spans they drive, see ``docs/ir.md``).
    """
    rows = []
    for name, count in counters.items():
        if not name.startswith("ir_op_count."):
            continue
        op = name[len("ir_op_count."):]
        ns = counters.get(f"ir_op_ns.{op}", 0)
        rows.append((op, int(count), int(ns)))
    if not rows:
        return "no opcode samples (scan ran without --profile?)"
    rows.sort(key=lambda r: (-r[2], -r[1], r[0]))
    total_ns = sum(r[2] for r in rows) or 1
    width = max(max(len(r[0]) for r in rows), 6)
    lines = [f"{'opcode':<{width}} {'count':>10} {'time':>10} "
             f"{'time%':>6} {'ns/op':>8}",
             "-" * (width + 38)]
    for op, count, ns in rows[:top]:
        lines.append(f"{op:<{width}} {count:>10} "
                     f"{ns / 1e9:>9.3f}s "
                     f"{ns * 100 / total_ns:>5.1f}% "
                     f"{ns / count if count else 0:>8.0f}")
    if len(rows) > top:
        rest_count = sum(r[1] for r in rows[top:])
        rest_ns = sum(r[2] for r in rows[top:])
        lines.append(f"{'(other)':<{width}} {rest_count:>10} "
                     f"{rest_ns / 1e9:>9.3f}s "
                     f"{rest_ns * 100 / total_ns:>5.1f}% {'':>8}")
    return "\n".join(lines)
