"""The persistent run ledger: one compact record per scan, forever.

Telemetry answers "where did *this* scan's time go"; the ledger answers
"is that getting worse".  Every ``wape scan`` of a directory target
appends one JSON line — run id, config fingerprint, cpu/jobs facts,
per-phase wall times, per-tier cache hit rates, findings count + digest
— to an append-only JSONL file (``--ledger``, default
``<cache-dir>/ledger.jsonl``).  Records are versioned
(:data:`LEDGER_VERSION`) and loaders skip lines they cannot parse, so a
ledger survives partial writes and future format growth.

Two consumers:

* ``wape history`` renders trend tables over the ledger and, with
  ``--check``, runs :func:`detect_regressions` — a rolling-baseline
  detector that compares the newest record against the median of the
  previous same-configuration runs and flags phase-time or hit-rate
  regressions beyond a tolerance.
* ``make bench-check`` (CI) scans a fixed corpus, appends to a scratch
  ledger, and fails the build when the detector fires — converting the
  repo's benchmark story from one-off JSON files into a durable,
  regression-gated trajectory.

The findings digest is a SHA-256 over the sorted candidate dedup keys:
two scans that agree on every finding produce byte-identical digests,
which is both the determinism oracle ("same config re-run ⇒ same
digest") and a cheap drift alarm ("digest changed but no code did").
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass

#: bump when the record layout changes meaning; loaders keep accepting
#: older versions (missing keys default) but never newer ones silently.
LEDGER_VERSION = 1

#: how many prior same-configuration records the rolling baseline uses.
BASELINE_WINDOW = 5

#: phase-time regressions below this absolute delta are noise, not news.
MIN_ABS_SECONDS = 0.05


def default_ledger_path(cache_dir: str) -> str:
    """Where the ledger lives when ``--ledger`` is not given."""
    return os.path.join(cache_dir, "ledger.jsonl")


def findings_digest(outcomes, fingerprints=()) -> str:
    """SHA-256 over the sorted candidate dedup keys of a report.

    Stable across runs, orderings and processes: the key
    (:meth:`~repro.analysis.model.CandidateVulnerability.key`) is pure
    detection identity — class, file, sink line/name, entry point.
    *fingerprints* (the report's v3 stable finding fingerprints, when
    the caller has them) are folded in sorted, so the digest also
    certifies the identity layer the baseline diff and SARIF exports
    are built on — a fingerprint-algorithm drift flips the digest even
    when the raw candidate set did not move.
    """
    keys = sorted(repr(o.candidate.key()) for o in outcomes)
    material = "\n".join(keys)
    fps = sorted(fp for fp in fingerprints if fp)
    if fps:
        material += "\x00" + "\n".join(fps)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _cache_entry(hits: int, misses: int, puts: int = 0) -> dict:
    probes = hits + misses
    return {"hits": hits, "misses": misses, "puts": puts,
            "hit_rate": round(hits / probes, 4) if probes else None}


def build_record(report, run_id: str, fingerprint: str,
                 jobs: int, seconds: float,
                 target: str | None = None,
                 mode: str = "batch") -> dict:
    """One ledger record for a finished scan.

    Args:
        report: the run's :class:`~repro.tool.report.AnalysisReport`.
        run_id: the scan's correlated run id (shared with the log).
        fingerprint: the knowledge/config fingerprint
            (:func:`~repro.analysis.pipeline.config_fingerprint`).
        jobs: the *resolved* worker count the scan ran with.
        seconds: wall time of the whole scan call.
        target: scanned root; defaults to ``report.target``.
        mode: how the scan was driven — ``"batch"`` (one ``wape scan``)
            or ``"watch"`` (an incremental ``wape watch`` cycle).
            Regression baselines never mix modes: a warm watch cycle
            must not make a cold batch scan look like a regression.

    Phase times and the AST/summary tiers are included when the run had
    telemetry (they ride on ``report.stats``); the result-cache tier is
    always present because the cache counts independently of telemetry.
    """
    cpu_count = os.cpu_count() or 1
    stats = report.stats
    phases: dict[str, float] = {}
    if stats is not None:
        phases = {name: round(secs, 6)
                  for name, secs in stats.wall_phases}
    caches: dict[str, dict | None] = {"result": None, "ast": None,
                                      "summary": None}
    cache = report.cache
    if cache is not None:
        caches["result"] = _cache_entry(cache.hits, cache.misses,
                                        cache.puts)
    if stats is not None:
        if stats.ast_cache_hits or stats.ast_cache_misses \
                or stats.ast_cache_puts:
            caches["ast"] = _cache_entry(stats.ast_cache_hits,
                                         stats.ast_cache_misses,
                                         stats.ast_cache_puts)
        if stats.summary_cache_hits or stats.summary_cache_misses \
                or stats.summary_cache_puts:
            caches["summary"] = _cache_entry(stats.summary_cache_hits,
                                             stats.summary_cache_misses,
                                             stats.summary_cache_puts)
    outcomes = report.outcomes
    from repro.tool.report import report_fingerprints
    fingerprints = report_fingerprints(report.to_dict())
    # like the result cache, prefilter counts are telemetry-independent
    prefilter = getattr(report, "prefilter", None)
    return {
        "version": LEDGER_VERSION,
        "run_id": run_id,
        "ts": round(time.time(), 3),
        "target": target if target is not None else report.target,
        "tool": report.tool_version,
        "mode": mode,
        "fingerprint": fingerprint,
        "cpu_count": cpu_count,
        "jobs": jobs,
        "jobs_capped_by_cpu": jobs >= cpu_count,
        "files": report.total_files,
        "lines": report.total_lines,
        "seconds": round(seconds, 6),
        "candidates": len(outcomes),
        "real": len(report.real_vulnerabilities),
        "predicted_fp": len(report.predicted_false_positives),
        "parse_errors": len(report.parse_errors),
        "parse_warnings": len(report.parse_warnings),
        "phases": phases,
        "caches": caches,
        "prefilter": prefilter.to_dict() if prefilter is not None
        else None,
        "findings": {"count": len(outcomes),
                     "digest": findings_digest(outcomes, fingerprints)},
    }


class RunLedger:
    """Append-only JSONL store of scan records."""

    def __init__(self, path: str) -> None:
        self.path = path

    def append(self, record: dict) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(json.dumps(record, sort_keys=True) + "\n")

    def load(self) -> list[dict]:
        """Every parseable record, oldest first (bad lines skipped)."""
        records: list[dict] = []
        try:
            with open(self.path, encoding="utf-8") as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn write or hand edit: skip, keep going
                    if isinstance(record, dict) \
                            and record.get("version", 0) <= LEDGER_VERSION:
                        records.append(record)
        except FileNotFoundError:
            pass
        return records


# ---------------------------------------------------------------------------
# rolling-baseline regression detection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Regression:
    """One flagged metric of the newest ledger record."""

    run_id: str
    metric: str
    baseline: float
    current: float
    kind: str  # "time" (higher is worse) or "rate" (lower is worse)

    def describe(self) -> str:
        if self.kind == "time":
            ratio = self.current / self.baseline if self.baseline else 0.0
            return (f"{self.metric}: {self.current:.3f}s vs baseline "
                    f"{self.baseline:.3f}s ({ratio:.2f}x)")
        return (f"{self.metric}: {self.current * 100:.1f}% vs baseline "
                f"{self.baseline * 100:.1f}%")


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _comparable(latest: dict, record: dict) -> bool:
    """Prior records count toward the baseline only when the scan setup
    matched: same target, knowledge fingerprint, worker count and scan
    mode (a ~30ms warm watch cycle is not a baseline for a cold batch
    scan; records from before the ``mode`` field default to batch)."""
    return (record.get("target") == latest.get("target")
            and record.get("fingerprint") == latest.get("fingerprint")
            and record.get("jobs") == latest.get("jobs")
            and record.get("mode", "batch") == latest.get("mode", "batch"))


def detect_regressions(records: list[dict],
                       tolerance: float = 0.5,
                       rate_tolerance: float = 0.15,
                       window: int = BASELINE_WINDOW,
                       min_seconds: float = MIN_ABS_SECONDS
                       ) -> list[Regression]:
    """Flag where the newest record regressed against its own history.

    The baseline for each metric is the **median** of the previous (up
    to *window*) records with the same target/fingerprint/jobs — the
    median shrugs off one noisy historical run the way a mean cannot.
    A time metric is flagged when it exceeds baseline × (1 + tolerance)
    AND by at least *min_seconds* absolute (tiny phases jitter in
    relative terms); a hit rate is flagged when it drops more than
    *rate_tolerance* below baseline.  Fewer than two comparable prior
    records means no verdict: an empty list.
    """
    if len(records) < 3:
        return []
    latest = records[-1]
    prior = [r for r in records[:-1] if _comparable(latest, r)][-window:]
    if len(prior) < 2:
        return []
    out: list[Regression] = []
    run_id = str(latest.get("run_id", "?"))

    def check_time(metric: str, current, values: list[float]) -> None:
        if not isinstance(current, (int, float)) or len(values) < 2:
            return
        baseline = _median(values)
        if current > baseline * (1.0 + tolerance) \
                and current - baseline > min_seconds:
            out.append(Regression(run_id, metric, baseline,
                                  float(current), "time"))

    check_time("seconds", latest.get("seconds"),
               [r["seconds"] for r in prior
                if isinstance(r.get("seconds"), (int, float))])
    for phase, current in (latest.get("phases") or {}).items():
        values = [r["phases"][phase] for r in prior
                  if isinstance((r.get("phases") or {}).get(phase),
                                (int, float))]
        check_time(f"phase:{phase}", current, values)

    for tier in ("result", "ast", "summary"):
        entry = (latest.get("caches") or {}).get(tier)
        if not isinstance(entry, dict) \
                or not isinstance(entry.get("hit_rate"), (int, float)):
            continue
        values = []
        for r in prior:
            prev = (r.get("caches") or {}).get(tier)
            if isinstance(prev, dict) \
                    and isinstance(prev.get("hit_rate"), (int, float)):
                values.append(float(prev["hit_rate"]))
        if len(values) < 2:
            continue
        baseline = _median(values)
        current = float(entry["hit_rate"])
        if current < baseline - rate_tolerance:
            out.append(Regression(run_id, f"cache:{tier}:hit_rate",
                                  baseline, current, "rate"))

    # a collapsing prefilter skip rate means the classifier stopped
    # skipping (e.g. an over-broad pattern) — the scan silently slows
    # down while findings stay identical, so only this gate notices
    entry = latest.get("prefilter")
    if isinstance(entry, dict) \
            and isinstance(entry.get("skip_rate"), (int, float)):
        values = []
        for r in prior:
            prev = r.get("prefilter")
            if isinstance(prev, dict) \
                    and isinstance(prev.get("skip_rate"), (int, float)):
                values.append(float(prev["skip_rate"]))
        if len(values) >= 2:
            baseline = _median(values)
            current = float(entry["skip_rate"])
            if current < baseline - rate_tolerance:
                out.append(Regression(run_id, "prefilter:skip_rate",
                                      baseline, current, "rate"))
    return out


# ---------------------------------------------------------------------------
# trend rendering (`wape history`)
# ---------------------------------------------------------------------------

def _fmt_rate(entry: dict | None) -> str:
    if not isinstance(entry, dict) or entry.get("hit_rate") is None:
        return "-"
    return f"{entry['hit_rate'] * 100:.0f}%"


def render_history(records: list[dict], limit: int = 20) -> str:
    """A fixed-width trend table over the newest *limit* records."""
    if not records:
        return "ledger is empty"
    rows = records[-limit:]
    header = (f"{'run':<24} {'when':<16} {'files':>5} {'secs':>8} "
              f"{'scan':>8} {'res$':>5} {'sum$':>5} {'skip%':>5} "
              f"{'cand':>5} {'jobs':>4}  digest")
    lines = [header, "-" * len(header)]
    for r in rows:
        when = time.strftime("%m-%d %H:%M:%S",
                             time.localtime(r.get("ts", 0)))
        caches = r.get("caches") or {}
        phases = r.get("phases") or {}
        scan = phases.get("scan")
        digest = (r.get("findings") or {}).get("digest", "")
        prefilter = r.get("prefilter")
        skip = "-"
        if isinstance(prefilter, dict) \
                and isinstance(prefilter.get("skip_rate"), (int, float)):
            skip = f"{prefilter['skip_rate'] * 100:.0f}%"
        lines.append(
            f"{str(r.get('run_id', '?'))[:24]:<24} {when:<16} "
            f"{r.get('files', 0):>5} {r.get('seconds', 0.0):>8.3f} "
            f"{(f'{scan:.3f}' if isinstance(scan, (int, float)) else '-'):>8} "
            f"{_fmt_rate(caches.get('result')):>5} "
            f"{_fmt_rate(caches.get('summary')):>5} "
            f"{skip:>5} "
            f"{r.get('candidates', 0):>5} "
            f"{r.get('jobs', 1):>4}  {digest[:12]}")
    return "\n".join(lines)
