"""Structured JSONL logging with cross-process segment merging.

One scan produces events in several processes: the parent (discovery,
include resolution, cache bookkeeping, worker faults) and every pool
worker (per-file parse errors, recovery warnings, chunk completions).
:class:`JsonlLogger` covers both sides with one class:

* **Sink mode** (a ``path`` or ``stream`` is given) — each event is one
  JSON object per line, written immediately under a lock.  This is the
  parent-side logger the CLI builds for ``--log``.
* **Segment mode** (no sink) — events are buffered in memory;
  :meth:`drain` serializes and clears them, stamping the worker pid.
  Analysis workers run in this mode and ship their segment back with
  each chunk result; the parent folds the records into its own log with
  :meth:`emit_record` — the exact pattern the span tracer already uses
  (:meth:`repro.telemetry.Tracer.drain` / ``merge``).

Every record carries ``ts``, ``level``, ``event`` plus any bound fields
(:meth:`bind`) — the scan's ``run_id`` above all, and the service's
``request_id`` in daemon mode — so one grep over the merged file follows
one logical run across every process that touched it.

The disabled default :data:`NULL_LOG` is a shared no-op: hot paths guard
on ``log.enabled`` and a scan without ``--log`` performs no logging
calls at all.
"""

from __future__ import annotations

import json
import os
import threading
import time

#: level name -> numeric threshold (stdlib-compatible values).
LOG_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def new_run_id() -> str:
    """A unique, sortable scan run id (``run-<utc stamp>-<nonce>``)."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"run-{stamp}-{os.urandom(4).hex()}"


class JsonlLogger:
    """Leveled, field-structured JSONL logger (see module docstring).

    Args:
        path: append events to this file (opened lazily, line-buffered).
        stream: write events to an open text stream instead.
        level: minimum level recorded (``"debug"``/``"info"``/
            ``"warning"``/``"error"``).
        run_id: bound onto every record when given (shorthand for
            ``bind(run_id=...)``).
        fields: extra fields bound onto every record.

    With neither *path* nor *stream* the logger runs in segment mode:
    records accumulate in :attr:`records` until :meth:`drain`.
    """

    enabled = True

    def __init__(self, path: str | None = None, stream=None,
                 level: str = "info", run_id: str | None = None,
                 fields: dict | None = None) -> None:
        self.level = level
        self._threshold = LOG_LEVELS.get(level, LOG_LEVELS["info"])
        self._path = path
        self._stream = stream
        self._own_stream = False
        self._lock = threading.Lock()
        self.records: list[dict] = []
        self.bound: dict = dict(fields or {})
        if run_id is not None:
            self.bound["run_id"] = run_id

    # ------------------------------------------------------------------
    def bind(self, **fields) -> "JsonlLogger":
        """A child logger sharing this sink with extra bound fields."""
        child = JsonlLogger.__new__(JsonlLogger)
        child.level = self.level
        child._threshold = self._threshold
        child._path = None
        child._stream = None
        child._own_stream = False
        child._lock = self._lock
        child.records = self.records
        child.bound = {**self.bound, **fields}
        # children write through the parent's sink, whatever it is
        child._sink_of = self._sink_of if hasattr(self, "_sink_of") \
            else self
        return child

    @property
    def _sink(self):
        owner = getattr(self, "_sink_of", self)
        if owner._stream is None and owner._path is not None:
            owner._stream = open(owner._path, "a", encoding="utf-8")
            owner._own_stream = True
        return owner._stream

    # ------------------------------------------------------------------
    def log(self, level: str, event: str, **fields) -> None:
        if LOG_LEVELS.get(level, 0) < self._threshold:
            return
        record = {"ts": round(time.time(), 6), "level": level,
                  "event": event}
        record.update(self.bound)
        record.update(fields)
        self.emit_record(record)

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)

    def emit_record(self, record: dict) -> None:
        """File one already-built record (the worker-merge entry point).

        Unlike :meth:`log`, no level filtering is applied: a record the
        worker deemed loggable stays in the merged log.
        """
        with self._lock:
            sink = self._sink
            if sink is None:
                self.records.append(record)
            else:
                sink.write(json.dumps(record, sort_keys=True,
                                      default=str) + "\n")
                sink.flush()

    # ------------------------------------------------------------------
    # cross-process support
    # ------------------------------------------------------------------
    def drain(self, worker: int | None = None) -> list[dict]:
        """Serialize and clear buffered records (segment-mode workers).

        Each record is stamped with the draining worker's pid so the
        merged log attributes events to the process that produced them.
        """
        with self._lock:
            records, self.records[:] = list(self.records), []
        if worker is not None:
            for record in records:
                record.setdefault("worker", worker)
        return records

    def merge(self, records: list[dict] | None) -> None:
        """Fold a drained worker segment into this log, in order."""
        for record in records or ():
            self.emit_record(record)

    def close(self) -> None:
        owner = getattr(self, "_sink_of", self)
        if owner._own_stream and owner._stream is not None:
            owner._stream.close()
            owner._stream = None
            owner._own_stream = False


class NullLogger:
    """Shared do-nothing logger (the disabled default)."""

    enabled = False
    level = "info"
    records: list = []
    bound: dict = {}

    def bind(self, **fields) -> "NullLogger":
        return self

    def log(self, level: str, event: str, **fields) -> None:
        pass

    def debug(self, event: str, **fields) -> None:
        pass

    def info(self, event: str, **fields) -> None:
        pass

    def warning(self, event: str, **fields) -> None:
        pass

    def error(self, event: str, **fields) -> None:
        pass

    def emit_record(self, record: dict) -> None:
        pass

    def drain(self, worker: int | None = None) -> list:
        return []

    def merge(self, records) -> None:
        pass

    def close(self) -> None:
        pass


NULL_LOG = NullLogger()
