"""The three detector sub-modules of Fig. 2 and their class-specific
refinements.

§III-A: each sub-module is fed entry points, sensitive sinks and
sanitization functions, and owns "specific characteristics" of its classes.
The one genuinely class-specific characteristic in this reproduction is the
RFI/LFI split: both fire on tainted ``include``-family sinks, and the
sub-module classifies each report by the *shape* of the tainted path —
an include target concatenated with literal path fragments is a local-file
inclusion, a fully attacker-controlled target is a remote-file inclusion.
"""

from __future__ import annotations

from repro.analysis.detector import Detector
from repro.analysis.model import CandidateVulnerability
from repro.analysis.pipeline import split_rfi_lfi
from repro.vulnerabilities.classes import (
    SUBMODULE_CLIENT_SIDE,
    SUBMODULE_QUERY,
    SUBMODULE_RCE_FILE,
    VulnClassInfo,
    VulnRegistry,
)


class SubModule:
    """A group of vulnerability classes analyzed together.

    Wraps a :class:`~repro.analysis.detector.Detector` over the group's
    configurations and applies class-specific refinement to the raw
    candidates.
    """

    def __init__(self, name: str, infos: list[VulnClassInfo]) -> None:
        self.name = name
        self.infos = list(infos)
        configs = [info.config for info in infos if info.config.sinks
                   or info.config.source_functions]
        #: whether this group applies the RFI/LFI shape refinement
        self.refines_lfi = any(info.class_id == "lfi" for info in infos)
        self.detector = Detector(configs) if configs else None

    @property
    def class_ids(self) -> list[str]:
        return [info.class_id for info in self.infos]

    def detect_source(self, source: str, filename: str = "<source>"
                      ) -> list[CandidateVulnerability]:
        if self.detector is None:
            return []
        return self.refine(self.detector.detect_source(source, filename))

    def refine(self, candidates: list[CandidateVulnerability]
               ) -> list[CandidateVulnerability]:
        """Apply class-specific post-processing to raw engine reports."""
        if not self.refines_lfi:
            return candidates
        return [self._split_rfi_lfi(c) for c in candidates]

    # the shape-based RFI/LFI classification lives in the scan pipeline
    # (shared with the fused detector); kept as a method for callers
    _split_rfi_lfi = staticmethod(split_rfi_lfi)


def build_submodules(registry: VulnRegistry) -> dict[str, SubModule]:
    """Instantiate the three Fig. 2 sub-modules from a registry.

    Weapon-origin classes are not included here — weapons are separate
    detectors plugged in next to the sub-modules (§III-D).
    """
    out: dict[str, SubModule] = {}
    for name in (SUBMODULE_RCE_FILE, SUBMODULE_CLIENT_SIDE,
                 SUBMODULE_QUERY):
        infos = registry.by_submodule(name)
        if infos:
            out[name] = SubModule(name, infos)
    return out
