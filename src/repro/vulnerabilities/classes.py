"""Vulnerability class registry.

Each of the 15 classes the tool handles is described by a
:class:`VulnClassInfo`: its detector configuration (the ep/ss/san triple),
which Fig. 2 sub-module owns it, whether it shipped with WAP v2.1 or was
added in WAPe (via sub-module reuse or via a weapon), and the data the code
corrector needs to build its fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.model import DetectorConfig

# sub-module names (Fig. 2)
SUBMODULE_RCE_FILE = "rce_file_injection"
SUBMODULE_CLIENT_SIDE = "client_side_injection"
SUBMODULE_QUERY = "query_injection"
SUBMODULE_WEAPON = "weapon"

# how the class entered the tool
ORIGIN_V21 = "wap-v2.1"            # one of the original eight
ORIGIN_SUBMODULE = "wape-submodule"  # §IV-B: reused sub-modules
ORIGIN_WEAPON = "wape-weapon"        # §IV-C: generated weapon


@dataclass(frozen=True)
class VulnClassInfo:
    """Static metadata for one vulnerability class.

    Attributes:
        class_id: machine id (``sqli``).
        display_name: human name ("SQL injection").
        table_label: the label used in the paper's tables ("SQLI").
        submodule: owning Fig. 2 sub-module.
        origin: one of the ``ORIGIN_*`` constants.
        config: the detector configuration (ep/ss/san).
        fix_id: name of the fix the corrector applies (``san_sqli``).
        malicious_chars: characters an attacker needs, used by the
            user-sanitization / user-validation fix templates.
        report_group: column this class is counted under in Table VI/VII
            ("Files" merges DT & RFI, LFI).
    """

    class_id: str
    display_name: str
    table_label: str
    submodule: str
    origin: str
    config: DetectorConfig
    fix_id: str = ""
    malicious_chars: tuple[str, ...] = ()
    report_group: str = ""

    def group(self) -> str:
        return self.report_group or self.table_label


@dataclass
class VulnRegistry:
    """A mutable collection of vulnerability classes (the tool's loadout)."""

    classes: dict[str, VulnClassInfo] = field(default_factory=dict)

    def add(self, info: VulnClassInfo) -> None:
        if info.class_id in self.classes:
            raise ValueError(f"duplicate class {info.class_id}")
        self.classes[info.class_id] = info

    def get(self, class_id: str) -> VulnClassInfo:
        return self.classes[class_id]

    def __contains__(self, class_id: str) -> bool:
        return class_id in self.classes

    def __iter__(self):
        return iter(self.classes.values())

    def __len__(self) -> int:
        return len(self.classes)

    def configs(self) -> list[DetectorConfig]:
        return [info.config for info in self.classes.values()]

    def by_submodule(self, submodule: str) -> list[VulnClassInfo]:
        return [info for info in self.classes.values()
                if info.submodule == submodule]

    def by_origin(self, origin: str) -> list[VulnClassInfo]:
        return [info for info in self.classes.values()
                if info.origin == origin]
