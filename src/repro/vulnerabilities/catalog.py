"""The concrete ep/ss/san catalogs for all 15 vulnerability classes.

The eight original classes mirror WAP v2.1 (§II); the four sub-module
extensions use exactly the sensitive sinks of Table IV; the weapon classes
(NoSQLI, HI+EI, WordPress SQLI) use the configurations of §IV-C.

Everything here is data.  The catalogs can be exported to / reloaded from
the external ep/ss/san text files via :mod:`repro.analysis.knowledge`, which
is what lets users extend the tool "without recompiling" (§III-A).
"""

from __future__ import annotations

from repro.analysis.detector import DEFAULT_ENTRY_POINTS
from repro.analysis.model import (
    SINK_ECHO,
    SINK_INCLUDE,
    SINK_METHOD,
    SINK_SHELL,
    DetectorConfig,
    SinkSpec,
)
from repro.vulnerabilities.classes import (
    ORIGIN_SUBMODULE,
    ORIGIN_V21,
    ORIGIN_WEAPON,
    SUBMODULE_CLIENT_SIDE,
    SUBMODULE_QUERY,
    SUBMODULE_RCE_FILE,
    SUBMODULE_WEAPON,
    VulnClassInfo,
    VulnRegistry,
)

EP = DEFAULT_ENTRY_POINTS

#: database read functions whose results WAP treats as tainted for
#: *stored* XSS (data previously written by an attacker).
DB_READ_SOURCES = frozenset({
    "mysql_fetch_array", "mysql_fetch_assoc", "mysql_fetch_row",
    "mysql_fetch_object", "mysql_result",
    "mysqli_fetch_array", "mysqli_fetch_assoc", "mysqli_fetch_row",
    "mysqli_fetch_object",
    "pg_fetch_array", "pg_fetch_assoc", "pg_fetch_row", "pg_fetch_object",
    "sqlite_fetch_array", "sqlite_fetch_all",
})


def _f(name: str, *args: int) -> SinkSpec:
    """A plain function sink, optionally restricted to argument indices."""
    return SinkSpec(name, arg_positions=tuple(args) if args else None)


# ---------------------------------------------------------------------------
# the original eight classes (WAP v2.1)
# ---------------------------------------------------------------------------

def sqli_info() -> VulnClassInfo:
    config = DetectorConfig(
        class_id="sqli",
        display_name="SQL injection",
        entry_points=EP,
        sinks=(
            _f("mysql_query", 0), _f("mysql_unbuffered_query", 0),
            _f("mysql_db_query", 1),
            _f("mysqli_query", 1), _f("mysqli_real_query", 1),
            _f("mysqli_master_query", 1), _f("mysqli_multi_query", 1),
            _f("pg_query", 1), _f("pg_send_query", 1),
            _f("mssql_query", 0), _f("odbc_exec", 1), _f("odbc_execute", 1),
            _f("sqlite_query", 1), _f("sqlite_exec", 1),
            _f("db2_exec", 1),
        ),
        sanitizers=frozenset({
            "mysql_real_escape_string", "mysql_escape_string",
            "mysqli_real_escape_string", "mysqli_escape_string",
            "pg_escape_string", "pg_escape_literal",
            "sqlite_escape_string", "addslashes", "san_sqli",
        }),
    )
    return VulnClassInfo("sqli", "SQL injection", "SQLI",
                         SUBMODULE_QUERY, ORIGIN_V21, config,
                         fix_id="san_sqli",
                         malicious_chars=("'", '"', "\\", ";", "-", "#"))


def xss_info() -> VulnClassInfo:
    config = DetectorConfig(
        class_id="xss",
        display_name="Cross-site scripting",
        entry_points=EP,
        source_functions=DB_READ_SOURCES,  # stored XSS
        sinks=(
            SinkSpec("", SINK_ECHO),
            _f("printf"), _f("vprintf"),
        ),
        sanitizers=frozenset({
            "htmlentities", "htmlspecialchars", "strip_tags",
            "urlencode", "rawurlencode", "filter_input", "san_out",
        }),
    )
    return VulnClassInfo("xss", "Cross-site scripting", "XSS",
                         SUBMODULE_CLIENT_SIDE, ORIGIN_V21, config,
                         fix_id="san_out",
                         malicious_chars=("<", ">", '"', "'", "&"))


def rfi_info() -> VulnClassInfo:
    config = DetectorConfig(
        class_id="rfi",
        display_name="Remote file inclusion",
        entry_points=EP,
        sinks=(SinkSpec("", SINK_INCLUDE),),
        sanitizers=frozenset({"basename", "san_mix"}),
    )
    return VulnClassInfo("rfi", "Remote file inclusion", "RFI",
                         SUBMODULE_RCE_FILE, ORIGIN_V21, config,
                         fix_id="san_mix", report_group="Files",
                         malicious_chars=("/", ".", ":"))


def lfi_info() -> VulnClassInfo:
    # LFI shares the include sinks with RFI: the sub-module refines the
    # reports afterwards (tainted data concatenated into a local path ->
    # LFI; a fully attacker-controlled include target -> RFI).
    config = DetectorConfig(
        class_id="lfi",
        display_name="Local file inclusion",
        entry_points=EP,
        sinks=(),  # produced by refinement, never directly by the engine
        sanitizers=frozenset({"basename", "san_mix"}),
    )
    return VulnClassInfo("lfi", "Local file inclusion", "LFI",
                         SUBMODULE_RCE_FILE, ORIGIN_V21, config,
                         fix_id="san_mix", report_group="Files",
                         malicious_chars=("/", "."))


def dt_pt_info() -> VulnClassInfo:
    config = DetectorConfig(
        class_id="dt_pt",
        display_name="Directory / path traversal",
        entry_points=EP,
        sinks=(
            _f("fopen", 0), _f("file", 0), _f("opendir", 0),
            _f("scandir", 0), _f("dir", 0), _f("unlink", 0),
            _f("rmdir", 0), _f("copy"), _f("rename"), _f("glob", 0),
        ),
        sanitizers=frozenset({"basename", "realpath", "san_mix"}),
    )
    return VulnClassInfo("dt_pt", "Directory traversal / path traversal",
                         "DT", SUBMODULE_RCE_FILE, ORIGIN_V21, config,
                         fix_id="san_mix", report_group="Files",
                         malicious_chars=("/", "."))


def scd_info() -> VulnClassInfo:
    config = DetectorConfig(
        class_id="scd",
        display_name="Source code disclosure",
        entry_points=EP,
        sinks=(
            _f("readfile", 0), _f("show_source", 0),
            _f("highlight_file", 0), _f("fpassthru", 0),
            _f("php_strip_whitespace", 0),
        ),
        sanitizers=frozenset({"basename", "san_read"}),
    )
    return VulnClassInfo("scd", "Source code disclosure", "SCD",
                         SUBMODULE_RCE_FILE, ORIGIN_V21, config,
                         fix_id="san_read",
                         malicious_chars=("/", "."))


def osci_info() -> VulnClassInfo:
    config = DetectorConfig(
        class_id="osci",
        display_name="OS command injection",
        entry_points=EP,
        sinks=(
            _f("exec", 0), _f("system", 0), _f("shell_exec", 0),
            _f("passthru", 0), _f("popen", 0), _f("proc_open", 0),
            _f("pcntl_exec", 0),
            SinkSpec("", SINK_SHELL),
        ),
        sanitizers=frozenset({"escapeshellarg", "escapeshellcmd",
                              "san_osci"}),
    )
    return VulnClassInfo("osci", "OS command injection", "OSCI",
                         SUBMODULE_RCE_FILE, ORIGIN_V21, config,
                         fix_id="san_osci",
                         malicious_chars=(";", "|", "&", "`", "$"))


def phpci_info() -> VulnClassInfo:
    config = DetectorConfig(
        class_id="phpci",
        display_name="PHP command injection",
        entry_points=EP,
        sinks=(
            _f("eval", 0), _f("assert", 0), _f("create_function"),
            _f("call_user_func", 0), _f("call_user_func_array", 0),
            _f("preg_replace", 0),  # /e modifier
        ),
        sanitizers=frozenset({"san_phpci"}),
    )
    return VulnClassInfo("phpci", "PHP command injection", "PHPCI",
                         SUBMODULE_RCE_FILE, ORIGIN_V21, config,
                         fix_id="san_phpci",
                         malicious_chars=("$", ";", "(", ")"))


# ---------------------------------------------------------------------------
# the four classes added by reusing sub-modules (§IV-B, Table IV)
# ---------------------------------------------------------------------------

def sf_info() -> VulnClassInfo:
    # Table IV: sinks setcookie, setrawcookie (printed "setdrawcookie" in
    # the paper), session_id — added to the RCE & file injection sub-module.
    config = DetectorConfig(
        class_id="sf",
        display_name="Session fixation",
        entry_points=EP,
        sinks=(_f("setcookie"), _f("setrawcookie"), _f("session_id", 0)),
        sanitizers=frozenset({"san_sf"}),
    )
    return VulnClassInfo("sf", "Session fixation", "SF",
                         SUBMODULE_RCE_FILE, ORIGIN_SUBMODULE, config,
                         fix_id="san_sf")


def cs_info() -> VulnClassInfo:
    # Table IV: sinks file_put_contents, file_get_contents — added to the
    # client-side injection sub-module (user content stored/served with
    # hyperlinks -> comment spamming).
    config = DetectorConfig(
        class_id="cs",
        display_name="Comment spamming injection",
        entry_points=EP,
        sinks=(_f("file_put_contents", 1), _f("file_get_contents", 0)),
        sanitizers=frozenset({"san_write", "san_read"}),
    )
    return VulnClassInfo("cs", "Comment spamming", "CS",
                         SUBMODULE_CLIENT_SIDE, ORIGIN_SUBMODULE, config,
                         fix_id="san_write",
                         malicious_chars=("http://", "https://", "<a"))


def ldapi_info() -> VulnClassInfo:
    config = DetectorConfig(
        class_id="ldapi",
        display_name="LDAP injection",
        entry_points=EP,
        sinks=(
            _f("ldap_add"), _f("ldap_delete"), _f("ldap_list"),
            _f("ldap_read"), _f("ldap_search"),
        ),
        sanitizers=frozenset({"ldap_escape", "val_ldapi"}),
    )
    return VulnClassInfo("ldapi", "LDAP injection", "LDAPI",
                         SUBMODULE_QUERY, ORIGIN_SUBMODULE, config,
                         fix_id="val_ldapi",
                         malicious_chars=("*", "(", ")", "\\", "|", "&"))


def xpathi_info() -> VulnClassInfo:
    config = DetectorConfig(
        class_id="xpathi",
        display_name="XPath injection",
        entry_points=EP,
        sinks=(
            _f("xpath_eval"), _f("xptr_eval"),
            _f("xpath_eval_expression"),
        ),
        sanitizers=frozenset({"val_xpathi"}),
    )
    return VulnClassInfo("xpathi", "XPath injection", "XPathI",
                         SUBMODULE_QUERY, ORIGIN_SUBMODULE, config,
                         fix_id="val_xpathi",
                         malicious_chars=("'", '"', "[", "]", "(", ")",
                                          "=", "/"))


# ---------------------------------------------------------------------------
# weapon-provided classes (§IV-C)
# ---------------------------------------------------------------------------

#: sensitive sinks of the NoSQLI weapon: MongoDB collection methods.
NOSQLI_SINKS = ("find", "findone", "findandmodify", "insert", "remove",
                "save", "execute")


def nosqli_info() -> VulnClassInfo:
    config = DetectorConfig(
        class_id="nosqli",
        display_name="NoSQL injection",
        entry_points=EP,
        sinks=tuple(SinkSpec(name, SINK_METHOD) for name in NOSQLI_SINKS),
        # the paper configures mysql_real_escape_string as the weapon's
        # sanitization function (§IV-C1)
        sanitizers=frozenset({"mysql_real_escape_string",
                              "san_nosqli"}),
    )
    return VulnClassInfo("nosqli", "NoSQL injection", "NoSQLI",
                         SUBMODULE_WEAPON, ORIGIN_WEAPON, config,
                         fix_id="san_nosqli",
                         malicious_chars=("$", "{", "}", "'", '"'))


def hi_info() -> VulnClassInfo:
    config = DetectorConfig(
        class_id="hi",
        display_name="Header injection / HTTP response splitting",
        entry_points=EP,
        sinks=(_f("header", 0),),
        sanitizers=frozenset({"san_hei"}),
    )
    return VulnClassInfo("hi", "Header injection", "HI",
                         SUBMODULE_WEAPON, ORIGIN_WEAPON, config,
                         fix_id="san_hei",
                         malicious_chars=("\r", "\n", "%0a", "%0d"))


def ei_info() -> VulnClassInfo:
    config = DetectorConfig(
        class_id="ei",
        display_name="Email injection",
        entry_points=EP,
        sinks=(_f("mail"),),
        sanitizers=frozenset({"san_hei"}),
    )
    return VulnClassInfo("ei", "Email injection", "EI",
                         SUBMODULE_WEAPON, ORIGIN_WEAPON, config,
                         fix_id="san_hei",
                         malicious_chars=("\r", "\n", "%0a", "%0d"))


#: $wpdb methods that execute SQL (WordPress sinks).
WPDB_SINKS = ("query", "get_results", "get_row", "get_var", "get_col")

#: WordPress sanitization functions relevant to SQL.
WP_SANITIZERS = ("esc_sql", "like_escape", "absint")

#: WordPress validation/sanitization helpers used as *dynamic symptoms*
#: (§III-B2): each maps to the static symptom it behaves like.
WP_DYNAMIC_SYMPTOMS: dict[str, str] = {
    "absint": "intval",
    "intval": "intval",
    "sanitize_text_field": "preg_replace",
    "sanitize_key": "preg_replace",
    "sanitize_title": "preg_replace",
    "sanitize_email": "preg_match",
    "sanitize_file_name": "preg_replace",
    "is_email": "preg_match",
    "wp_strip_all_tags": "str_replace",
    "esc_attr": "str_replace",
    "esc_html": "str_replace",
    "esc_url": "preg_replace",
    "wp_kses": "preg_replace",
    "wp_kses_post": "preg_replace",
}

#: WordPress helper functions whose return value is attacker-controlled
#: (non-native entry points for the wpsqli weapon).
WP_SOURCE_FUNCTIONS = ("get_query_var", "wp_unslash",
                       "get_search_query")


def wpsqli_info() -> VulnClassInfo:
    config = DetectorConfig(
        class_id="wpsqli",
        display_name="SQL injection (WordPress $wpdb)",
        entry_points=EP,
        source_functions=frozenset(WP_SOURCE_FUNCTIONS),
        sinks=tuple(SinkSpec(name, SINK_METHOD, receiver_hint="wpdb")
                    for name in WPDB_SINKS),
        sanitizers=frozenset(WP_SANITIZERS) | {"san_wpsqli"},
        sanitizer_methods=frozenset({"prepare"}),
    )
    return VulnClassInfo("wpsqli", "WordPress SQL injection", "SQLI",
                         SUBMODULE_WEAPON, ORIGIN_WEAPON, config,
                         fix_id="san_wpsqli", report_group="SQLI",
                         malicious_chars=("'", '"', "\\", ";"))


# ---------------------------------------------------------------------------
# registries
# ---------------------------------------------------------------------------

_ORIGINAL_FACTORIES = (sqli_info, xss_info, rfi_info, lfi_info, dt_pt_info,
                       scd_info, osci_info, phpci_info)
_SUBMODULE_FACTORIES = (sf_info, cs_info, ldapi_info, xpathi_info)
_WEAPON_FACTORIES = (nosqli_info, hi_info, ei_info, wpsqli_info)


def original_registry() -> VulnRegistry:
    """The eight classes of WAP v2.1."""
    registry = VulnRegistry()
    for factory in _ORIGINAL_FACTORIES:
        registry.add(factory())
    return registry


def wape_registry(include_weapons: bool = True) -> VulnRegistry:
    """The full WAPe loadout: 8 original + 4 sub-module + 3 weapons.

    The paper counts 15 classes: 8 original + 7 new (SF, CS, LDAPI, XPathI,
    NoSQLI, HI, EI) — plus the WordPress-SQLI weapon, which reuses the SQLI
    class with non-native functions.
    """
    registry = original_registry()
    for factory in _SUBMODULE_FACTORIES:
        registry.add(factory())
    if include_weapons:
        for factory in _WEAPON_FACTORIES:
            registry.add(factory())
    return registry
