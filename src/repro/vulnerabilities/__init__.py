"""Vulnerability classes: registry, catalogs and Fig. 2 sub-modules."""

from repro.vulnerabilities.catalog import (  # noqa: F401
    DB_READ_SOURCES,
    NOSQLI_SINKS,
    WPDB_SINKS,
    WP_DYNAMIC_SYMPTOMS,
    WP_SANITIZERS,
    WP_SOURCE_FUNCTIONS,
    original_registry,
    wape_registry,
)
from repro.vulnerabilities.classes import (  # noqa: F401
    ORIGIN_SUBMODULE,
    ORIGIN_V21,
    ORIGIN_WEAPON,
    SUBMODULE_CLIENT_SIDE,
    SUBMODULE_QUERY,
    SUBMODULE_RCE_FILE,
    SUBMODULE_WEAPON,
    VulnClassInfo,
    VulnRegistry,
)
from repro.vulnerabilities.submodules import (  # noqa: F401
    SubModule,
    build_submodules,
)

__all__ = [
    "VulnClassInfo",
    "VulnRegistry",
    "SubModule",
    "build_submodules",
    "original_registry",
    "wape_registry",
    "ORIGIN_V21",
    "ORIGIN_SUBMODULE",
    "ORIGIN_WEAPON",
    "SUBMODULE_RCE_FILE",
    "SUBMODULE_CLIENT_SIDE",
    "SUBMODULE_QUERY",
    "SUBMODULE_WEAPON",
    "DB_READ_SOURCES",
    "NOSQLI_SINKS",
    "WPDB_SINKS",
    "WP_SANITIZERS",
    "WP_DYNAMIC_SYMPTOMS",
    "WP_SOURCE_FUNCTIONS",
]
