"""A hand-written lexer for the PHP subset used by the taint analyzer.

The lexer is a single-pass scanner over the raw source text.  It starts in
*HTML mode* (everything up to ``<?php`` / ``<?=`` is emitted as a single
:data:`~repro.php.tokens.TokenType.INLINE_HTML` token) and switches to *PHP
mode* until a closing ``?>`` is found.

Double-quoted strings, heredocs and backtick strings are emitted with their
raw inner text; interpolation is resolved later by the parser (see
:mod:`repro.php.interpolation`), keeping the lexer free of recursion.
"""

from __future__ import annotations

import re

from repro.exceptions import PhpSyntaxError
from repro.php.tokens import CAST_TYPES, KEYWORDS, Token, TokenType

_IDENT_START = re.compile(r"[A-Za-z_\x80-\xff]")
_IDENT_RE = re.compile(r"[A-Za-z_\x80-\xff][A-Za-z0-9_\x80-\xff]*")
_HEX_RE = re.compile(r"0[xX][0-9a-fA-F]+")
_OCT_RE = re.compile(r"0[oO]?[0-7]+")
_BIN_RE = re.compile(r"0[bB][01]+")
_NUM_RE = re.compile(
    r"(\d[\d_]*\.\d[\d_]*([eE][+-]?\d+)?)"   # 1.5, 1.5e3
    r"|(\.\d[\d_]*([eE][+-]?\d+)?)"          # .5
    r"|(\d[\d_]*\.(?!\.)([eE][+-]?\d+)?)"    # 1.  (but not 1..)
    r"|(\d[\d_]*[eE][+-]?\d+)"               # 1e3
    r"|(\d[\d_]*)"                           # 42
)
_CAST_RE = re.compile(r"\(\s*([A-Za-z]+)\s*\)")
_HEREDOC_OPEN_RE = re.compile(
    r"<<<[ \t]*(?:\"(?P<nowq>[A-Za-z_][A-Za-z0-9_]*)\""
    r"|'(?P<now>[A-Za-z_][A-Za-z0-9_]*)'"
    r"|(?P<here>[A-Za-z_][A-Za-z0-9_]*))\r?\n"
)

# Multi-character operators, longest first so maximal munch works by scanning
# this list in order.
_OPERATORS: list[tuple[str, TokenType]] = [
    ("<<=", TokenType.SHL_ASSIGN),
    (">>=", TokenType.SHR_ASSIGN),
    ("**=", TokenType.POW_ASSIGN),
    ("===", TokenType.IDENTICAL),
    ("!==", TokenType.NOT_IDENTICAL),
    ("<=>", TokenType.SPACESHIP),
    ("??=", TokenType.COALESCE_ASSIGN),
    ("...", TokenType.ELLIPSIS),
    ("?->", TokenType.NULLSAFE_ARROW),
    ("==", TokenType.EQ),
    ("!=", TokenType.NEQ),
    ("<>", TokenType.NEQ),
    ("<=", TokenType.LE),
    (">=", TokenType.GE),
    ("&&", TokenType.BOOL_AND),
    ("||", TokenType.BOOL_OR),
    ("??", TokenType.COALESCE),
    ("->", TokenType.ARROW),
    ("::", TokenType.DOUBLE_COLON),
    ("=>", TokenType.DOUBLE_ARROW),
    ("++", TokenType.INC),
    ("--", TokenType.DEC),
    ("+=", TokenType.PLUS_ASSIGN),
    ("-=", TokenType.MINUS_ASSIGN),
    ("*=", TokenType.MUL_ASSIGN),
    ("/=", TokenType.DIV_ASSIGN),
    ("%=", TokenType.MOD_ASSIGN),
    (".=", TokenType.CONCAT_ASSIGN),
    ("&=", TokenType.AND_ASSIGN),
    ("|=", TokenType.OR_ASSIGN),
    ("^=", TokenType.XOR_ASSIGN),
    ("**", TokenType.POW),
    ("<<", TokenType.SHL),
    (">>", TokenType.SHR),
    ("=", TokenType.ASSIGN),
    ("+", TokenType.PLUS),
    ("-", TokenType.MINUS),
    ("*", TokenType.MUL),
    ("/", TokenType.DIV),
    ("%", TokenType.MOD),
    (".", TokenType.DOT),
    ("!", TokenType.NOT),
    ("<", TokenType.LT),
    (">", TokenType.GT),
    ("&", TokenType.AMP),
    ("|", TokenType.PIPE),
    ("^", TokenType.CARET),
    ("~", TokenType.TILDE),
    ("?", TokenType.QUESTION),
    (":", TokenType.COLON),
    (";", TokenType.SEMI),
    (",", TokenType.COMMA),
    ("(", TokenType.LPAREN),
    (")", TokenType.RPAREN),
    ("[", TokenType.LBRACKET),
    ("]", TokenType.RBRACKET),
    ("{", TokenType.LBRACE),
    ("}", TokenType.RBRACE),
    ("@", TokenType.AT),
    ("$", TokenType.DOLLAR),
    ("\\", TokenType.BACKSLASH),
]

_SQ_ESCAPES = {"\\": "\\", "'": "'"}


class Lexer:
    """Tokenizes PHP source text.

    Args:
        source: the full text of a PHP file (may contain inline HTML).
        filename: used in error messages only.
    """

    def __init__(self, source: str, filename: str = "<source>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1
        self.tokens: list[Token] = []

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def tokenize(self) -> list[Token]:
        """Lex the entire source and return the token list (ends with EOF)."""
        while self.pos < len(self.source):
            self._lex_html()
            if self.pos >= len(self.source):
                break
            self._lex_php()
        self._emit(TokenType.EOF, "")
        return self.tokens

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _emit(self, type_: TokenType, value: str,
              line: int | None = None, col: int | None = None) -> None:
        self.tokens.append(Token(type_, value,
                                 self.line if line is None else line,
                                 self.col if col is None else col))

    def _advance(self, n: int = 1) -> str:
        """Consume *n* characters, maintaining line/col, and return them."""
        text = self.source[self.pos:self.pos + n]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += n
        return text

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _startswith(self, text: str) -> bool:
        return self.source.startswith(text, self.pos)

    def _error(self, message: str) -> PhpSyntaxError:
        return PhpSyntaxError(message, self.line, self.col, self.filename)

    # ------------------------------------------------------------------
    # HTML mode
    # ------------------------------------------------------------------
    def _lex_html(self) -> None:
        start = self.pos
        start_line, start_col = self.line, self.col
        open_idx = self.source.find("<?", self.pos)
        if open_idx == -1:
            html = self._advance(len(self.source) - self.pos)
            if html:
                self._emit(TokenType.INLINE_HTML, html, start_line, start_col)
            return
        if open_idx > start:
            html = self._advance(open_idx - start)
            self._emit(TokenType.INLINE_HTML, html, start_line, start_col)
        # consume the open tag
        tag_line, tag_col = self.line, self.col
        if self._startswith("<?php"):
            self._advance(5)
            self._emit(TokenType.OPEN_TAG, "<?php", tag_line, tag_col)
        elif self._startswith("<?="):
            self._advance(3)
            self._emit(TokenType.OPEN_TAG, "<?=", tag_line, tag_col)
            # <?= behaves like "echo"
            self._emit(TokenType.KW_ECHO, "echo", tag_line, tag_col)
        else:  # short open tag <?
            self._advance(2)
            self._emit(TokenType.OPEN_TAG, "<?", tag_line, tag_col)

    # ------------------------------------------------------------------
    # PHP mode
    # ------------------------------------------------------------------
    def _lex_php(self) -> None:  # noqa: C901 - a lexer dispatch is a big switch
        while self.pos < len(self.source):
            ch = self._peek()

            # close tag -> back to HTML mode
            if ch == "?" and self._peek(1) == ">":
                line, col = self.line, self.col
                self._advance(2)
                self._emit(TokenType.CLOSE_TAG, "?>", line, col)
                # PHP eats a single newline right after ?>
                if self._peek() == "\n":
                    self._advance(1)
                elif self._peek() == "\r" and self._peek(1) == "\n":
                    self._advance(2)
                return

            if ch in " \t\r\n":
                self._advance(1)
                continue

            # comments
            if ch == "/" and self._peek(1) == "/":
                self._skip_line_comment()
                continue
            if ch == "#":
                self._skip_line_comment()
                continue
            if ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
                continue

            if ch == "$":
                self._lex_variable()
                continue

            if ch == "'":
                self._lex_sq_string()
                continue
            if ch == '"':
                self._lex_dq_string()
                continue
            if ch == "`":
                self._lex_backtick()
                continue
            if self._startswith("<<<"):
                if self._lex_heredoc():
                    continue

            if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                self._lex_number()
                continue

            if _IDENT_START.match(ch):
                self._lex_ident()
                continue

            if ch == "(":
                m = _CAST_RE.match(self.source, self.pos)
                if m and m.group(1).lower() in CAST_TYPES:
                    line, col = self.line, self.col
                    self._advance(m.end() - self.pos)
                    self._emit(TokenType.CAST, CAST_TYPES[m.group(1).lower()],
                               line, col)
                    continue

            for text, type_ in _OPERATORS:
                if self._startswith(text):
                    line, col = self.line, self.col
                    self._advance(len(text))
                    self._emit(type_, text, line, col)
                    break
            else:
                raise self._error(f"unexpected character {ch!r}")

    def _skip_line_comment(self) -> None:
        while self.pos < len(self.source) and self._peek() != "\n":
            # a close tag terminates // and # comments in PHP
            if self._peek() == "?" and self._peek(1) == ">":
                return
            self._advance(1)

    def _skip_block_comment(self) -> None:
        self._advance(2)
        end = self.source.find("*/", self.pos)
        if end == -1:
            raise self._error("unterminated block comment")
        self._advance(end + 2 - self.pos)

    def _lex_variable(self) -> None:
        line, col = self.line, self.col
        # $$var / ${expr} handled by parser via DOLLAR token
        m = _IDENT_RE.match(self.source, self.pos + 1)
        if not m:
            self._advance(1)
            self._emit(TokenType.DOLLAR, "$", line, col)
            return
        self._advance(1 + (m.end() - m.start()))
        self._emit(TokenType.VARIABLE, m.group(0), line, col)

    def _lex_ident(self) -> None:
        line, col = self.line, self.col
        m = _IDENT_RE.match(self.source, self.pos)
        assert m is not None
        word = m.group(0)
        self._advance(len(word))
        if word in ("b", "B") and self.pos < len(self.source) \
                and self.source[self.pos] in ("'", '"'):
            # binary string prefix (b"..."): the prefix is a no-op in our
            # model; drop it and let the string lexer take over
            return
        kw = KEYWORDS.get(word.lower())
        if kw is not None:
            self._emit(kw, word, line, col)
        else:
            self._emit(TokenType.IDENT, word, line, col)

    def _lex_number(self) -> None:
        line, col = self.line, self.col
        for regex, type_ in ((_HEX_RE, TokenType.INT), (_BIN_RE, TokenType.INT)):
            m = regex.match(self.source, self.pos)
            if m:
                self._advance(m.end() - self.pos)
                self._emit(type_, m.group(0), line, col)
                return
        m = _NUM_RE.match(self.source, self.pos)
        if not m:
            raise self._error("malformed number")
        text = m.group(0)
        self._advance(len(text))
        is_float = "." in text or "e" in text.lower()
        self._emit(TokenType.FLOAT if is_float else TokenType.INT,
                   text, line, col)

    def _lex_sq_string(self) -> None:
        line, col = self.line, self.col
        self._advance(1)
        out: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated single-quoted string")
            ch = self._advance(1)
            if ch == "'":
                break
            if ch == "\\":
                nxt = self._advance(1) if self.pos < len(self.source) else ""
                out.append(_SQ_ESCAPES.get(nxt, "\\" + nxt))
            else:
                out.append(ch)
        self._emit(TokenType.SQ_STRING, "".join(out), line, col)

    def _scan_raw_until(self, terminator: str, what: str) -> str:
        """Scan raw text (keeping escapes) until an unescaped *terminator*."""
        out: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self._error(f"unterminated {what}")
            ch = self._advance(1)
            if ch == terminator:
                return "".join(out)
            out.append(ch)
            if ch == "\\" and self.pos < len(self.source):
                out.append(self._advance(1))

    def _lex_dq_string(self) -> None:
        line, col = self.line, self.col
        self._advance(1)
        raw = self._scan_raw_until('"', "double-quoted string")
        self._emit(TokenType.DQ_STRING, raw, line, col)

    def _lex_backtick(self) -> None:
        line, col = self.line, self.col
        self._advance(1)
        raw = self._scan_raw_until("`", "backtick string")
        self._emit(TokenType.BACKTICK, raw, line, col)

    def _lex_heredoc(self) -> bool:
        """Try to lex a heredoc/nowdoc; return False if ``<<<`` is not one."""
        m = _HEREDOC_OPEN_RE.match(self.source, self.pos)
        if not m:
            return False
        line, col = self.line, self.col
        label = m.group("here") or m.group("now") or m.group("nowq")
        is_nowdoc = m.group("now") is not None
        self._advance(m.end() - self.pos)
        # find the closing label at the start of a line (allow indentation,
        # PHP 7.3+ flexible heredoc)
        close_re = re.compile(
            r"^[ \t]*" + re.escape(label) + r"\b", re.MULTILINE)
        mm = close_re.search(self.source, self.pos)
        if not mm:
            raise self._error(f"unterminated heredoc <<<{label}")
        body = self.source[self.pos:mm.start()]
        # strip the final newline that belongs to the terminator line
        if body.endswith("\r\n"):
            body = body[:-2]
        elif body.endswith("\n"):
            body = body[:-1]
        self._advance(mm.end() - self.pos)
        self._emit(TokenType.NOWDOC if is_nowdoc else TokenType.HEREDOC,
                   body, line, col)
        return True


def tokenize(source: str, filename: str = "<source>") -> list[Token]:
    """Convenience wrapper: lex *source* and return the token list."""
    return Lexer(source, filename).tokenize()
