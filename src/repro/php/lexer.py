"""A hand-written lexer for the PHP subset used by the taint analyzer.

The lexer is a single-pass scanner over the raw source text.  It starts in
*HTML mode* (everything up to ``<?php`` / ``<?=`` is emitted as a single
:data:`~repro.php.tokens.TokenType.INLINE_HTML` token) and switches to *PHP
mode* until a closing ``?>`` is found.

Double-quoted strings, heredocs and backtick strings are emitted with their
raw inner text; interpolation is resolved later by the parser (see
:mod:`repro.php.interpolation`), keeping the lexer free of recursion.

PHP mode is driven by a single master regular expression whose alternatives
cover whitespace, comments, tags, variables, names, numbers, casts and
operators; one ``re.match`` per token replaces the per-character dispatch the
lexer used to do, and line/col positions are derived from a precomputed
newline-offset table instead of being maintained character by character.
Quoted strings and unusual characters fall through to dedicated handlers.
"""

from __future__ import annotations

import re
import sys
from bisect import bisect_right
from functools import lru_cache

from repro.exceptions import PhpSyntaxError
from repro.php.tokens import CAST_TYPES, KEYWORDS, Token, TokenType

_IDENT_START = re.compile(r"[A-Za-z_\x80-\xff]")
_IDENT_RE = re.compile(r"[A-Za-z_\x80-\xff][A-Za-z0-9_\x80-\xff]*")
_HEX_RE = re.compile(r"0[xX][0-9a-fA-F]+")
_OCT_RE = re.compile(r"0[oO]?[0-7]+")
_BIN_RE = re.compile(r"0[bB][01]+")
_NUM_RE = re.compile(
    r"(\d[\d_]*\.\d[\d_]*([eE][+-]?\d+)?)"   # 1.5, 1.5e3
    r"|(\.\d[\d_]*([eE][+-]?\d+)?)"          # .5
    r"|(\d[\d_]*\.(?!\.)([eE][+-]?\d+)?)"    # 1.  (but not 1..)
    r"|(\d[\d_]*[eE][+-]?\d+)"               # 1e3
    r"|(\d[\d_]*)"                           # 42
)
_CAST_RE = re.compile(r"\(\s*([A-Za-z]+)\s*\)")
_HEREDOC_OPEN_RE = re.compile(
    r"<<<[ \t]*(?:\"(?P<nowq>[A-Za-z_][A-Za-z0-9_]*)\""
    r"|'(?P<now>[A-Za-z_][A-Za-z0-9_]*)'"
    r"|(?P<here>[A-Za-z_][A-Za-z0-9_]*))\r?\n"
)

# Multi-character operators, longest first so maximal munch works: the master
# regex tries the alternatives in this order.
_OPERATORS: list[tuple[str, TokenType]] = [
    ("<<=", TokenType.SHL_ASSIGN),
    (">>=", TokenType.SHR_ASSIGN),
    ("**=", TokenType.POW_ASSIGN),
    ("===", TokenType.IDENTICAL),
    ("!==", TokenType.NOT_IDENTICAL),
    ("<=>", TokenType.SPACESHIP),
    ("??=", TokenType.COALESCE_ASSIGN),
    ("...", TokenType.ELLIPSIS),
    ("?->", TokenType.NULLSAFE_ARROW),
    ("==", TokenType.EQ),
    ("!=", TokenType.NEQ),
    ("<>", TokenType.NEQ),
    ("<=", TokenType.LE),
    (">=", TokenType.GE),
    ("&&", TokenType.BOOL_AND),
    ("||", TokenType.BOOL_OR),
    ("??", TokenType.COALESCE),
    ("->", TokenType.ARROW),
    ("::", TokenType.DOUBLE_COLON),
    ("=>", TokenType.DOUBLE_ARROW),
    ("++", TokenType.INC),
    ("--", TokenType.DEC),
    ("+=", TokenType.PLUS_ASSIGN),
    ("-=", TokenType.MINUS_ASSIGN),
    ("*=", TokenType.MUL_ASSIGN),
    ("/=", TokenType.DIV_ASSIGN),
    ("%=", TokenType.MOD_ASSIGN),
    (".=", TokenType.CONCAT_ASSIGN),
    ("&=", TokenType.AND_ASSIGN),
    ("|=", TokenType.OR_ASSIGN),
    ("^=", TokenType.XOR_ASSIGN),
    ("**", TokenType.POW),
    ("<<", TokenType.SHL),
    (">>", TokenType.SHR),
    ("=", TokenType.ASSIGN),
    ("+", TokenType.PLUS),
    ("-", TokenType.MINUS),
    ("*", TokenType.MUL),
    ("/", TokenType.DIV),
    ("%", TokenType.MOD),
    (".", TokenType.DOT),
    ("!", TokenType.NOT),
    ("<", TokenType.LT),
    (">", TokenType.GT),
    ("&", TokenType.AMP),
    ("|", TokenType.PIPE),
    ("^", TokenType.CARET),
    ("~", TokenType.TILDE),
    ("?", TokenType.QUESTION),
    (":", TokenType.COLON),
    (";", TokenType.SEMI),
    (",", TokenType.COMMA),
    ("(", TokenType.LPAREN),
    (")", TokenType.RPAREN),
    ("[", TokenType.LBRACKET),
    ("]", TokenType.RBRACKET),
    ("{", TokenType.LBRACE),
    ("}", TokenType.RBRACE),
    ("@", TokenType.AT),
    ("$", TokenType.DOLLAR),
    ("\\", TokenType.BACKSLASH),
]

_SQ_ESCAPES = {"\\": "\\", "'": "'"}

# Operator dispatch: matched text -> (token type, canonical shared string).
# Reusing the dict's own key as the token value keeps one string per
# operator alive instead of a fresh slice per occurrence.
_OP_MAP: dict[str, tuple[TokenType, str]] = {
    text: (type_, text) for text, type_ in _OPERATORS
}

_intern = sys.intern

# One master regex for the PHP-mode hot path.  Alternative order matters:
# comments before "/" operators, "?>" before "?", heredoc openers before
# "<<", numbers before ".", casts before "(", and the operator alternation
# itself is longest-first (regexes take the first alternative that matches,
# which gives maximal munch for free).  Quote characters are absent on
# purpose — they fall through to the string handlers.
_MASTER_RE = re.compile(
    r"(?P<ws>[ \t\r\n]+)"
    r"|(?P<lcomment>(?://|\#)(?:[^\n?]|\?(?!>))*)"
    r"|(?P<bcomment>/\*)"
    r"|(?P<close>\?>)"
    r"|(?P<heredoc><<<[ \t]*(?:\"[A-Za-z_][A-Za-z0-9_]*\""
    r"|'[A-Za-z_][A-Za-z0-9_]*'"
    r"|[A-Za-z_][A-Za-z0-9_]*)\r?\n)"
    r"|(?P<var>\$[A-Za-z_\x80-\xff][A-Za-z0-9_\x80-\xff]*)"
    r"|(?P<name>[A-Za-z_\x80-\xff][A-Za-z0-9_\x80-\xff]*)"
    r"|(?P<num>0[xX][0-9a-fA-F]+|0[bB][01]+"
    r"|\d[\d_]*\.\d[\d_]*(?:[eE][+-]?\d+)?"
    r"|\.\d[\d_]*(?:[eE][+-]?\d+)?"
    r"|\d[\d_]*\.(?!\.)(?:[eE][+-]?\d+)?"
    r"|\d[\d_]*[eE][+-]?\d+"
    r"|\d[\d_]*)"
    r"|(?P<cast>\(\s*(?i:integer|int|float|double|real|string|binary"
    r"|boolean|bool|array|object|unset)\s*\))"
    r"|(?P<op>" + "|".join(re.escape(text) for text, _ in _OPERATORS) + r")"
)

# Raw string bodies: escapes are kept verbatim (DOTALL so "\<newline>"
# counts as an escape pair, matching the old char-by-char scanner).
_SQ_BODY_RE = re.compile(r"(?:[^'\\]|\\.)*'", re.DOTALL)
_DQ_BODY_RE = re.compile(r'(?:[^"\\]|\\.)*"', re.DOTALL)
_BT_BODY_RE = re.compile(r"(?:[^`\\]|\\.)*`", re.DOTALL)
_SQ_ESCAPE_RE = re.compile(r"\\(.)", re.DOTALL)


def _sq_unescape(m: re.Match) -> str:
    ch = m.group(1)
    return _SQ_ESCAPES.get(ch, "\\" + ch)


@lru_cache(maxsize=256)
def _heredoc_close_re(label: str) -> re.Pattern:
    # the closing label at the start of a line (allow indentation,
    # PHP 7.3+ flexible heredoc)
    return re.compile(r"^[ \t]*" + re.escape(label) + r"\b", re.MULTILINE)


class Lexer:
    """Tokenizes PHP source text.

    Args:
        source: the full text of a PHP file (may contain inline HTML).
        filename: used in error messages only.
    """

    def __init__(self, source: str, filename: str = "<source>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.tokens: list[Token] = []
        # offset of the first character of each line; token positions are
        # derived from this table instead of per-character counters
        self._line_starts = [0]
        self._line_starts.extend(
            m.end() for m in re.finditer("\n", source))
        self._line_idx = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def tokenize(self) -> list[Token]:
        """Lex the entire source and return the token list (ends with EOF)."""
        n = len(self.source)
        while self.pos < n:
            self._lex_html()
            if self.pos >= n:
                break
            self._lex_php()
        line, col = self._loc(self.pos)
        self.tokens.append(Token(TokenType.EOF, "", line, col))
        return self.tokens

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _loc(self, pos: int) -> tuple[int, int]:
        """(line, col) of *pos*; amortized O(1) for monotonic queries."""
        starts = self._line_starts
        i = self._line_idx
        if starts[i] > pos:  # rare backwards query
            i = bisect_right(starts, pos) - 1
        else:
            n = len(starts)
            while i + 1 < n and starts[i + 1] <= pos:
                i += 1
        self._line_idx = i
        return i + 1, pos - starts[i] + 1

    def _emit(self, type_: TokenType, value: str, pos: int) -> None:
        line, col = self._loc(pos)
        self.tokens.append(Token(type_, value, line, col))

    def _error(self, message: str, pos: int) -> PhpSyntaxError:
        line, col = self._loc(pos)
        return PhpSyntaxError(message, line, col, self.filename)

    # ------------------------------------------------------------------
    # HTML mode
    # ------------------------------------------------------------------
    def _lex_html(self) -> None:
        src = self.source
        start = self.pos
        open_idx = src.find("<?", start)
        if open_idx == -1:
            if start < len(src):
                self._emit(TokenType.INLINE_HTML, src[start:], start)
            self.pos = len(src)
            return
        if open_idx > start:
            self._emit(TokenType.INLINE_HTML, src[start:open_idx], start)
        # consume the open tag
        if src.startswith("<?php", open_idx):
            self._emit(TokenType.OPEN_TAG, "<?php", open_idx)
            self.pos = open_idx + 5
        elif src.startswith("<?=", open_idx):
            self._emit(TokenType.OPEN_TAG, "<?=", open_idx)
            # <?= behaves like "echo"
            self._emit(TokenType.KW_ECHO, "echo", open_idx)
            self.pos = open_idx + 3
        else:  # short open tag <?
            self._emit(TokenType.OPEN_TAG, "<?", open_idx)
            self.pos = open_idx + 2

    # ------------------------------------------------------------------
    # PHP mode
    # ------------------------------------------------------------------
    def _lex_php(self) -> None:  # noqa: C901 - a lexer dispatch is a big switch
        src = self.source
        n = len(src)
        pos = self.pos
        master = _MASTER_RE.match
        tokens = self.tokens
        loc = self._loc
        op_map = _OP_MAP
        keywords = KEYWORDS
        while pos < n:
            m = master(src, pos)
            if m is None:
                ch = src[pos]
                if ch == "'":
                    pos = self._lex_sq_string(pos)
                    continue
                if ch == '"':
                    pos = self._lex_dq_string(pos)
                    continue
                if ch == "`":
                    pos = self._lex_backtick(pos)
                    continue
                self.pos = pos
                raise self._error(f"unexpected character {ch!r}", pos)
            kind = m.lastgroup
            end = m.end()
            if kind == "name":
                word = m.group()
                if (word == "b" or word == "B") and end < n \
                        and (src[end] == "'" or src[end] == '"'):
                    # binary string prefix (b"..."): the prefix is a no-op
                    # in our model; drop it, the string handler takes over
                    pos = end
                    continue
                line, col = loc(pos)
                kw = keywords.get(word.lower())
                if kw is not None:
                    tokens.append(Token(kw, _intern(word), line, col))
                else:
                    tokens.append(Token(TokenType.IDENT, _intern(word),
                                        line, col))
                pos = end
                continue
            if kind == "var":
                line, col = loc(pos)
                tokens.append(Token(TokenType.VARIABLE,
                                    _intern(m.group()[1:]), line, col))
                pos = end
                continue
            if kind == "op":
                type_, text = op_map[m.group()]
                line, col = loc(pos)
                tokens.append(Token(type_, text, line, col))
                pos = end
                continue
            if kind == "ws" or kind == "lcomment":
                pos = end
                continue
            if kind == "num":
                text = m.group()
                line, col = loc(pos)
                prefix = text[:2]
                if prefix == "0x" or prefix == "0X" \
                        or prefix == "0b" or prefix == "0B":
                    type_ = TokenType.INT
                elif "." in text or "e" in text or "E" in text:
                    type_ = TokenType.FLOAT
                else:
                    type_ = TokenType.INT
                tokens.append(Token(type_, text, line, col))
                pos = end
                continue
            if kind == "cast":
                word = m.group()[1:-1].strip().lower()
                self._emit(TokenType.CAST, CAST_TYPES[word], pos)
                pos = end
                continue
            if kind == "bcomment":
                idx = src.find("*/", end)
                if idx == -1:
                    raise self._error("unterminated block comment", end)
                pos = idx + 2
                continue
            if kind == "heredoc":
                pos = self._lex_heredoc(pos)
                continue
            if kind == "close":
                self._emit(TokenType.CLOSE_TAG, "?>", pos)
                pos = end
                # PHP eats a single newline right after ?>
                if pos < n and src[pos] == "\n":
                    pos += 1
                elif src.startswith("\r\n", pos):
                    pos += 2
                self.pos = pos
                return
        self.pos = pos

    def _lex_sq_string(self, pos: int) -> int:
        m = _SQ_BODY_RE.match(self.source, pos + 1)
        if m is None:
            raise self._error("unterminated single-quoted string",
                              len(self.source))
        raw = m.group()[:-1]
        if "\\" in raw:
            value = _SQ_ESCAPE_RE.sub(_sq_unescape, raw)
        else:
            value = raw
        self._emit(TokenType.SQ_STRING, value, pos)
        return m.end()

    def _lex_dq_string(self, pos: int) -> int:
        m = _DQ_BODY_RE.match(self.source, pos + 1)
        if m is None:
            raise self._error("unterminated double-quoted string",
                              len(self.source))
        # raw inner text, escapes kept verbatim: interpolation is resolved
        # later by the parser
        self._emit(TokenType.DQ_STRING, m.group()[:-1], pos)
        return m.end()

    def _lex_backtick(self, pos: int) -> int:
        m = _BT_BODY_RE.match(self.source, pos + 1)
        if m is None:
            raise self._error("unterminated backtick string",
                              len(self.source))
        self._emit(TokenType.BACKTICK, m.group()[:-1], pos)
        return m.end()

    def _lex_heredoc(self, pos: int) -> int:
        m = _HEREDOC_OPEN_RE.match(self.source, pos)
        assert m is not None  # the master regex already matched the opener
        label = m.group("here") or m.group("now") or m.group("nowq")
        is_nowdoc = m.group("now") is not None
        mm = _heredoc_close_re(label).search(self.source, m.end())
        if not mm:
            raise self._error(f"unterminated heredoc <<<{label}", m.end())
        body = self.source[m.end():mm.start()]
        # strip the final newline that belongs to the terminator line
        if body.endswith("\r\n"):
            body = body[:-2]
        elif body.endswith("\n"):
            body = body[:-1]
        self._emit(TokenType.NOWDOC if is_nowdoc else TokenType.HEREDOC,
                   body, pos)
        return mm.end()


def tokenize(source: str, filename: str = "<source>") -> list[Token]:
    """Convenience wrapper: lex *source* and return the token list."""
    return Lexer(source, filename).tokenize()
