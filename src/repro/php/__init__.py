"""PHP frontend: lexer, parser, typed AST, visitors and unparser.

This package is the substrate the rest of the tool stands on.  The public
surface is small:

>>> from repro.php import parse, unparse
>>> tree = parse("<?php echo $_GET['q']; ?>")
>>> print(unparse(tree))  # doctest: +SKIP
"""

from repro.php import ast_nodes as ast  # noqa: F401  (re-export namespace)
from repro.php.ast_store import AST_FORMAT, AstCache, AstStore  # noqa: F401
from repro.php.lexer import Lexer, tokenize  # noqa: F401
from repro.php.parser import (  # noqa: F401
    Parser,
    parse,
    parse_interpolated,
    parse_with_recovery,
)
from repro.php.unparser import (  # noqa: F401
    Unparser,
    quote_php_string,
    unparse,
    unparse_expr,
)
from repro.php.visitor import (  # noqa: F401
    NodeTransformer,
    NodeVisitor,
    count_nodes,
    find_all,
    walk,
)

__all__ = [
    "ast",
    "AST_FORMAT",
    "AstCache",
    "AstStore",
    "Lexer",
    "tokenize",
    "Parser",
    "parse",
    "parse_interpolated",
    "parse_with_recovery",
    "Unparser",
    "unparse",
    "unparse_expr",
    "quote_php_string",
    "NodeVisitor",
    "NodeTransformer",
    "walk",
    "find_all",
    "count_nodes",
]
