"""Parse-once frontend: shared AST store with an optional on-disk cache.

A scan used to parse most files twice: once while resolving includes
(:class:`repro.analysis.includes.IncludeResolver` walks every file that
textually mentions ``include``/``require``) and again in the scan phase
(:meth:`repro.analysis.pipeline.FusedDetector.detect_source_recovering`),
with :class:`repro.analysis.includes.IncludeContext` adding a third parse
for dependency files.  :class:`AstStore` removes the duplication: every
frontend consumer asks the store, which memoizes parse results keyed by a
content hash of the source text, so each unique content is lexed and
parsed exactly once per process.

Parse results are content-addressed, not path-addressed: two identical
files share one entry, and cached syntax errors/warnings are re-attributed
to the *requesting* filename on every hit (error messages never embed the
path; only :class:`~repro.exceptions.PhpSyntaxError` carries it).

:class:`AstCache` adds an optional on-disk tier (pickled, content-hash
keyed, format-versioned via :data:`AST_FORMAT` the way ``ResultCache``
uses the knowledge fingerprint), so incremental re-scans of a dirty
include closure stop re-lexing unchanged includer files.  Corrupt entries
are evicted on the miss that discovers them; writes are atomic
(temp + rename).

Since format 2, every successful entry also carries the file's lowered
:class:`~repro.ir.opcodes.IRModule`: :meth:`AstStore.store` lowers
eagerly (timed into the ``ir_lower_seconds`` counter), so the taint
engine's hot path never re-lowers a content the process — or, via the
disk tier, an earlier process — has already seen.  Lowered modules are
config-independent (see :mod:`repro.ir.lower`), which is what lets them
be cached purely by content hash, unlike the config-fingerprinted
summary tier (:mod:`repro.analysis.summaries`).

The store deliberately has no dependency on :mod:`repro.telemetry`
(which transitively imports the analysis layer): callers may hand it any
object with the ``Metrics`` counter interface via ``metrics=`` and the
store then also publishes ``frontend_reparse_avoided`` /
``ast_cache_hit`` counters; the plain integer counters on the store
itself are always maintained.

Shared ``Program`` objects must be treated as read-only by consumers.
Every analysis-side consumer already is; the corrector, which mutates
ASTs, parses its own private copy and never goes through the store.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile

from repro.exceptions import PhpSyntaxError
from repro.php.ast_nodes import Program
from repro.php.parser import parse_with_recovery

#: bump whenever the token stream, grammar, AST node layout, entry
#: layout, or the IR instruction set (:data:`repro.ir.opcodes.IR_FORMAT`)
#: changes — pickled programs/modules from an older frontend must never
#: be served.  2: entries grew a fourth slot, the lowered IR module.
AST_FORMAT = 2

#: (message, line, col) triples: enough to rebuild a PhpSyntaxError
#: against whatever filename the current request used.
_ErrorSpec = tuple[str, int, int]

#: a memoized parse: (program, recovery warnings, fatal error, lowered
#: IR module).  Exactly one of ``program``/``error`` is set; the module
#: is ``None`` for error entries and for programs lowering gave up on.
_Entry = tuple[Program | None, tuple[_ErrorSpec, ...], _ErrorSpec | None,
               object | None]


def _spec_of(exc: PhpSyntaxError) -> _ErrorSpec:
    return (exc.message, exc.line, exc.col)


class PackFile:
    """One atomically-rewritten pickle pack: ``{key: entry bytes}``.

    Writing thousands of tiny cache entries as individual files spends
    most of a cold scan's cache time in ``open``/``close``/``rename``
    syscalls (measured ~30x slower than one sequential write of the same
    bytes).  A pack buffers puts in memory and :meth:`flush` merges them
    into a single on-disk dict in one temp-write + rename.  Values stay
    pickled *bytes* inside the pack, so loading the pack deserializes
    only the key index — each entry is unpickled on its first ``get``.

    Concurrent flushes from several workers re-read the pack before
    replacing it; a racing writer can still drop the other's freshest
    entries (last rename wins), which for a cache only costs a later
    re-computation, never wrong data.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._pending: dict[str, bytes] = {}
        self._discarded: set[str] = set()
        self._loaded: dict[str, bytes] | None = None
        self.corrupt = False  # last load found an unreadable pack

    def _load(self) -> dict[str, bytes]:
        if self._loaded is None:
            self._loaded, self.corrupt = self._read()
            if self.corrupt:
                try:
                    os.unlink(self.path)
                except OSError:
                    pass
        return self._loaded

    def _read(self) -> tuple[dict[str, bytes], bool]:
        try:
            with open(self.path, "rb") as f:
                pack = pickle.load(f)
            if isinstance(pack, dict):
                return pack, False
            return {}, True
        except FileNotFoundError:
            return {}, False
        except Exception:  # corrupt/foreign pack: start over
            return {}, True

    def get(self, key: str) -> bytes | None:
        blob = self._pending.get(key)
        if blob is not None:
            return blob
        return self._load().get(key)

    def put(self, key: str, blob: bytes) -> None:
        self._pending[key] = blob
        self._discarded.discard(key)

    def discard(self, key: str) -> None:
        """Drop *key* (an evicted corrupt/stale entry) — also from disk
        at the next :meth:`flush`, so the eviction is paid once, not on
        every future scan."""
        self._pending.pop(key, None)
        self._load().pop(key, None)
        self._discarded.add(key)

    def flush(self) -> None:
        """Merge pending entries into the on-disk pack, atomically."""
        if not self._pending and not self._discarded:
            return
        disk, _corrupt = self._read()  # pick up concurrent flushes
        merged = self._load() | disk | self._pending
        for key in self._discarded:
            merged.pop(key, None)
        directory = os.path.dirname(self.path)
        try:
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            with os.fdopen(fd, "wb") as f:
                pickle.dump(merged, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except (OSError, UnboundLocalError):
                pass
            return
        self._loaded = merged
        self._pending = {}
        self._discarded = set()


class AstCache:
    """Content-addressed parse results on disk.

    Layout: ``<directory>/ast-v<AST_FORMAT>/pack.pkl`` — one
    :class:`PackFile` holding every entry, plus legacy per-entry
    ``<content-hash>.pkl`` files which are still read (and evicted when
    stale) but no longer written.  The format-version directory plays the
    role the knowledge fingerprint plays for
    :class:`~repro.analysis.pipeline.ResultCache`: any frontend change
    that alters tokens, grammar, node layout or the IR bumps
    :data:`AST_FORMAT` and strands the old entries.

    Puts are buffered; callers must :meth:`flush` once per scan (the
    scheduler and scan workers do) to persist them.
    """

    def __init__(self, directory: str) -> None:
        self.directory = os.path.join(directory, f"ast-v{AST_FORMAT}")
        os.makedirs(self.directory, exist_ok=True)
        self.pack = PackFile(os.path.join(self.directory, "pack.pkl"))
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.puts = 0

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.directory, key + ".pkl")

    def get(self, key: str) -> _Entry | None:
        blob = self.pack.get(key)
        if self.pack.corrupt:
            self.pack.corrupt = False
            self.evictions += 1
        if blob is not None:
            try:
                # a stale pre-format-2 payload (3 elements) fails this
                # unpacking with ValueError and is evicted below — the
                # whole cache-version negotiation, no special casing
                program, warnings, error, module = pickle.loads(blob)
            except Exception:
                self.misses += 1
                self.pack.discard(key)
                self.evictions += 1
                return None
            self.hits += 1
            return (program, warnings, error, module)
        entry = self._entry_path(key)
        try:
            with open(entry, "rb") as f:
                program, warnings, error, module = pickle.load(f)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:  # corrupt entries raise anything: miss + evict
            self.misses += 1
            try:
                os.unlink(entry)
                self.evictions += 1
            except OSError:
                pass
            return None
        self.hits += 1
        return (program, warnings, error, module)

    def put(self, key: str, value: _Entry) -> None:
        """Buffer one parse result for the next :meth:`flush`."""
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        # unpicklable members surface as PicklingError, AttributeError
        # or TypeError depending on the object and protocol
        except (RecursionError, pickle.PicklingError,
                AttributeError, TypeError):
            return
        self.pack.put(key, blob)
        self.puts += 1

    def flush(self) -> None:
        """Persist buffered puts (one atomic pack rewrite)."""
        self.pack.flush()


class AstStore:
    """Process-local memo of parse results, keyed by source content hash.

    One store is shared by every frontend consumer of a scan (include
    resolver, include context, fused detector), so the resolve phase
    hands its ASTs to the scan phase instead of throwing them away.

    Args:
        disk: optional :class:`AstCache` second tier.
        metrics: optional ``Metrics``-shaped counter sink (kept
            duck-typed to avoid importing the telemetry layer).
    """

    def __init__(self, disk: AstCache | None = None,
                 metrics=None) -> None:
        self._memory: dict[str, _Entry] = {}
        self.disk = disk
        self.metrics = metrics
        self.parses = 0           # unique contents actually parsed
        self.reparse_avoided = 0  # requests served from the in-memory memo
        self.disk_hits = 0        # requests served from the on-disk cache
        self.lower_seconds = 0.0  # cumulative AST -> IR lowering time

    @staticmethod
    def source_key(source: str) -> str:
        """Content hash of decoded source text (the store's cache key)."""
        return hashlib.sha256(
            source.encode("utf-8", "backslashreplace")).hexdigest()

    # ------------------------------------------------------------------
    # primitives (used by traced callers that lex/parse themselves)
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> _Entry | None:
        """The memoized entry for *key*, or None (counts the outcome)."""
        entry = self._memory.get(key)
        if entry is not None:
            self.reparse_avoided += 1
            if self.metrics is not None:
                self.metrics.counter("frontend_reparse_avoided").inc()
            return entry
        if self.disk is not None:
            entry = self.disk.get(key)
            if entry is not None:
                self._memory[key] = entry
                self.disk_hits += 1
                if self.metrics is not None:
                    self.metrics.counter("ast_cache_hit").inc()
                return entry
        return entry

    def store(self, key: str, program: Program,
              warnings: list[PhpSyntaxError], module=None) -> None:
        """Memoize a successful parse (and write it to the disk tier).

        The program is lowered to the flat IR here — eagerly, once per
        unique content — unless the caller already lowered it (the
        traced pipeline path wraps the lowering in its own span).
        """
        if module is None:
            module = self._lower(program)
        entry: _Entry = (program, tuple(_spec_of(w) for w in warnings),
                         None, module)
        self._memory[key] = entry
        self.parses += 1
        if self.disk is not None:
            self.disk.put(key, entry)

    def _lower(self, program: Program):
        """Lower *program*, timing it; ``None`` when lowering gives up
        (pathologically deep ASTs) — the engine then lowers lazily and
        surfaces the failure as an analysis error, like the old walker.
        """
        # imported lazily: repro.ir.lower imports repro.php back
        from time import perf_counter

        from repro.ir.lower import lower_program
        start = perf_counter()
        try:
            return lower_program(program)
        except Exception:  # includes RecursionError on degenerate nesting
            return None
        finally:
            seconds = perf_counter() - start
            self.lower_seconds += seconds
            if self.metrics is not None:
                self.metrics.counter("ir_lower_seconds").inc(seconds)

    def store_error(self, key: str, exc: PhpSyntaxError) -> None:
        """Memoize a fatal parse failure (re-raised on later hits)."""
        entry: _Entry = (None, (), _spec_of(exc), None)
        self._memory[key] = entry
        self.parses += 1
        if self.disk is not None:
            self.disk.put(key, entry)

    def flush(self) -> None:
        """Persist the disk tier's buffered writes, if there is one."""
        if self.disk is not None:
            self.disk.flush()

    def module_for(self, key: str):
        """The lowered IR module memoized for *key*, or ``None``.

        Deliberately does not probe the disk tier or touch the hit/miss
        counters: callers ask right after :meth:`lookup`/:meth:`store`
        populated the memory tier.
        """
        entry = self._memory.get(key)
        return entry[3] if entry is not None else None

    @staticmethod
    def materialize(entry: _Entry, filename: str
                    ) -> tuple[Program, list[PhpSyntaxError]]:
        """Turn an entry into (program, warnings) attributed to *filename*.

        Raises the memoized :class:`PhpSyntaxError` for failure entries.
        """
        program, warning_specs, error, _module = entry
        if error is not None:
            message, line, col = error
            raise PhpSyntaxError(message, line, col, filename)
        assert program is not None
        return program, [PhpSyntaxError(message, line, col, filename)
                         for message, line, col in warning_specs]

    # ------------------------------------------------------------------
    # the all-in-one path
    # ------------------------------------------------------------------
    def parse_recovering(self, source: str, filename: str = "<source>"
                         ) -> tuple[Program, list[PhpSyntaxError]]:
        """Memoized :func:`repro.php.parser.parse_with_recovery`.

        Same contract: returns ``(program, warnings)`` and raises
        :class:`PhpSyntaxError` when nothing was salvageable — including
        on cache hits for sources that previously failed.
        """
        key = self.source_key(source)
        entry = self.lookup(key)
        if entry is None:
            try:
                program, warnings = parse_with_recovery(source, filename)
            except PhpSyntaxError as exc:
                self.store_error(key, exc)
                raise
            self.store(key, program, warnings)
            return program, warnings
        return self.materialize(entry, filename)
