"""Parse-once frontend: shared AST store with an optional on-disk cache.

A scan used to parse most files twice: once while resolving includes
(:class:`repro.analysis.includes.IncludeResolver` walks every file that
textually mentions ``include``/``require``) and again in the scan phase
(:meth:`repro.analysis.pipeline.FusedDetector.detect_source_recovering`),
with :class:`repro.analysis.includes.IncludeContext` adding a third parse
for dependency files.  :class:`AstStore` removes the duplication: every
frontend consumer asks the store, which memoizes parse results keyed by a
content hash of the source text, so each unique content is lexed and
parsed exactly once per process.

Parse results are content-addressed, not path-addressed: two identical
files share one entry, and cached syntax errors/warnings are re-attributed
to the *requesting* filename on every hit (error messages never embed the
path; only :class:`~repro.exceptions.PhpSyntaxError` carries it).

:class:`AstCache` adds an optional on-disk tier (pickled, content-hash
keyed, format-versioned via :data:`AST_FORMAT` the way ``ResultCache``
uses the knowledge fingerprint), so incremental re-scans of a dirty
include closure stop re-lexing unchanged includer files.  Corrupt entries
are evicted on the miss that discovers them; writes are atomic
(temp + rename).

The store deliberately has no dependency on :mod:`repro.telemetry`
(which transitively imports the analysis layer): callers may hand it any
object with the ``Metrics`` counter interface via ``metrics=`` and the
store then also publishes ``frontend_reparse_avoided`` /
``ast_cache_hit`` counters; the plain integer counters on the store
itself are always maintained.

Shared ``Program`` objects must be treated as read-only by consumers.
Every analysis-side consumer already is; the corrector, which mutates
ASTs, parses its own private copy and never goes through the store.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile

from repro.exceptions import PhpSyntaxError
from repro.php.ast_nodes import Program
from repro.php.parser import parse_with_recovery

#: bump whenever the token stream, grammar, or AST node layout changes —
#: pickled programs from an older frontend must never be served.
AST_FORMAT = 1

#: (message, line, col) triples: enough to rebuild a PhpSyntaxError
#: against whatever filename the current request used.
_ErrorSpec = tuple[str, int, int]

#: a memoized parse: (program, recovery warnings, fatal error).  Exactly
#: one of ``program``/``error`` is set.
_Entry = tuple[Program | None, tuple[_ErrorSpec, ...], _ErrorSpec | None]


def _spec_of(exc: PhpSyntaxError) -> _ErrorSpec:
    return (exc.message, exc.line, exc.col)


class AstCache:
    """Content-addressed parse results on disk.

    Layout: ``<directory>/ast-v<AST_FORMAT>/<content-hash>.pkl``.  The
    format-version directory plays the role the knowledge fingerprint
    plays for :class:`~repro.analysis.pipeline.ResultCache`: any frontend
    change that alters tokens, grammar or node layout bumps
    :data:`AST_FORMAT` and strands the old entries.
    """

    def __init__(self, directory: str) -> None:
        self.directory = os.path.join(directory, f"ast-v{AST_FORMAT}")
        os.makedirs(self.directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.puts = 0

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.directory, key + ".pkl")

    def get(self, key: str) -> _Entry | None:
        entry = self._entry_path(key)
        try:
            with open(entry, "rb") as f:
                program, warnings, error = pickle.load(f)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:  # corrupt entries raise anything: miss + evict
            self.misses += 1
            try:
                os.unlink(entry)
                self.evictions += 1
            except OSError:
                pass
            return None
        self.hits += 1
        return (program, warnings, error)

    def put(self, key: str, value: _Entry) -> None:
        """Store one parse result atomically (write-to-temp + rename)."""
        entry = self._entry_path(key)
        try:
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        except OSError:
            return
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, entry)
            self.puts += 1
        except (OSError, RecursionError, pickle.PicklingError):
            try:
                os.unlink(tmp)
            except OSError:
                pass


class AstStore:
    """Process-local memo of parse results, keyed by source content hash.

    One store is shared by every frontend consumer of a scan (include
    resolver, include context, fused detector), so the resolve phase
    hands its ASTs to the scan phase instead of throwing them away.

    Args:
        disk: optional :class:`AstCache` second tier.
        metrics: optional ``Metrics``-shaped counter sink (kept
            duck-typed to avoid importing the telemetry layer).
    """

    def __init__(self, disk: AstCache | None = None,
                 metrics=None) -> None:
        self._memory: dict[str, _Entry] = {}
        self.disk = disk
        self.metrics = metrics
        self.parses = 0           # unique contents actually parsed
        self.reparse_avoided = 0  # requests served from the in-memory memo
        self.disk_hits = 0        # requests served from the on-disk cache

    @staticmethod
    def source_key(source: str) -> str:
        """Content hash of decoded source text (the store's cache key)."""
        return hashlib.sha256(
            source.encode("utf-8", "backslashreplace")).hexdigest()

    # ------------------------------------------------------------------
    # primitives (used by traced callers that lex/parse themselves)
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> _Entry | None:
        """The memoized entry for *key*, or None (counts the outcome)."""
        entry = self._memory.get(key)
        if entry is not None:
            self.reparse_avoided += 1
            if self.metrics is not None:
                self.metrics.counter("frontend_reparse_avoided").inc()
            return entry
        if self.disk is not None:
            entry = self.disk.get(key)
            if entry is not None:
                self._memory[key] = entry
                self.disk_hits += 1
                if self.metrics is not None:
                    self.metrics.counter("ast_cache_hit").inc()
                return entry
        return entry

    def store(self, key: str, program: Program,
              warnings: list[PhpSyntaxError]) -> None:
        """Memoize a successful parse (and write it to the disk tier)."""
        entry: _Entry = (program, tuple(_spec_of(w) for w in warnings),
                         None)
        self._memory[key] = entry
        self.parses += 1
        if self.disk is not None:
            self.disk.put(key, entry)

    def store_error(self, key: str, exc: PhpSyntaxError) -> None:
        """Memoize a fatal parse failure (re-raised on later hits)."""
        entry: _Entry = (None, (), _spec_of(exc))
        self._memory[key] = entry
        self.parses += 1
        if self.disk is not None:
            self.disk.put(key, entry)

    @staticmethod
    def materialize(entry: _Entry, filename: str
                    ) -> tuple[Program, list[PhpSyntaxError]]:
        """Turn an entry into (program, warnings) attributed to *filename*.

        Raises the memoized :class:`PhpSyntaxError` for failure entries.
        """
        program, warning_specs, error = entry
        if error is not None:
            message, line, col = error
            raise PhpSyntaxError(message, line, col, filename)
        assert program is not None
        return program, [PhpSyntaxError(message, line, col, filename)
                         for message, line, col in warning_specs]

    # ------------------------------------------------------------------
    # the all-in-one path
    # ------------------------------------------------------------------
    def parse_recovering(self, source: str, filename: str = "<source>"
                         ) -> tuple[Program, list[PhpSyntaxError]]:
        """Memoized :func:`repro.php.parser.parse_with_recovery`.

        Same contract: returns ``(program, warnings)`` and raises
        :class:`PhpSyntaxError` when nothing was salvageable — including
        on cache hits for sources that previously failed.
        """
        key = self.source_key(source)
        entry = self.lookup(key)
        if entry is None:
            try:
                program, warnings = parse_with_recovery(source, filename)
            except PhpSyntaxError as exc:
                self.store_error(key, exc)
                raise
            self.store(key, program, warnings)
            return program, warnings
        return self.materialize(entry, filename)
