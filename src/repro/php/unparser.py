"""Unparser: turn a PHP AST back into source text.

Used by the code corrector to materialize fixed files, and by tests for the
parse → unparse → parse round-trip property.  Output is normalized (four-space
indent, always-braced blocks, single quotes where possible); it is not
byte-identical to the input, but re-parses to an equivalent tree.
"""

from __future__ import annotations

from repro.php import ast_nodes as ast

_INDENT = "    "

# operators that need no parenthesization bookkeeping beyond nesting:
# we parenthesize every nested binary expression, which is always safe.


class Unparser:
    """Stateful pretty-printer over the AST."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._depth = 0
        self._in_php = False

    # ------------------------------------------------------------------
    def unparse(self, program: ast.Program) -> str:
        self._lines = []
        self._depth = 0
        self._in_php = False
        for stmt in program.body:
            self._stmt(stmt)
        if self._in_php:
            self._emit("?>")
            self._in_php = False
        return "\n".join(self._lines) + ("\n" if self._lines else "")

    # ------------------------------------------------------------------
    def _emit(self, text: str) -> None:
        self._lines.append(_INDENT * self._depth + text)

    def _ensure_php(self) -> None:
        if not self._in_php:
            self._emit("<?php")
            self._in_php = True

    def _ensure_html(self) -> None:
        if self._in_php:
            self._emit("?>")
            self._in_php = False

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _body(self, body: list[ast.Node]) -> None:
        self._depth += 1
        for stmt in body:
            self._stmt(stmt)
        self._depth -= 1

    def _stmt(self, node: ast.Node) -> None:  # noqa: C901
        if isinstance(node, ast.InlineHTML):
            self._ensure_html()
            lines = node.text.split("\n")
            if lines and lines[-1] == "":
                # the final newline is re-added by the join in unparse()
                lines.pop()
            self._lines.extend(lines)
            return
        self._ensure_php()

        if isinstance(node, ast.ExpressionStatement):
            self._emit(self.expr(node.expr) + ";")
        elif isinstance(node, ast.Echo):
            self._emit("echo " + ", ".join(self.expr(e)
                                           for e in node.exprs) + ";")
        elif isinstance(node, ast.Block):
            self._emit("{")
            self._body(node.body)
            self._emit("}")
        elif isinstance(node, ast.If):
            self._emit(f"if ({self.expr(node.cond)}) {{")
            self._body(node.then)
            for cond, body in node.elifs:
                self._emit(f"}} elseif ({self.expr(cond)}) {{")
                self._body(body)
            if node.otherwise is not None:
                self._emit("} else {")
                self._body(node.otherwise)
            self._emit("}")
        elif isinstance(node, ast.While):
            self._emit(f"while ({self.expr(node.cond)}) {{")
            self._body(node.body)
            self._emit("}")
        elif isinstance(node, ast.DoWhile):
            self._emit("do {")
            self._body(node.body)
            self._emit(f"}} while ({self.expr(node.cond)});")
        elif isinstance(node, ast.For):
            init = ", ".join(self.expr(e) for e in node.init)
            cond = ", ".join(self.expr(e) for e in node.cond)
            step = ", ".join(self.expr(e) for e in node.step)
            self._emit(f"for ({init}; {cond}; {step}) {{")
            self._body(node.body)
            self._emit("}")
        elif isinstance(node, ast.Foreach):
            subject = self.expr(node.subject)
            value = ("&" if node.by_ref else "") + self.expr(node.value_var)
            if node.key_var is not None:
                head = f"{subject} as {self.expr(node.key_var)} => {value}"
            else:
                head = f"{subject} as {value}"
            self._emit(f"foreach ({head}) {{")
            self._body(node.body)
            self._emit("}")
        elif isinstance(node, ast.Switch):
            self._emit(f"switch ({self.expr(node.subject)}) {{")
            self._depth += 1
            for case in node.cases:
                if case.test is None:
                    self._emit("default:")
                else:
                    self._emit(f"case {self.expr(case.test)}:")
                self._body(case.body)
            self._depth -= 1
            self._emit("}")
        elif isinstance(node, ast.Break):
            self._emit("break;" if node.level == 1 else f"break {node.level};")
        elif isinstance(node, ast.Continue):
            self._emit("continue;" if node.level == 1
                       else f"continue {node.level};")
        elif isinstance(node, ast.Return):
            if node.expr is None:
                self._emit("return;")
            else:
                self._emit(f"return {self.expr(node.expr)};")
        elif isinstance(node, ast.Global):
            self._emit("global " + ", ".join("$" + n for n in node.names)
                       + ";")
        elif isinstance(node, ast.StaticVarDecl):
            decls = []
            for name, default in node.vars:
                decls.append(f"${name}" if default is None
                             else f"${name} = {self.expr(default)}")
            self._emit("static " + ", ".join(decls) + ";")
        elif isinstance(node, ast.Unset):
            self._emit("unset(" + ", ".join(self.expr(v)
                                            for v in node.vars) + ");")
        elif isinstance(node, ast.Throw):
            self._emit(f"throw {self.expr(node.expr)};")
        elif isinstance(node, ast.Try):
            self._emit("try {")
            self._body(node.body)
            for catch in node.catches:
                types = " | ".join(catch.types)
                var = f" ${catch.var}" if catch.var else ""
                self._emit(f"}} catch ({types}{var}) {{")
                self._body(catch.body)
            if node.finally_body is not None:
                self._emit("} finally {")
                self._body(node.finally_body)
            self._emit("}")
        elif isinstance(node, ast.FunctionDecl):
            ref = "&" if node.by_ref else ""
            params = ", ".join(self._param(p) for p in node.params)
            ret = f": {node.return_type}" if node.return_type else ""
            self._emit(f"function {ref}{node.name}({params}){ret} {{")
            self._body(node.body)
            self._emit("}")
        elif isinstance(node, ast.ClassDecl):
            self._class_decl(node)
        elif isinstance(node, ast.NamespaceDecl):
            if node.body is None:
                self._emit(f"namespace {node.name};")
            else:
                self._emit(f"namespace {node.name} {{")
                self._body(node.body)
                self._emit("}")
        elif isinstance(node, ast.UseDecl):
            decls = [name if alias is None else f"{name} as {alias}"
                     for name, alias in node.imports]
            self._emit("use " + ", ".join(decls) + ";")
        elif isinstance(node, ast.ConstStatement):
            decls = [f"{name} = {self.expr(value)}"
                     for name, value in node.consts]
            self._emit("const " + ", ".join(decls) + ";")
        elif isinstance(node, ast.Goto):
            self._emit(f"goto {node.label};")
        elif isinstance(node, ast.Label):
            self._emit(f"{node.name}:")
        else:
            # expression used in statement position
            self._emit(self.expr(node) + ";")

    def _class_decl(self, node: ast.ClassDecl) -> None:
        mods = "".join(m + " " for m in node.modifiers)
        head = f"{mods}{node.kind} {node.name}"
        if node.parent:
            head += f" extends {node.parent}"
        if node.interfaces:
            joiner = (" extends " if node.kind == "interface"
                      else " implements ")
            head += joiner + ", ".join(node.interfaces)
        self._emit(head + " {")
        self._depth += 1
        for member in node.members:
            self._class_member(member)
        self._depth -= 1
        self._emit("}")

    def _class_member(self, node: ast.Node) -> None:
        if isinstance(node, ast.MethodDecl):
            mods = "".join(m + " " for m in node.modifiers)
            ref = "&" if node.by_ref else ""
            params = ", ".join(self._param(p) for p in node.params)
            ret = f": {node.return_type}" if node.return_type else ""
            if node.body is None:
                self._emit(f"{mods}function {ref}{node.name}({params}){ret};")
            else:
                self._emit(f"{mods}function {ref}{node.name}({params})"
                           f"{ret} {{")
                self._body(node.body)
                self._emit("}")
        elif isinstance(node, ast.PropertyDecl):
            mods = " ".join(node.modifiers) or "public"
            hint = f" {node.type_hint}" if node.type_hint else ""
            decls = []
            for name, default in node.vars:
                decls.append(f"${name}" if default is None
                             else f"${name} = {self.expr(default)}")
            self._emit(f"{mods}{hint} " + ", ".join(decls) + ";")
        elif isinstance(node, ast.ClassConstDecl):
            mods = "".join(m + " " for m in node.modifiers)
            decls = [f"{name} = {self.expr(value)}"
                     for name, value in node.consts]
            self._emit(f"{mods}const " + ", ".join(decls) + ";")
        elif isinstance(node, ast.UseTrait):
            self._emit("use " + ", ".join(node.names) + ";")
        else:
            self._stmt(node)

    def _param(self, p: ast.Param) -> str:
        out = ""
        if p.type_hint:
            out += p.type_hint + " "
        if p.by_ref:
            out += "&"
        if p.variadic:
            out += "..."
        out += "$" + p.name
        if p.default is not None:
            out += " = " + self.expr(p.default)
        return out

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def expr(self, node: ast.Node | None) -> str:  # noqa: C901
        if node is None:
            return ""
        if isinstance(node, ast.Variable):
            return "$" + node.name
        if isinstance(node, ast.VariableVariable):
            return "${" + self.expr(node.expr) + "}"
        if isinstance(node, ast.Literal):
            return self._literal(node)
        if isinstance(node, ast.InterpolatedString):
            return self._interpolated(node.parts)
        if isinstance(node, ast.ShellExec):
            if all(self._interpolatable(p) for p in node.parts):
                return "`" + self._interp_body(node.parts) + "`"
            # parts PHP would not interpolate (e.g. a call inserted by the
            # code corrector): fall back to the equivalent function form
            return f"shell_exec({self._concat(node.parts)})"
        if isinstance(node, ast.ArrayLiteral):
            return "array(" + ", ".join(self._array_item(i)
                                        for i in node.items) + ")"
        if isinstance(node, ast.ArrayAccess):
            idx = "" if node.index is None else self.expr(node.index)
            return f"{self.expr(node.base)}[{idx}]"
        if isinstance(node, ast.PropertyAccess):
            arrow = "?->" if node.nullsafe else "->"
            return f"{self.expr(node.obj)}{arrow}{self._member(node.name)}"
        if isinstance(node, ast.StaticPropertyAccess):
            return f"{self._cls(node.cls)}::${self._member(node.name)}"
        if isinstance(node, ast.ClassConstAccess):
            return f"{self._cls(node.cls)}::{node.name}"
        if isinstance(node, ast.FunctionCall):
            name = (node.name if isinstance(node.name, str)
                    else self.expr(node.name))
            return f"{name}({self._args(node.args)})"
        if isinstance(node, ast.MethodCall):
            arrow = "?->" if node.nullsafe else "->"
            return (f"{self.expr(node.obj)}{arrow}{self._member(node.name)}"
                    f"({self._args(node.args)})")
        if isinstance(node, ast.StaticCall):
            return (f"{self._cls(node.cls)}::{self._member(node.name)}"
                    f"({self._args(node.args)})")
        if isinstance(node, ast.New):
            if isinstance(node.cls, ast.ClassDecl):
                return self._anon_class(node)
            cls = self._cls(node.cls)
            return f"new {cls}({self._args(node.args)})"
        if isinstance(node, ast.Clone):
            return f"clone {self.expr(node.expr)}"
        if isinstance(node, ast.Assign):
            amp = "&" if node.by_ref else ""
            return (f"{self.expr(node.target)} {node.op} "
                    f"{amp}{self.expr(node.value)}")
        if isinstance(node, ast.ListAssign):
            targets = ", ".join("" if t is None else self.expr(t)
                                for t in node.targets)
            return f"list({targets}) = {self.expr(node.value)}"
        if isinstance(node, ast.BinaryOp):
            return (f"({self.expr(node.left)} {node.op} "
                    f"{self.expr(node.right)})")
        if isinstance(node, ast.UnaryOp):
            return f"{node.op}{self._paren(node.operand)}"
        if isinstance(node, ast.IncDec):
            if node.prefix:
                return f"{node.op}{self.expr(node.operand)}"
            return f"{self.expr(node.operand)}{node.op}"
        if isinstance(node, ast.Cast):
            return f"({node.to}){self._paren(node.expr)}"
        if isinstance(node, ast.Ternary):
            if node.then is None:
                return (f"({self.expr(node.cond)} ?: "
                        f"{self.expr(node.otherwise)})")
            return (f"({self.expr(node.cond)} ? {self.expr(node.then)} : "
                    f"{self.expr(node.otherwise)})")
        if isinstance(node, ast.ErrorSuppress):
            return f"@{self.expr(node.expr)}"
        if isinstance(node, ast.Isset):
            return "isset(" + ", ".join(self.expr(v)
                                        for v in node.vars) + ")"
        if isinstance(node, ast.Empty):
            return f"empty({self.expr(node.expr)})"
        if isinstance(node, ast.PrintExpr):
            return f"print {self.expr(node.expr)}"
        if isinstance(node, ast.ExitExpr):
            if node.expr is None:
                return "exit()"
            return f"exit({self.expr(node.expr)})"
        if isinstance(node, ast.Include):
            return f"{node.kind} {self.expr(node.expr)}"
        if isinstance(node, ast.InstanceOf):
            cls = node.cls if isinstance(node.cls, str) else self.expr(
                node.cls)
            return f"({self.expr(node.expr)} instanceof {cls})"
        if isinstance(node, ast.ConstFetch):
            return node.name
        if isinstance(node, ast.Match):
            arms = []
            for arm in node.arms:
                if arm.conditions is None:
                    head = "default"
                else:
                    head = ", ".join(self.expr(c) for c in arm.conditions)
                arms.append(f"{head} => {self.expr(arm.body)}")
            return (f"match ({self.expr(node.subject)}) {{ "
                    + ", ".join(arms) + " }")
        if isinstance(node, ast.Closure) and node.is_arrow:
            params = ", ".join(self._param(p) for p in node.params)
            body = node.body[0]
            expr = (body.expr if isinstance(body, ast.Return)
                    else body)
            ref = "&" if node.by_ref else ""
            return f"fn {ref}({params}) => {self.expr(expr)}"
        if isinstance(node, ast.Closure):
            params = ", ".join(self._param(p) for p in node.params)
            uses = ""
            if node.uses:
                uses = " use (" + ", ".join(
                    ("&$" if by_ref else "$") + name
                    for name, by_ref in node.uses) + ")"
            body = _render_inline_body(self, node.body)
            ref = "&" if node.by_ref else ""
            return f"function {ref}({params}){uses} {{ {body} }}"
        if isinstance(node, ast.ArrayItem):
            return self._array_item(node)
        raise TypeError(f"cannot unparse {type(node).__name__}")

    # ------------------------------------------------------------------
    def _paren(self, node: ast.Node | None) -> str:
        text = self.expr(node)
        if isinstance(node, (ast.Variable, ast.Literal, ast.FunctionCall,
                             ast.ArrayAccess, ast.ConstFetch)):
            return text
        if text.startswith("("):
            return text
        return f"({text})"

    def _args(self, args: list[ast.Argument]) -> str:
        rendered = []
        for arg in args:
            prefix = ""
            if arg.name:
                prefix += f"{arg.name}: "
            if arg.by_ref:
                prefix += "&"
            if arg.spread:
                prefix += "..."
            rendered.append(prefix + self.expr(arg.value))
        return ", ".join(rendered)

    def _member(self, name: str | ast.Node) -> str:
        if isinstance(name, str):
            return name
        if isinstance(name, ast.Variable):
            return "$" + name.name
        return "{" + self.expr(name) + "}"

    def _cls(self, cls: str | ast.Node) -> str:
        return cls if isinstance(cls, str) else self.expr(cls)

    def _array_item(self, item: ast.ArrayItem) -> str:
        out = ""
        if item.spread:
            out += "..."
        if item.key is not None:
            out += self.expr(item.key) + " => "
        if item.by_ref:
            out += "&"
        out += self.expr(item.value)
        return out

    def _literal(self, node: ast.Literal) -> str:
        if node.kind == "string":
            return quote_php_string(str(node.value))
        if node.kind == "bool":
            return "true" if node.value else "false"
        if node.kind == "null":
            return "null"
        return repr(node.value)

    def _interp_body(self, parts: list[ast.Node]) -> str:
        out: list[str] = []
        for part in parts:
            if isinstance(part, ast.Literal):
                out.append(_escape_dq(str(part.value)))
            else:
                out.append("{" + self.expr(part) + "}")
        return "".join(out)

    def _interpolated(self, parts: list[ast.Node]) -> str:
        if all(self._interpolatable(p) for p in parts):
            return '"' + self._interp_body(parts) + '"'
        # a part PHP string syntax cannot embed: emit a concatenation
        return self._concat(parts)

    def _interpolatable(self, part: ast.Node) -> bool:
        """Can this part live inside "{...}" string interpolation?

        PHP only interpolates expressions rooted at a variable; anything
        else (a bare function call, a literal) must stay literal text or
        move out of the string.
        """
        if isinstance(part, ast.Literal):
            return True
        return self.expr(part).startswith("$")

    def _anon_class(self, node: ast.New) -> str:
        """Render ``new class(...) ... { members }`` on one line."""
        decl = node.cls
        head = "new class"
        if node.args:
            head += f"({self._args(node.args)})"
        if decl.parent:
            head += f" extends {decl.parent}"
        if decl.interfaces:
            head += " implements " + ", ".join(decl.interfaces)
        sub = Unparser()
        sub._in_php = True
        for member in decl.members:
            sub._class_member(member)
        body = " ".join(line.strip() for line in sub._lines)
        return f"{head} {{ {body} }}" if body else head + " {}"

    def _concat(self, parts: list[ast.Node]) -> str:
        pieces = []
        for part in parts:
            if isinstance(part, ast.Literal):
                pieces.append(quote_php_string(str(part.value)))
            else:
                pieces.append(self.expr(part))
        return "(" + " . ".join(pieces) + ")" if len(pieces) > 1 \
            else (pieces[0] if pieces else "''")


def _render_inline_body(unparser: Unparser, body: list[ast.Node]) -> str:
    """Render a closure body on one line (best effort)."""
    sub = Unparser()
    sub._in_php = True
    for stmt in body:
        sub._stmt(stmt)
    return " ".join(line.strip() for line in sub._lines)


def quote_php_string(text: str) -> str:
    """Render a Python string as a single-quoted PHP string literal."""
    return "'" + text.replace("\\", "\\\\").replace("'", "\\'") + "'"


def _escape_dq(text: str) -> str:
    """Escape literal text for inclusion inside a double-quoted string."""
    out = (text.replace("\\", "\\\\").replace('"', '\\"')
           .replace("$", "\\$").replace("{", "\\{")
           .replace("\n", "\\n").replace("\t", "\\t").replace("\r", "\\r"))
    return out


def unparse(program: ast.Program) -> str:
    """Convenience wrapper: render *program* back to PHP source."""
    return Unparser().unparse(program)


def unparse_expr(node: ast.Node) -> str:
    """Render a single expression node to PHP source."""
    return Unparser().expr(node)
