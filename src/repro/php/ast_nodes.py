"""Typed AST node definitions for the PHP frontend.

Every node derives from :class:`Node` and carries a source position
(``line``/``col``).  Nodes are plain dataclasses; child discovery for the
generic visitor is done by inspecting dataclass fields, so adding a node type
requires no visitor changes.

Naming follows the PHP grammar where practical: a *statement* node ends up in
``Program.body`` or a ``Block``; an *expression* node appears inside
statements.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union


@dataclass
class Node:
    """Base class for all AST nodes."""

    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (recursing into lists/tuples)."""
        for f in dataclasses.fields(self):
            if f.name in ("line", "col"):
                continue
            value = getattr(self, f.name)
            yield from _iter_nodes(value)

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


def _iter_nodes(value: object) -> Iterator[Node]:
    if isinstance(value, Node):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _iter_nodes(item)


# ---------------------------------------------------------------------------
# top level
# ---------------------------------------------------------------------------

@dataclass
class Program(Node):
    """A whole PHP file: a sequence of statements (including inline HTML)."""

    body: list[Node] = field(default_factory=list)


@dataclass
class InlineHTML(Node):
    """Raw HTML text outside ``<?php ... ?>``."""

    text: str = ""


@dataclass
class Block(Node):
    """A ``{ ... }`` statement list."""

    body: list[Node] = field(default_factory=list)


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

@dataclass
class Variable(Node):
    """``$name``. ``name`` excludes the dollar sign."""

    name: str = ""


@dataclass
class VariableVariable(Node):
    """``$$expr`` or ``${expr}``."""

    expr: Node | None = None


@dataclass
class Literal(Node):
    """A scalar literal.

    ``kind`` is one of ``int``, ``float``, ``string``, ``bool``, ``null``;
    ``value`` is the corresponding Python value.
    """

    value: object = None
    kind: str = "null"


@dataclass
class InterpolatedString(Node):
    """A double-quoted string / heredoc with interpolation.

    ``parts`` alternates literal text (``Literal`` nodes with kind 'string')
    and embedded expressions.
    """

    parts: list[Node] = field(default_factory=list)


@dataclass
class ShellExec(Node):
    """A backtick string: executes a shell command (an OSCI sink)."""

    parts: list[Node] = field(default_factory=list)


@dataclass
class ArrayItem(Node):
    """One element of an array literal: optional key, value, by-ref flag."""

    key: Node | None = None
    value: Node | None = None
    by_ref: bool = False
    spread: bool = False


@dataclass
class ArrayLiteral(Node):
    """``array(...)`` or ``[...]``."""

    items: list[ArrayItem] = field(default_factory=list)


@dataclass
class ArrayAccess(Node):
    """``base[index]``; index is None for ``base[] = ...`` appends."""

    base: Node | None = None
    index: Node | None = None


@dataclass
class PropertyAccess(Node):
    """``obj->name``; ``name`` is a string or an expression node."""

    obj: Node | None = None
    name: Union[str, Node] = ""
    nullsafe: bool = False


@dataclass
class StaticPropertyAccess(Node):
    """``Cls::$name``."""

    cls: Union[str, Node] = ""
    name: Union[str, Node] = ""


@dataclass
class ClassConstAccess(Node):
    """``Cls::NAME``."""

    cls: Union[str, Node] = ""
    name: str = ""


@dataclass
class Argument(Node):
    """A call argument: expression, optional by-ref / spread / name."""

    value: Node | None = None
    by_ref: bool = False
    spread: bool = False
    name: str | None = None  # PHP 8 named arguments


@dataclass
class FunctionCall(Node):
    """``name(args)``; ``name`` is a string for plain calls or an
    expression for variable functions (``$f()``)."""

    name: Union[str, Node] = ""
    args: list[Argument] = field(default_factory=list)


@dataclass
class MethodCall(Node):
    """``obj->name(args)``."""

    obj: Node | None = None
    name: Union[str, Node] = ""
    args: list[Argument] = field(default_factory=list)
    nullsafe: bool = False


@dataclass
class StaticCall(Node):
    """``Cls::name(args)``."""

    cls: Union[str, Node] = ""
    name: Union[str, Node] = ""
    args: list[Argument] = field(default_factory=list)


@dataclass
class New(Node):
    """``new Cls(args)``."""

    cls: Union[str, Node] = ""
    args: list[Argument] = field(default_factory=list)


@dataclass
class Clone(Node):
    expr: Node | None = None


@dataclass
class Assign(Node):
    """``target op value`` where op is ``=``, ``.=``, ``+=``, ... .

    ``by_ref`` marks ``$a = &$b``.
    """

    target: Node | None = None
    op: str = "="
    value: Node | None = None
    by_ref: bool = False


@dataclass
class ListAssign(Node):
    """``list($a, $b) = expr`` / ``[$a, $b] = expr``."""

    targets: list[Optional[Node]] = field(default_factory=list)
    value: Node | None = None


@dataclass
class BinaryOp(Node):
    """Any binary operator, including ``.`` concatenation."""

    op: str = ""
    left: Node | None = None
    right: Node | None = None


@dataclass
class UnaryOp(Node):
    """Prefix ``!``, ``-``, ``+``, ``~``; ``op`` stores the operator text."""

    op: str = ""
    operand: Node | None = None


@dataclass
class IncDec(Node):
    """``++$x`` / ``$x--`` etc.  ``prefix`` distinguishes the two forms."""

    op: str = "++"
    operand: Node | None = None
    prefix: bool = True


@dataclass
class Cast(Node):
    """``(int)$x`` — ``to`` is the normalized cast type."""

    to: str = ""
    expr: Node | None = None


@dataclass
class Ternary(Node):
    """``cond ? then : else`` (``then`` is None for the short form)."""

    cond: Node | None = None
    then: Node | None = None
    otherwise: Node | None = None


@dataclass
class ErrorSuppress(Node):
    """``@expr``."""

    expr: Node | None = None


@dataclass
class Isset(Node):
    vars: list[Node] = field(default_factory=list)


@dataclass
class Empty(Node):
    expr: Node | None = None


@dataclass
class PrintExpr(Node):
    """``print expr`` (an expression in PHP)."""

    expr: Node | None = None


@dataclass
class ExitExpr(Node):
    """``exit(expr)`` / ``die(expr)`` (usable as an expression)."""

    expr: Node | None = None


@dataclass
class Include(Node):
    """``include/include_once/require/require_once expr``.

    ``kind`` is the keyword used (lowercase).
    """

    kind: str = "include"
    expr: Node | None = None


@dataclass
class InstanceOf(Node):
    expr: Node | None = None
    cls: Union[str, Node] = ""


@dataclass
class ConstFetch(Node):
    """A bare identifier used as a constant (``PHP_EOL``, ``SORT_ASC``...)."""

    name: str = ""


@dataclass
class MatchArm(Node):
    """One arm of a ``match`` expression; ``conditions`` is None for
    ``default``."""

    conditions: list[Node] | None = None
    body: Node | None = None


@dataclass
class Match(Node):
    """PHP 8 ``match (subject) { cond, ... => expr, default => expr }``."""

    subject: Node | None = None
    arms: list[MatchArm] = field(default_factory=list)


@dataclass
class Closure(Node):
    """``function (params) use (...) { body }`` and arrow functions."""

    params: list["Param"] = field(default_factory=list)
    uses: list[tuple[str, bool]] = field(default_factory=list)  # (name, by_ref)
    body: list[Node] = field(default_factory=list)
    by_ref: bool = False
    is_arrow: bool = False


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

@dataclass
class ExpressionStatement(Node):
    expr: Node | None = None


@dataclass
class Echo(Node):
    exprs: list[Node] = field(default_factory=list)


@dataclass
class If(Node):
    cond: Node | None = None
    then: list[Node] = field(default_factory=list)
    elifs: list[tuple[Node, list[Node]]] = field(default_factory=list)
    otherwise: list[Node] | None = None

    def children(self) -> Iterator[Node]:  # tuples inside elifs need help
        if self.cond is not None:
            yield self.cond
        yield from self.then
        for cond, body in self.elifs:
            yield cond
            yield from body
        if self.otherwise:
            yield from self.otherwise


@dataclass
class While(Node):
    cond: Node | None = None
    body: list[Node] = field(default_factory=list)


@dataclass
class DoWhile(Node):
    body: list[Node] = field(default_factory=list)
    cond: Node | None = None


@dataclass
class For(Node):
    init: list[Node] = field(default_factory=list)
    cond: list[Node] = field(default_factory=list)
    step: list[Node] = field(default_factory=list)
    body: list[Node] = field(default_factory=list)


@dataclass
class Foreach(Node):
    subject: Node | None = None
    key_var: Node | None = None
    value_var: Node | None = None
    by_ref: bool = False
    body: list[Node] = field(default_factory=list)


@dataclass
class SwitchCase(Node):
    """One ``case expr:`` arm; ``test`` is None for ``default:``."""

    test: Node | None = None
    body: list[Node] = field(default_factory=list)


@dataclass
class Switch(Node):
    subject: Node | None = None
    cases: list[SwitchCase] = field(default_factory=list)


@dataclass
class Break(Node):
    level: int = 1


@dataclass
class Continue(Node):
    level: int = 1


@dataclass
class Goto(Node):
    """``goto label;`` — a no-op for the flow-insensitive analysis."""

    label: str = ""


@dataclass
class Label(Node):
    """``label:`` target of a goto."""

    name: str = ""


@dataclass
class Return(Node):
    expr: Node | None = None


@dataclass
class Global(Node):
    names: list[str] = field(default_factory=list)


@dataclass
class StaticVarDecl(Node):
    """``static $x = 1, $y;`` inside a function."""

    vars: list[tuple[str, Optional[Node]]] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        for _name, default in self.vars:
            if default is not None:
                yield default


@dataclass
class Unset(Node):
    vars: list[Node] = field(default_factory=list)


@dataclass
class Throw(Node):
    expr: Node | None = None


@dataclass
class CatchClause(Node):
    types: list[str] = field(default_factory=list)
    var: str | None = None
    body: list[Node] = field(default_factory=list)


@dataclass
class Try(Node):
    body: list[Node] = field(default_factory=list)
    catches: list[CatchClause] = field(default_factory=list)
    finally_body: list[Node] | None = None


@dataclass
class Param(Node):
    """A function/method parameter."""

    name: str = ""
    default: Node | None = None
    by_ref: bool = False
    variadic: bool = False
    type_hint: str | None = None


@dataclass
class FunctionDecl(Node):
    name: str = ""
    params: list[Param] = field(default_factory=list)
    body: list[Node] = field(default_factory=list)
    by_ref: bool = False
    return_type: str | None = None


@dataclass
class PropertyDecl(Node):
    """``public $x = 1, $y;`` inside a class body."""

    modifiers: list[str] = field(default_factory=list)
    vars: list[tuple[str, Optional[Node]]] = field(default_factory=list)
    type_hint: str | None = None

    def children(self) -> Iterator[Node]:
        for _name, default in self.vars:
            if default is not None:
                yield default


@dataclass
class ClassConstDecl(Node):
    modifiers: list[str] = field(default_factory=list)
    consts: list[tuple[str, Node]] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        for _name, value in self.consts:
            yield value


@dataclass
class MethodDecl(Node):
    name: str = ""
    params: list[Param] = field(default_factory=list)
    body: list[Node] | None = None  # None for abstract/interface methods
    modifiers: list[str] = field(default_factory=list)
    by_ref: bool = False
    return_type: str | None = None


@dataclass
class UseTrait(Node):
    names: list[str] = field(default_factory=list)


@dataclass
class ClassDecl(Node):
    name: str = ""
    parent: str | None = None
    interfaces: list[str] = field(default_factory=list)
    members: list[Node] = field(default_factory=list)
    modifiers: list[str] = field(default_factory=list)
    kind: str = "class"  # class | interface | trait


@dataclass
class NamespaceDecl(Node):
    name: str = ""
    body: list[Node] | None = None


@dataclass
class UseDecl(Node):
    """``use Foo\\Bar as Baz;`` — recorded but not resolved."""

    imports: list[tuple[str, Optional[str]]] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        return iter(())


@dataclass
class ConstStatement(Node):
    """Top-level ``const NAME = value;``."""

    consts: list[tuple[str, Node]] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        for _name, value in self.consts:
            yield value


# Nodes whose presence means "this file has executable PHP"
EXPRESSION_NODES = (
    Variable, VariableVariable, Literal, InterpolatedString, ShellExec,
    ArrayLiteral, ArrayAccess, PropertyAccess, StaticPropertyAccess,
    ClassConstAccess, FunctionCall, MethodCall, StaticCall, New, Clone,
    Assign, ListAssign, BinaryOp, UnaryOp, IncDec, Cast, Ternary,
    ErrorSuppress, Isset, Empty, PrintExpr, ExitExpr, Include, InstanceOf,
    ConstFetch, Closure,
)
