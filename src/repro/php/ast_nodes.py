"""Typed AST node definitions for the PHP frontend.

Every node derives from :class:`Node` and carries a source position
(``line``/``col``).  Nodes are plain dataclasses; child discovery for the
generic visitor is done by inspecting dataclass fields, so adding a node type
requires no visitor changes.

Naming follows the PHP grammar where practical: a *statement* node ends up in
``Program.body`` or a ``Block``; an *expression* node appears inside
statements.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union


@dataclass(slots=True)
class Node:
    """Base class for all AST nodes."""

    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (recursing into lists/tuples)."""
        for f in dataclasses.fields(self):
            if f.name in ("line", "col"):
                continue
            value = getattr(self, f.name)
            yield from _iter_nodes(value)

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


def _iter_nodes(value: object) -> Iterator[Node]:
    if isinstance(value, Node):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _iter_nodes(item)


# ---------------------------------------------------------------------------
# top level
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class Program(Node):
    """A whole PHP file: a sequence of statements (including inline HTML)."""

    body: list[Node] = field(default_factory=list)


@dataclass(slots=True)
class InlineHTML(Node):
    """Raw HTML text outside ``<?php ... ?>``."""

    text: str = ""


@dataclass(slots=True)
class Block(Node):
    """A ``{ ... }`` statement list."""

    body: list[Node] = field(default_factory=list)


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class Variable(Node):
    """``$name``. ``name`` excludes the dollar sign."""

    name: str = ""


@dataclass(slots=True)
class VariableVariable(Node):
    """``$$expr`` or ``${expr}``."""

    expr: Node | None = None


@dataclass(slots=True)
class Literal(Node):
    """A scalar literal.

    ``kind`` is one of ``int``, ``float``, ``string``, ``bool``, ``null``;
    ``value`` is the corresponding Python value.
    """

    value: object = None
    kind: str = "null"


@dataclass(slots=True)
class InterpolatedString(Node):
    """A double-quoted string / heredoc with interpolation.

    ``parts`` alternates literal text (``Literal`` nodes with kind 'string')
    and embedded expressions.
    """

    parts: list[Node] = field(default_factory=list)


@dataclass(slots=True)
class ShellExec(Node):
    """A backtick string: executes a shell command (an OSCI sink)."""

    parts: list[Node] = field(default_factory=list)


@dataclass(slots=True)
class ArrayItem(Node):
    """One element of an array literal: optional key, value, by-ref flag."""

    key: Node | None = None
    value: Node | None = None
    by_ref: bool = False
    spread: bool = False


@dataclass(slots=True)
class ArrayLiteral(Node):
    """``array(...)`` or ``[...]``."""

    items: list[ArrayItem] = field(default_factory=list)


@dataclass(slots=True)
class ArrayAccess(Node):
    """``base[index]``; index is None for ``base[] = ...`` appends."""

    base: Node | None = None
    index: Node | None = None


@dataclass(slots=True)
class PropertyAccess(Node):
    """``obj->name``; ``name`` is a string or an expression node."""

    obj: Node | None = None
    name: Union[str, Node] = ""
    nullsafe: bool = False


@dataclass(slots=True)
class StaticPropertyAccess(Node):
    """``Cls::$name``."""

    cls: Union[str, Node] = ""
    name: Union[str, Node] = ""


@dataclass(slots=True)
class ClassConstAccess(Node):
    """``Cls::NAME``."""

    cls: Union[str, Node] = ""
    name: str = ""


@dataclass(slots=True)
class Argument(Node):
    """A call argument: expression, optional by-ref / spread / name."""

    value: Node | None = None
    by_ref: bool = False
    spread: bool = False
    name: str | None = None  # PHP 8 named arguments


@dataclass(slots=True)
class FunctionCall(Node):
    """``name(args)``; ``name`` is a string for plain calls or an
    expression for variable functions (``$f()``)."""

    name: Union[str, Node] = ""
    args: list[Argument] = field(default_factory=list)


@dataclass(slots=True)
class MethodCall(Node):
    """``obj->name(args)``."""

    obj: Node | None = None
    name: Union[str, Node] = ""
    args: list[Argument] = field(default_factory=list)
    nullsafe: bool = False


@dataclass(slots=True)
class StaticCall(Node):
    """``Cls::name(args)``."""

    cls: Union[str, Node] = ""
    name: Union[str, Node] = ""
    args: list[Argument] = field(default_factory=list)


@dataclass(slots=True)
class New(Node):
    """``new Cls(args)``."""

    cls: Union[str, Node] = ""
    args: list[Argument] = field(default_factory=list)


@dataclass(slots=True)
class Clone(Node):
    expr: Node | None = None


@dataclass(slots=True)
class Assign(Node):
    """``target op value`` where op is ``=``, ``.=``, ``+=``, ... .

    ``by_ref`` marks ``$a = &$b``.
    """

    target: Node | None = None
    op: str = "="
    value: Node | None = None
    by_ref: bool = False


@dataclass(slots=True)
class ListAssign(Node):
    """``list($a, $b) = expr`` / ``[$a, $b] = expr``."""

    targets: list[Optional[Node]] = field(default_factory=list)
    value: Node | None = None


@dataclass(slots=True)
class BinaryOp(Node):
    """Any binary operator, including ``.`` concatenation."""

    op: str = ""
    left: Node | None = None
    right: Node | None = None


@dataclass(slots=True)
class UnaryOp(Node):
    """Prefix ``!``, ``-``, ``+``, ``~``; ``op`` stores the operator text."""

    op: str = ""
    operand: Node | None = None


@dataclass(slots=True)
class IncDec(Node):
    """``++$x`` / ``$x--`` etc.  ``prefix`` distinguishes the two forms."""

    op: str = "++"
    operand: Node | None = None
    prefix: bool = True


@dataclass(slots=True)
class Cast(Node):
    """``(int)$x`` — ``to`` is the normalized cast type."""

    to: str = ""
    expr: Node | None = None


@dataclass(slots=True)
class Ternary(Node):
    """``cond ? then : else`` (``then`` is None for the short form)."""

    cond: Node | None = None
    then: Node | None = None
    otherwise: Node | None = None


@dataclass(slots=True)
class ErrorSuppress(Node):
    """``@expr``."""

    expr: Node | None = None


@dataclass(slots=True)
class Isset(Node):
    vars: list[Node] = field(default_factory=list)


@dataclass(slots=True)
class Empty(Node):
    expr: Node | None = None


@dataclass(slots=True)
class PrintExpr(Node):
    """``print expr`` (an expression in PHP)."""

    expr: Node | None = None


@dataclass(slots=True)
class ExitExpr(Node):
    """``exit(expr)`` / ``die(expr)`` (usable as an expression)."""

    expr: Node | None = None


@dataclass(slots=True)
class Include(Node):
    """``include/include_once/require/require_once expr``.

    ``kind`` is the keyword used (lowercase).
    """

    kind: str = "include"
    expr: Node | None = None


@dataclass(slots=True)
class InstanceOf(Node):
    expr: Node | None = None
    cls: Union[str, Node] = ""


@dataclass(slots=True)
class ConstFetch(Node):
    """A bare identifier used as a constant (``PHP_EOL``, ``SORT_ASC``...)."""

    name: str = ""


@dataclass(slots=True)
class MatchArm(Node):
    """One arm of a ``match`` expression; ``conditions`` is None for
    ``default``."""

    conditions: list[Node] | None = None
    body: Node | None = None


@dataclass(slots=True)
class Match(Node):
    """PHP 8 ``match (subject) { cond, ... => expr, default => expr }``."""

    subject: Node | None = None
    arms: list[MatchArm] = field(default_factory=list)


@dataclass(slots=True)
class Closure(Node):
    """``function (params) use (...) { body }`` and arrow functions."""

    params: list["Param"] = field(default_factory=list)
    uses: list[tuple[str, bool]] = field(default_factory=list)  # (name, by_ref)
    body: list[Node] = field(default_factory=list)
    by_ref: bool = False
    is_arrow: bool = False


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class ExpressionStatement(Node):
    expr: Node | None = None


@dataclass(slots=True)
class Echo(Node):
    exprs: list[Node] = field(default_factory=list)


@dataclass(slots=True)
class If(Node):
    cond: Node | None = None
    then: list[Node] = field(default_factory=list)
    elifs: list[tuple[Node, list[Node]]] = field(default_factory=list)
    otherwise: list[Node] | None = None

    def children(self) -> Iterator[Node]:  # tuples inside elifs need help
        if self.cond is not None:
            yield self.cond
        yield from self.then
        for cond, body in self.elifs:
            yield cond
            yield from body
        if self.otherwise:
            yield from self.otherwise


@dataclass(slots=True)
class While(Node):
    cond: Node | None = None
    body: list[Node] = field(default_factory=list)


@dataclass(slots=True)
class DoWhile(Node):
    body: list[Node] = field(default_factory=list)
    cond: Node | None = None


@dataclass(slots=True)
class For(Node):
    init: list[Node] = field(default_factory=list)
    cond: list[Node] = field(default_factory=list)
    step: list[Node] = field(default_factory=list)
    body: list[Node] = field(default_factory=list)


@dataclass(slots=True)
class Foreach(Node):
    subject: Node | None = None
    key_var: Node | None = None
    value_var: Node | None = None
    by_ref: bool = False
    body: list[Node] = field(default_factory=list)


@dataclass(slots=True)
class SwitchCase(Node):
    """One ``case expr:`` arm; ``test`` is None for ``default:``."""

    test: Node | None = None
    body: list[Node] = field(default_factory=list)


@dataclass(slots=True)
class Switch(Node):
    subject: Node | None = None
    cases: list[SwitchCase] = field(default_factory=list)


@dataclass(slots=True)
class Break(Node):
    level: int = 1


@dataclass(slots=True)
class Continue(Node):
    level: int = 1


@dataclass(slots=True)
class Goto(Node):
    """``goto label;`` — a no-op for the flow-insensitive analysis."""

    label: str = ""


@dataclass(slots=True)
class Label(Node):
    """``label:`` target of a goto."""

    name: str = ""


@dataclass(slots=True)
class Return(Node):
    expr: Node | None = None


@dataclass(slots=True)
class Global(Node):
    names: list[str] = field(default_factory=list)


@dataclass(slots=True)
class StaticVarDecl(Node):
    """``static $x = 1, $y;`` inside a function."""

    vars: list[tuple[str, Optional[Node]]] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        for _name, default in self.vars:
            if default is not None:
                yield default


@dataclass(slots=True)
class Unset(Node):
    vars: list[Node] = field(default_factory=list)


@dataclass(slots=True)
class Throw(Node):
    expr: Node | None = None


@dataclass(slots=True)
class CatchClause(Node):
    types: list[str] = field(default_factory=list)
    var: str | None = None
    body: list[Node] = field(default_factory=list)


@dataclass(slots=True)
class Try(Node):
    body: list[Node] = field(default_factory=list)
    catches: list[CatchClause] = field(default_factory=list)
    finally_body: list[Node] | None = None


@dataclass(slots=True)
class Param(Node):
    """A function/method parameter."""

    name: str = ""
    default: Node | None = None
    by_ref: bool = False
    variadic: bool = False
    type_hint: str | None = None


@dataclass(slots=True)
class FunctionDecl(Node):
    name: str = ""
    params: list[Param] = field(default_factory=list)
    body: list[Node] = field(default_factory=list)
    by_ref: bool = False
    return_type: str | None = None


@dataclass(slots=True)
class PropertyDecl(Node):
    """``public $x = 1, $y;`` inside a class body."""

    modifiers: list[str] = field(default_factory=list)
    vars: list[tuple[str, Optional[Node]]] = field(default_factory=list)
    type_hint: str | None = None

    def children(self) -> Iterator[Node]:
        for _name, default in self.vars:
            if default is not None:
                yield default


@dataclass(slots=True)
class ClassConstDecl(Node):
    modifiers: list[str] = field(default_factory=list)
    consts: list[tuple[str, Node]] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        for _name, value in self.consts:
            yield value


@dataclass(slots=True)
class MethodDecl(Node):
    name: str = ""
    params: list[Param] = field(default_factory=list)
    body: list[Node] | None = None  # None for abstract/interface methods
    modifiers: list[str] = field(default_factory=list)
    by_ref: bool = False
    return_type: str | None = None


@dataclass(slots=True)
class UseTrait(Node):
    names: list[str] = field(default_factory=list)


@dataclass(slots=True)
class ClassDecl(Node):
    name: str = ""
    parent: str | None = None
    interfaces: list[str] = field(default_factory=list)
    members: list[Node] = field(default_factory=list)
    modifiers: list[str] = field(default_factory=list)
    kind: str = "class"  # class | interface | trait


@dataclass(slots=True)
class NamespaceDecl(Node):
    name: str = ""
    body: list[Node] | None = None


@dataclass(slots=True)
class UseDecl(Node):
    """``use Foo\\Bar as Baz;`` — recorded but not resolved."""

    imports: list[tuple[str, Optional[str]]] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        return iter(())


@dataclass(slots=True)
class ConstStatement(Node):
    """Top-level ``const NAME = value;``."""

    consts: list[tuple[str, Node]] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        for _name, value in self.consts:
            yield value


# Nodes whose presence means "this file has executable PHP"
EXPRESSION_NODES = (
    Variable, VariableVariable, Literal, InterpolatedString, ShellExec,
    ArrayLiteral, ArrayAccess, PropertyAccess, StaticPropertyAccess,
    ClassConstAccess, FunctionCall, MethodCall, StaticCall, New, Clone,
    Assign, ListAssign, BinaryOp, UnaryOp, IncDec, Cast, Ternary,
    ErrorSuppress, Isset, Empty, PrintExpr, ExitExpr, Include, InstanceOf,
    ConstFetch, Closure,
)
