"""Visitor / tree-walker framework over the PHP AST.

This mirrors the role ANTLR tree walkers play in the original WAP: detectors
navigate the AST without the AST knowing anything about them (§III-E facet 1
— "making the AST independent of the navigation made by the detectors").

Two styles are provided:

* :class:`NodeVisitor` — classic double-dispatch on the node class name
  (``visit_FunctionCall`` etc.), with a ``generic_visit`` that recurses.
* :func:`walk` / :func:`find_all` — generator helpers for quick queries.
"""

from __future__ import annotations

from typing import Callable, Iterator, Type, TypeVar

from repro.php import ast_nodes as ast

N = TypeVar("N", bound=ast.Node)


class NodeVisitor:
    """Base visitor: dispatches ``visit(node)`` to ``visit_<ClassName>``.

    Subclasses override ``visit_<ClassName>`` for nodes they care about and
    call ``self.generic_visit(node)`` to keep walking.
    """

    def visit(self, node: ast.Node) -> object:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: ast.Node) -> object:
        for child in node.children():
            self.visit(child)
        return None


class NodeTransformer(NodeVisitor):
    """Visitor whose ``visit_*`` methods may return replacement nodes.

    Replacement happens only for direct children held in lists; scalar
    fields keep their node unless the method mutates it in place.  This is
    enough for the code corrector, which only inserts/replaces statements.
    """

    def generic_visit(self, node: ast.Node) -> ast.Node:
        import dataclasses
        for f in dataclasses.fields(node):
            if f.name in ("line", "col"):
                continue
            value = getattr(self, "_", None)
            value = getattr(node, f.name)
            if isinstance(value, ast.Node):
                new = self.visit(value)
                if isinstance(new, ast.Node) and new is not value:
                    setattr(node, f.name, new)
            elif isinstance(value, list):
                new_list = []
                for item in value:
                    if isinstance(item, ast.Node):
                        out = self.visit(item)
                        if out is None:
                            continue
                        if isinstance(out, list):
                            new_list.extend(out)
                        else:
                            new_list.append(out)
                    else:
                        new_list.append(item)
                setattr(node, f.name, new_list)
        return node


def walk(node: ast.Node) -> Iterator[ast.Node]:
    """Yield *node* and all of its descendants, pre-order."""
    yield from node.walk()


def find_all(node: ast.Node, node_type: Type[N],
             predicate: Callable[[N], bool] | None = None) -> Iterator[N]:
    """Yield all descendants of *node* of the given type (pre-order)."""
    for child in node.walk():
        if isinstance(child, node_type):
            if predicate is None or predicate(child):
                yield child


def count_nodes(node: ast.Node) -> int:
    """Total number of nodes in the subtree (used by stats/benchmarks)."""
    return sum(1 for _ in node.walk())
